"""repro — reproduction of "Solving the Join Ordering Problem via Mixed
Integer Linear Programming" (Trummer & Koch, SIGMOD 2017).

Quickstart::

    from repro import MILPJoinOptimizer, QueryGenerator

    query = QueryGenerator(seed=1).generate("star", 10)
    result = MILPJoinOptimizer().optimize(query)
    print(result.plan.describe(), result.true_cost)

Packages
--------
``repro.catalog``
    Tables, columns, predicates, queries.
``repro.workloads``
    Steinbrunn-style random queries, TPC-H-like and JOB-like schemas.
``repro.milp``
    The MILP solver substrate (model API + branch-and-bound).
``repro.plans``
    Left-deep plans, exact cardinalities and operator cost formulas.
``repro.dp``
    Classical baselines: Selinger DP, bushy DP, greedy.
``repro.core``
    The paper's MILP formulation and optimizer facade.
``repro.harness``
    Experiment harness regenerating the paper's figures.
"""

from repro.catalog import Column, CorrelatedGroup, Predicate, Query, Table
from repro.core import (
    FormulationConfig,
    JoinOrderFormulation,
    MILPJoinOptimizer,
    OptimizationResult,
    optimize_query,
)
from repro.dp import (
    BushyOptimizer,
    GreedyOptimizer,
    IKKBZOptimizer,
    IterativeImprovement,
    SelingerOptimizer,
    SimulatedAnnealing,
)
from repro.exceptions import ReproError
from repro.milp import SolverOptions
from repro.sql import Schema, optimize_blocks, sql_to_query, unnest_sql
from repro.plans import (
    CostContext,
    JoinAlgorithm,
    LeftDeepPlan,
    PlanCostEvaluator,
)
from repro.workloads import QueryGenerator

__version__ = "1.0.0"

__all__ = [
    "BushyOptimizer",
    "Column",
    "CorrelatedGroup",
    "CostContext",
    "FormulationConfig",
    "GreedyOptimizer",
    "IKKBZOptimizer",
    "IterativeImprovement",
    "JoinAlgorithm",
    "JoinOrderFormulation",
    "LeftDeepPlan",
    "MILPJoinOptimizer",
    "OptimizationResult",
    "PlanCostEvaluator",
    "Predicate",
    "Query",
    "QueryGenerator",
    "ReproError",
    "Schema",
    "SelingerOptimizer",
    "SimulatedAnnealing",
    "SolverOptions",
    "Table",
    "sql_to_query",
    "optimize_blocks",
    "optimize_query",
    "unnest_sql",
    "__version__",
]
