"""repro — reproduction of "Solving the Join Ordering Problem via Mixed
Integer Linear Programming" (Trummer & Koch, SIGMOD 2017).

Quickstart::

    from repro import OptimizerService, QueryGenerator

    query = QueryGenerator(seed=1).generate("star", 10)
    service = OptimizerService()
    result = service.optimize(query)             # "auto" algorithm routing
    result = service.optimize(query, "milp")     # the paper's algorithm
    print(result.plan.describe(), result.true_cost)

Packages
--------
``repro.api``
    The unified public surface: ``Optimizer`` protocol, ``PlanResult``,
    the algorithm registry and the caching ``OptimizerService``.
``repro.catalog``
    Tables, columns, predicates, queries.
``repro.workloads``
    Steinbrunn-style random queries, TPC-H-like and JOB-like schemas.
``repro.milp``
    The MILP solver substrate (model API + branch-and-bound).
``repro.plans``
    Left-deep plans, exact cardinalities and operator cost formulas.
``repro.dp``
    Classical baselines: Selinger DP, bushy DP, greedy.
``repro.core``
    The paper's MILP formulation and optimizer facade.
``repro.harness``
    Experiment harness regenerating the paper's figures.
"""

from repro.api import (
    Optimizer,
    OptimizerService,
    OptimizerSettings,
    PlanResult,
    available_algorithms,
    create_optimizer,
    register_optimizer,
)
from repro.catalog import Column, CorrelatedGroup, Predicate, Query, Table
from repro.core import (
    FormulationConfig,
    JoinOrderFormulation,
    MILPJoinOptimizer,
    OptimizationResult,
    optimize_query,
)
from repro.dp import (
    BushyOptimizer,
    GreedyOptimizer,
    IKKBZOptimizer,
    IterativeImprovement,
    SelingerOptimizer,
    SimulatedAnnealing,
)
from repro.exceptions import ReproError
from repro.milp import SolverOptions
from repro.sql import Schema, optimize_blocks, sql_to_query, unnest_sql
from repro.plans import (
    CostContext,
    JoinAlgorithm,
    LeftDeepPlan,
    PlanCostEvaluator,
)
from repro.workloads import QueryGenerator

__version__ = "1.0.0"

__all__ = [
    "BushyOptimizer",
    "Column",
    "CorrelatedGroup",
    "CostContext",
    "FormulationConfig",
    "GreedyOptimizer",
    "IKKBZOptimizer",
    "IterativeImprovement",
    "JoinAlgorithm",
    "JoinOrderFormulation",
    "LeftDeepPlan",
    "MILPJoinOptimizer",
    "OptimizationResult",
    "Optimizer",
    "OptimizerService",
    "OptimizerSettings",
    "PlanCostEvaluator",
    "PlanResult",
    "Predicate",
    "Query",
    "QueryGenerator",
    "ReproError",
    "Schema",
    "SelingerOptimizer",
    "SimulatedAnnealing",
    "SolverOptions",
    "Table",
    "available_algorithms",
    "create_optimizer",
    "register_optimizer",
    "sql_to_query",
    "optimize_blocks",
    "optimize_query",
    "unnest_sql",
    "__version__",
]
