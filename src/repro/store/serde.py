"""Stable wire formats for stored plans and basis snapshots.

Two payload kinds cross the persistence boundary:

* **Plan records** — a :class:`~repro.api.PlanResult` plus the *request
  fingerprint* (cost model, precision, seed, budget) it was produced
  under, encoded as JSON over the :mod:`repro.catalog.serde` dict
  representations.  Engine-native diagnostics objects are sanitized
  down to their JSON-representable subset (a stored plan is a serving
  artifact, not a debugger snapshot); the dropped keys are recorded so
  a restored result never silently pretends to carry state it lost.
* **Basis snapshots** — a :class:`~repro.milp.lp_backend.SimplexBasis`
  (numpy ``basic``/``status`` arrays plus the form signature), encoded
  as a JSON header followed by raw little-endian array bytes.

Both are framed identically: a 4-byte magic, a 2-byte schema version
and a CRC32 of the body.  The frame makes corruption *detectable at
read time* — a store backend that hits a bad checksum or an unknown
schema version drops the record and reports a miss, mirroring how
``SimplexSession.install_basis`` refuses corrupt snapshots instead of
crashing ten pivots into a solve.  Bump :data:`SCHEMA_VERSION` whenever
the body layout changes; old readers then reject new records cleanly
(and vice versa) instead of misparsing them.
"""

from __future__ import annotations

import json
import math
import struct
import zlib
from typing import Any

import numpy as np

from repro.catalog.serde import query_from_dict, query_to_dict
from repro.exceptions import ReproError
from repro.milp.lp_backend import SimplexBasis
from repro.milp.solution import IncumbentEvent, SolveStatus
from repro.plans.operators import JoinAlgorithm
from repro.plans.plan import JoinStep, LeftDeepPlan

from repro.api.result import PlanResult

__all__ = [
    "SCHEMA_VERSION",
    "StoreCorruptionError",
    "decode_basis",
    "decode_plan_record",
    "encode_basis",
    "encode_plan_record",
    "verify_frame",
]

#: Bump on any change to the framed body layout; readers reject frames
#: carrying a different version rather than guessing.
SCHEMA_VERSION = 1

#: Frame magics: plan record / basis snapshot.
PLAN_MAGIC = b"RPR\x01"
BASIS_MAGIC = b"RBS\x01"

#: Frame header: magic (4s), schema version (u16), body crc32 (u32).
_FRAME = struct.Struct("<4sHI")


class StoreCorruptionError(ReproError):
    """A stored record failed checksum, framing or schema validation.

    Store backends catch this, drop the record and report a miss —
    corruption must degrade to a cold start, never a crash or a wrong
    answer.
    """


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def _frame(magic: bytes, body: bytes) -> bytes:
    return _FRAME.pack(magic, SCHEMA_VERSION, zlib.crc32(body)) + body


def _unframe(magic: bytes, blob: bytes) -> bytes:
    if len(blob) < _FRAME.size:
        raise StoreCorruptionError(
            f"record too short ({len(blob)} bytes) for a frame header"
        )
    found_magic, version, crc = _FRAME.unpack_from(blob)
    if found_magic != magic:
        raise StoreCorruptionError(
            f"bad magic {found_magic!r} (expected {magic!r})"
        )
    if version != SCHEMA_VERSION:
        raise StoreCorruptionError(
            f"unsupported schema version {version} "
            f"(this reader speaks {SCHEMA_VERSION})"
        )
    body = blob[_FRAME.size:]
    if zlib.crc32(body) != crc:
        raise StoreCorruptionError("checksum mismatch (record corrupt)")
    return body


def verify_frame(blob: bytes) -> bool:
    """Whether ``blob`` is a well-formed frame of either kind.

    Cheap integrity probe store backends run before handing a payload
    to callers; a full decode still validates the body structure.
    """
    try:
        if blob[:4] == PLAN_MAGIC:
            _unframe(PLAN_MAGIC, blob)
        elif blob[:4] == BASIS_MAGIC:
            _unframe(BASIS_MAGIC, blob)
        else:
            return False
    except (StoreCorruptionError, IndexError):
        return False
    return True


# ----------------------------------------------------------------------
# Floats (JSON has no inf/nan literals portable across parsers)
# ----------------------------------------------------------------------

def _num(value: float | None) -> float | str | None:
    if value is None:
        return None
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _denum(value: Any) -> float | None:
    if value is None:
        return None
    if isinstance(value, str):
        return float(value)
    return float(value)


def _json_safe(value: Any, depth: int = 0) -> tuple[Any, bool]:
    """(sanitized value, fully representable?) for diagnostics payloads."""
    if depth > 6:
        return None, False
    if value is None or isinstance(value, (bool, int, str)):
        return value, True
    if isinstance(value, float):
        return _num(value), True
    if isinstance(value, dict):
        out: dict[str, Any] = {}
        clean = True
        for key, item in value.items():
            if not isinstance(key, str):
                clean = False
                continue
            safe, ok = _json_safe(item, depth + 1)
            if ok:
                out[key] = safe
            else:
                clean = False
        return out, clean
    if isinstance(value, (list, tuple)):
        items: list[Any] = []
        clean = True
        for item in value:
            safe, ok = _json_safe(item, depth + 1)
            if ok:
                items.append(safe)
            else:
                clean = False
        return items, clean
    return None, False


# ----------------------------------------------------------------------
# Plan records
# ----------------------------------------------------------------------

def encode_plan_record(result: PlanResult, request: dict[str, Any]) -> bytes:
    """Serialize a :class:`PlanResult` plus its request fingerprint.

    ``request`` carries the service-side key material that is not part
    of the store key proper — ``{"cost_model", "precision", "seed",
    "budget"}`` — so a reader can verify a record matches its own
    configuration before serving it.
    """
    plan = result.plan
    diagnostics, complete = _json_safe(result.diagnostics)
    if not complete:
        # Record the loss: a restored result must be distinguishable
        # from the original when engine-native objects were dropped.
        dropped = sorted(
            key for key in result.diagnostics
            if key not in diagnostics
        )
        diagnostics["store_dropped_diagnostics"] = dropped
    body = {
        "algorithm": result.algorithm,
        "status": result.status.value,
        "objective": _num(result.objective),
        "best_bound": _num(result.best_bound),
        "true_cost": _num(result.true_cost),
        "solve_time": result.solve_time,
        "query": query_to_dict(result.query),
        "plan": None if plan is None else {
            "first_table": plan.first_table,
            "steps": [
                {"inner_table": step.inner_table,
                 "algorithm": step.algorithm.value}
                for step in plan.steps
            ],
        },
        "events": [
            {"time": event.time, "objective": _num(event.objective),
             "bound": _num(event.bound), "kind": event.kind}
            for event in result.events
        ],
        "diagnostics": diagnostics,
        "request": dict(request),
    }
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return _frame(PLAN_MAGIC, payload)


def decode_plan_record(blob: bytes) -> tuple[PlanResult, dict[str, Any]]:
    """Inverse of :func:`encode_plan_record`.

    Raises :class:`StoreCorruptionError` on any framing, checksum or
    structural defect — never a bare ``KeyError``/``ValueError`` a
    store backend would have to guess the meaning of.
    """
    payload = _unframe(PLAN_MAGIC, blob)
    try:
        body = json.loads(payload.decode("utf-8"))
        query = query_from_dict(body["query"])
        plan_doc = body["plan"]
        plan = None
        if plan_doc is not None:
            plan = LeftDeepPlan(
                query,
                plan_doc["first_table"],
                tuple(
                    JoinStep(
                        inner_table=step["inner_table"],
                        algorithm=JoinAlgorithm(step["algorithm"]),
                    )
                    for step in plan_doc["steps"]
                ),
            )
        result = PlanResult(
            algorithm=body["algorithm"],
            query=query,
            plan=plan,
            status=SolveStatus(body["status"]),
            objective=_denum(body["objective"]),
            best_bound=_denum(body["best_bound"]),
            true_cost=_denum(body["true_cost"]),
            solve_time=float(body["solve_time"]),
            events=[
                IncumbentEvent(
                    time=float(event["time"]),
                    objective=_denum(event["objective"]),
                    bound=_denum(event["bound"]),
                    kind=event["kind"],
                )
                for event in body["events"]
            ],
            diagnostics=body["diagnostics"],
        )
        request = body["request"]
        if not isinstance(request, dict):
            raise StoreCorruptionError("request fingerprint is not a dict")
        return result, request
    except StoreCorruptionError:
        raise
    except Exception as error:  # noqa: BLE001 - malformed body
        raise StoreCorruptionError(
            f"malformed plan record: {type(error).__name__}: {error}"
        ) from error


# ----------------------------------------------------------------------
# Basis snapshots
# ----------------------------------------------------------------------

def encode_basis(basis: SimplexBasis) -> bytes:
    """Serialize a basis snapshot (header JSON + raw array bytes).

    Arrays are normalized to the solver's dtypes (``int64`` basic,
    ``int8`` status) in little-endian order, so a snapshot written on
    one host decodes bit-identically on another.
    """
    basic = np.ascontiguousarray(
        np.asarray(basis.basic), dtype="<i8"
    )
    status = np.ascontiguousarray(
        np.asarray(basis.status), dtype="<i1"
    )
    header = json.dumps(
        {
            "signature": list(int(part) for part in basis.signature),
            "basic_len": int(basic.size),
            "status_len": int(status.size),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    body = (
        struct.pack("<I", len(header))
        + header
        + basic.tobytes()
        + status.tobytes()
    )
    return _frame(BASIS_MAGIC, body)


def decode_basis(blob: bytes) -> SimplexBasis:
    """Inverse of :func:`encode_basis`; raises
    :class:`StoreCorruptionError` on any defect."""
    body = _unframe(BASIS_MAGIC, blob)
    try:
        (header_len,) = struct.unpack_from("<I", body)
        offset = 4
        header = json.loads(body[offset:offset + header_len].decode("utf-8"))
        offset += header_len
        basic_len = int(header["basic_len"])
        status_len = int(header["status_len"])
        basic_bytes = basic_len * 8
        expected = offset + basic_bytes + status_len
        if len(body) != expected:
            raise StoreCorruptionError(
                f"basis body is {len(body)} bytes, expected {expected}"
            )
        basic = np.frombuffer(
            body, dtype="<i8", count=basic_len, offset=offset
        ).astype(np.int64)
        offset += basic_bytes
        status = np.frombuffer(
            body, dtype="<i1", count=status_len, offset=offset
        ).astype(np.int8)
        signature = tuple(int(part) for part in header["signature"])
        return SimplexBasis(basic=basic, status=status, signature=signature)
    except StoreCorruptionError:
        raise
    except Exception as error:  # noqa: BLE001 - malformed body
        raise StoreCorruptionError(
            f"malformed basis record: {type(error).__name__}: {error}"
        ) from error
