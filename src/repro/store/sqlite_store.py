"""SQLite-backed :class:`PlanStore` — the default durable backend.

One database file, WAL journal mode: readers never block the (single)
writer and a crash mid-transaction rolls back to the last committed
state, which is exactly the durability story the serving layer wants
from a plan cache — lose at most the uncommitted tail, never the file.

Concurrency: one connection opened with ``check_same_thread=False`` and
every operation serialized under an internal lock.  The serving layer's
workers all funnel through that lock; cross-*process* readers are safe
via WAL but this class does not arbitrate cross-process writers (the
multi-process sharding item owns that).

Schema (see ``_SCHEMA``): a ``plans`` table keyed by
``(catalog_version, algorithm, signature)`` with LRU metadata
(``last_hit``/``hits``), a ``bases`` table keyed by form signature, and
a ``meta`` key/value table (last compaction stamp).  Payloads are the
framed blobs from :mod:`repro.store.serde`; integrity checking lives in
the base class, so a torn page that survives sqlite's own guards is
still caught by the frame CRC and dropped, not served.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
import time
from pathlib import Path

from repro.store.base import PlanStore, StoreError

__all__ = ["SqlitePlanStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS plans (
    catalog_version INTEGER NOT NULL,
    algorithm       TEXT    NOT NULL,
    signature       TEXT    NOT NULL,
    payload         BLOB    NOT NULL,
    created         REAL    NOT NULL,
    last_hit        REAL    NOT NULL,
    hits            INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (catalog_version, algorithm, signature)
);
CREATE INDEX IF NOT EXISTS plans_lru ON plans (last_hit);
CREATE TABLE IF NOT EXISTS bases (
    signature TEXT PRIMARY KEY,
    payload   BLOB NOT NULL,
    created   REAL NOT NULL,
    last_hit  REAL NOT NULL,
    hits      INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class SqlitePlanStore(PlanStore):
    """Durable plan + basis store over a single sqlite database file."""

    backend_name = "sqlite"

    def __init__(
        self, path: "str | Path", max_plans: int | None = None
    ) -> None:
        super().__init__(max_plans=max_plans)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        try:
            self._db = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            # WAL: concurrent readers + single writer, crash-safe.
            # Some filesystems (network mounts) refuse WAL; the store
            # still works there, just with coarser reader blocking.
            try:
                self._db.execute("PRAGMA journal_mode=WAL")
            except sqlite3.DatabaseError:
                pass
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)
            self._db.commit()
        except sqlite3.DatabaseError as error:
            raise StoreError(
                f"cannot open sqlite store at {self.path}: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Primitives (all called from the instrumented base-class surface)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _guarded(self):
        # The closed check happens under the lock: a concurrent close()
        # cannot slip between the check and the operation.
        with self._lock:
            if self._closed:
                raise StoreError(f"store at {self.path} is closed")
            yield

    def _raw_get_plan(self, version, algorithm, signature):
        with self._guarded():
            row = self._db.execute(
                "SELECT payload FROM plans WHERE catalog_version=? "
                "AND algorithm=? AND signature=?",
                (version, algorithm, signature),
            ).fetchone()
        return row[0] if row else None

    def _raw_touch_plan(self, version, algorithm, signature, now):
        with self._guarded():
            self._db.execute(
                "UPDATE plans SET last_hit=?, hits=hits+1 WHERE "
                "catalog_version=? AND algorithm=? AND signature=?",
                (now, version, algorithm, signature),
            )
            self._db.commit()

    def _raw_put_plan(self, version, algorithm, signature, payload, now):
        with self._guarded():
            self._db.execute(
                "INSERT INTO plans (catalog_version, algorithm, signature,"
                " payload, created, last_hit, hits)"
                " VALUES (?, ?, ?, ?, ?, ?, 0)"
                " ON CONFLICT(catalog_version, algorithm, signature)"
                " DO UPDATE SET payload=excluded.payload,"
                " last_hit=excluded.last_hit",
                (version, algorithm, signature, payload, now, now),
            )
            evicted = 0
            (count,) = self._db.execute(
                "SELECT COUNT(*) FROM plans"
            ).fetchone()
            overflow = count - self.max_plans
            if overflow > 0:
                cursor = self._db.execute(
                    "DELETE FROM plans WHERE rowid IN ("
                    " SELECT rowid FROM plans ORDER BY last_hit ASC"
                    " LIMIT ?)",
                    (overflow,),
                )
                evicted = cursor.rowcount
            self._db.commit()
            return evicted

    def _raw_delete_plan(self, version, algorithm, signature):
        with self._guarded():
            self._db.execute(
                "DELETE FROM plans WHERE catalog_version=? AND "
                "algorithm=? AND signature=?",
                (version, algorithm, signature),
            )
            self._db.commit()

    def _raw_get_basis(self, signature):
        with self._guarded():
            row = self._db.execute(
                "SELECT payload FROM bases WHERE signature=?",
                (signature,),
            ).fetchone()
            if row:
                self._db.execute(
                    "UPDATE bases SET last_hit=?, hits=hits+1 "
                    "WHERE signature=?",
                    (time.time(), signature),
                )
                self._db.commit()
        return row[0] if row else None

    def _raw_put_basis(self, signature, payload, now):
        with self._guarded():
            self._db.execute(
                "INSERT INTO bases (signature, payload, created,"
                " last_hit, hits) VALUES (?, ?, ?, ?, 0)"
                " ON CONFLICT(signature) DO UPDATE SET"
                " payload=excluded.payload, last_hit=excluded.last_hit",
                (signature, payload, now, now),
            )
            self._db.commit()

    def _raw_delete_basis(self, signature):
        with self._guarded():
            self._db.execute(
                "DELETE FROM bases WHERE signature=?", (signature,)
            )
            self._db.commit()

    def _raw_hot_plans(self, version, limit):
        query = (
            "SELECT algorithm, signature, payload FROM plans "
            "WHERE catalog_version=? ORDER BY last_hit DESC"
        )
        params: tuple = (version,)
        if limit is not None:
            query += " LIMIT ?"
            params = (version, int(limit))
        with self._guarded():
            rows = self._db.execute(query, params).fetchall()
        return [(row[0], row[1], row[2]) for row in rows]

    def _raw_bases(self, limit):
        query = "SELECT signature, payload FROM bases ORDER BY last_hit DESC"
        params: tuple = ()
        if limit is not None:
            query += " LIMIT ?"
            params = (int(limit),)
        with self._guarded():
            rows = self._db.execute(query, params).fetchall()
        return [(row[0], row[1]) for row in rows]

    def _raw_invalidate_below(self, version):
        with self._guarded():
            cursor = self._db.execute(
                "DELETE FROM plans WHERE catalog_version < ?", (version,)
            )
            self._db.commit()
            return cursor.rowcount

    def _raw_latest_version(self):
        with self._guarded():
            (value,) = self._db.execute(
                "SELECT COALESCE(MAX(catalog_version), 0) FROM plans"
            ).fetchone()
        return int(value)

    def _raw_compact(self):
        with self._guarded():
            self._db.execute(
                "INSERT INTO meta (key, value) VALUES ('last_compaction', ?)"
                " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (repr(time.time()),),
            )
            self._db.commit()
            self._db.execute("VACUUM")
            # Fold the WAL back into the main file so size-on-disk
            # reflects the vacuum.
            try:
                self._db.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.DatabaseError:
                pass

    def _raw_flush(self):
        with self._guarded():
            self._db.commit()
            try:
                self._db.execute("PRAGMA wal_checkpoint(PASSIVE)")
            except sqlite3.DatabaseError:
                pass

    def _raw_close(self):
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._db.commit()
                self._db.close()
            except sqlite3.DatabaseError:
                pass

    def _raw_summary(self):
        with self._guarded():
            per_version = {
                str(version): count
                for version, count in self._db.execute(
                    "SELECT catalog_version, COUNT(*) FROM plans "
                    "GROUP BY catalog_version ORDER BY catalog_version"
                )
            }
            per_algorithm = {
                algorithm: count
                for algorithm, count in self._db.execute(
                    "SELECT algorithm, COUNT(*) FROM plans "
                    "GROUP BY algorithm ORDER BY algorithm"
                )
            }
            (plan_count,) = self._db.execute(
                "SELECT COUNT(*) FROM plans"
            ).fetchone()
            (basis_count,) = self._db.execute(
                "SELECT COUNT(*) FROM bases"
            ).fetchone()
            row = self._db.execute(
                "SELECT value FROM meta WHERE key='last_compaction'"
            ).fetchone()
        size = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            if candidate.exists():
                size += candidate.stat().st_size
        return {
            "path": str(self.path),
            "plans": int(plan_count),
            "bases": int(basis_count),
            "plans_per_catalog_version": per_version,
            "plans_per_algorithm": per_algorithm,
            "size_bytes": size,
            "last_compaction": float(row[0]) if row else None,
        }
