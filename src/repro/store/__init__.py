"""repro.store — persistent, versioned plan + basis store.

A durable companion to the in-memory serving caches: plan records keyed
by ``(catalog_version, algorithm, query_signature)`` and simplex-basis
snapshots keyed by form signature, behind one :class:`PlanStore`
interface with two backends —

* :class:`SqlitePlanStore` (default): one sqlite file in WAL mode,
  concurrent readers + single writer, crash-safe by construction;
* :class:`LogPlanStore`: one append-only log of checksummed records
  with torn-tail recovery and atomic-rename compaction.

Everything above this package treats the store as *advisory*: a failed
or corrupt read degrades to a re-solve, a failed write to dropped
accounting.  Correctness never depends on persistence.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.store.base import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_PLANS,
    DEFAULT_REPLAY_BUDGET,
    PlanStore,
    StoreError,
    StoreStats,
    basis_key,
    store_flush_interval,
    store_max_plans,
    store_replay_budget,
)
from repro.store.log_store import LogPlanStore
from repro.store.serde import (
    SCHEMA_VERSION,
    StoreCorruptionError,
    decode_basis,
    decode_plan_record,
    encode_basis,
    encode_plan_record,
    verify_frame,
)
from repro.store.sqlite_store import SqlitePlanStore

__all__ = [
    "DEFAULT_FLUSH_INTERVAL",
    "DEFAULT_MAX_PLANS",
    "DEFAULT_REPLAY_BUDGET",
    "BACKENDS",
    "LogPlanStore",
    "PlanStore",
    "SCHEMA_VERSION",
    "SqlitePlanStore",
    "StoreCorruptionError",
    "StoreError",
    "StoreStats",
    "basis_key",
    "decode_basis",
    "decode_plan_record",
    "encode_basis",
    "encode_plan_record",
    "open_store",
    "shard_store_path",
    "store_flush_interval",
    "store_max_plans",
    "store_replay_budget",
    "verify_frame",
]

#: Backend registry for :func:`open_store` / ``--store-backend``.
BACKENDS = {
    "sqlite": SqlitePlanStore,
    "log": LogPlanStore,
}


def open_store(
    path: "str | Path",
    backend: str | None = None,
    max_plans: int | None = None,
) -> PlanStore:
    """Open (creating if needed) a plan store at ``path``.

    Backend selection, most specific wins: the explicit ``backend``
    argument, then ``REPRO_STORE_BACKEND``, then ``"sqlite"``.
    """
    if backend is None:
        backend = os.environ.get("REPRO_STORE_BACKEND", "").strip() or "sqlite"
    backend = backend.lower()
    if backend not in BACKENDS:
        raise StoreError(
            f"unknown store backend {backend!r}; one of "
            f"{sorted(BACKENDS)}"
        )
    return BACKENDS[backend](path, max_plans=max_plans)


def shard_store_path(path: "str | Path", index: int) -> "Path":
    """Per-shard store path derived from a base path.

    Sharded serving gives every shard its *own* store file
    (``plans.db`` → ``plans.db.shard0``, ``.shard1``, ...): consistent-
    hash routing keeps each key on one shard, so splitting the store by
    shard keeps warm replay shard-local — a respawned shard replays
    exactly the plans and bases it owned, nothing it will never serve —
    and sidesteps cross-process write contention on one sqlite file.
    The derivation is stable, so a respawn (and the next server
    lifetime) reopens the same file.
    """
    base = Path(path)
    return base.with_name(f"{base.name}.shard{int(index)}")
