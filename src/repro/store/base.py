"""The :class:`PlanStore` contract shared by every persistence backend.

A plan store is a durable, versioned map with two keyspaces:

* ``(catalog_version, algorithm, signature) -> plan payload`` — one
  framed plan record (see :mod:`repro.store.serde`) per optimized
  request, where ``signature`` is the service's query signature;
* ``basis signature -> basis payload`` — one framed simplex-basis
  snapshot per form shape, mirroring how the
  :class:`~repro.milp.lp_backend.BasisExchangePool` keys its slots.

The base class owns everything backend-independent: payload integrity
checks (a record failing :func:`repro.store.serde.verify_frame` is
dropped and counted, never returned), LRU bookkeeping semantics,
fault-injection instrumentation (the ``store.get`` / ``store.put``
sites), and the :class:`StoreStats` counters the serving layer exposes
as metrics.  Backends implement the ``_raw_*`` primitives.

Durability and invalidation semantics
-------------------------------------
* ``put_plan``/``put_basis`` are upserts; eviction keeps at most
  ``max_plans`` plan records, least-recently-*hit* first (an entry
  that keeps getting read stays, however old).
* Catalog versions are part of the plan keyspace, exactly like the
  in-memory plan cache: a bumped version makes every older entry
  unmatchable immediately, and :meth:`invalidate_below` reclaims the
  space.  Basis snapshots survive version bumps deliberately — a basis
  is advisory (``install_basis`` re-validates every snapshot), so a
  stale one costs a cold start, never a wrong answer.
* :meth:`flush` makes previously written records durable;
  :meth:`compact` additionally reclaims dead space.  A hard kill
  without either loses at most the writes since the last flush — the
  store reopens from its last durable state with corrupt/torn records
  skipped, not crashed on.

Environment knobs (all overridable per-instance)
------------------------------------------------
* ``REPRO_STORE_MAX_PLANS`` — plan-record cap before LRU eviction
  (default :data:`DEFAULT_MAX_PLANS`).
* ``REPRO_STORE_REPLAY_BUDGET`` — how many hot plans (and basis
  snapshots) a restarting server replays (default
  :data:`DEFAULT_REPLAY_BUDGET`).
* ``REPRO_STORE_FLUSH_INTERVAL`` — seconds between the serving
  layer's periodic store flushes (default
  :data:`DEFAULT_FLUSH_INTERVAL`).
* ``REPRO_STORE_BACKEND`` — default backend for paths without one
  (``sqlite`` or ``log``).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass

from repro import faultinject
from repro.exceptions import ReproError

from repro.store import serde

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_FLUSH_INTERVAL",
    "DEFAULT_MAX_PLANS",
    "DEFAULT_REPLAY_BUDGET",
    "PlanStore",
    "StoreError",
    "StoreStats",
    "basis_key",
    "store_flush_interval",
    "store_max_plans",
    "store_replay_budget",
]

#: Plan-record cap before LRU eviction (``REPRO_STORE_MAX_PLANS``).
DEFAULT_MAX_PLANS = 4096

#: Hot records replayed on server start (``REPRO_STORE_REPLAY_BUDGET``).
DEFAULT_REPLAY_BUDGET = 256

#: Seconds between periodic flushes (``REPRO_STORE_FLUSH_INTERVAL``).
DEFAULT_FLUSH_INTERVAL = 30.0


class StoreError(ReproError):
    """A store backend failed (I/O error, closed store, bad argument).

    The serving layers treat every ``StoreError`` as advisory: a failed
    read is a miss, a failed write is dropped accounting — requests are
    never failed because persistence is.
    """


def _env_positive_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise StoreError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise StoreError(f"{name} must be >= 1, got {value}")
    return value


def store_max_plans() -> int:
    """Effective plan cap, honouring ``REPRO_STORE_MAX_PLANS``."""
    return _env_positive_int("REPRO_STORE_MAX_PLANS", DEFAULT_MAX_PLANS)


def store_replay_budget() -> int:
    """Effective replay budget, honouring ``REPRO_STORE_REPLAY_BUDGET``."""
    return _env_positive_int(
        "REPRO_STORE_REPLAY_BUDGET", DEFAULT_REPLAY_BUDGET
    )


def store_flush_interval() -> float:
    """Effective flush cadence, honouring ``REPRO_STORE_FLUSH_INTERVAL``."""
    raw = os.environ.get("REPRO_STORE_FLUSH_INTERVAL")
    if raw is None or not raw.strip():
        return DEFAULT_FLUSH_INTERVAL
    try:
        value = float(raw)
    except ValueError:
        raise StoreError(
            f"REPRO_STORE_FLUSH_INTERVAL must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise StoreError(
            f"REPRO_STORE_FLUSH_INTERVAL must be positive, got {value}"
        )
    return value


def basis_key(signature: "tuple[int, ...]") -> str:
    """Canonical string key for a form-signature tuple."""
    return ",".join(str(int(part)) for part in signature)


@dataclass
class StoreStats:
    """Store-side accounting, exposed through the serving metrics.

    ``corrupt_dropped`` counts records rejected at read time (checksum
    or schema failures); a growing value after a crash is the torn tail
    being cleaned up, a growing value in steady state is disk rot.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_dropped: int = 0
    evictions: int = 0
    compactions: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_dropped": self.corrupt_dropped,
            "evictions": self.evictions,
            "compactions": self.compactions,
            "errors": self.errors,
        }


class PlanStore:
    """Abstract durable plan + basis store.

    Subclasses implement the ``_raw_*`` primitives; the public methods
    here add fault injection, integrity filtering and stats — one
    instrumentation point shared by every backend.  All public methods
    are thread-safe (backends lock internally).
    """

    #: Backend identifier (``"sqlite"`` / ``"log"``), for summaries.
    backend_name = "abstract"

    def __init__(self, max_plans: int | None = None) -> None:
        self.max_plans = (
            int(max_plans) if max_plans is not None else store_max_plans()
        )
        if self.max_plans < 1:
            raise StoreError("max_plans must be >= 1")
        self.stats = StoreStats()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public surface (instrumented)
    # ------------------------------------------------------------------

    def get_plan(
        self, catalog_version: int, algorithm: str, signature: str
    ) -> bytes | None:
        """The stored plan payload for this key, or ``None``.

        A payload that fails frame verification is deleted, counted in
        ``stats.corrupt_dropped`` and reported as a miss — corruption
        degrades to a re-solve, never an exception on the serving path.
        """
        fault = self._fault(faultinject.STORE_GET)
        key = (int(catalog_version), str(algorithm), str(signature))
        payload = self._raw_get_plan(*key)
        payload = self._checked(
            payload, lambda: self._raw_delete_plan(*key), fault
        )
        with self._stats_lock:
            if payload is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        if payload is not None:
            self._raw_touch_plan(*key, now=time.time())
        return payload

    def put_plan(
        self,
        catalog_version: int,
        algorithm: str,
        signature: str,
        payload: bytes,
    ) -> None:
        """Upsert one plan record; evicts LRU entries past ``max_plans``."""
        self._fault(faultinject.STORE_PUT)
        evicted = self._raw_put_plan(
            int(catalog_version), str(algorithm), str(signature),
            bytes(payload), now=time.time(),
        )
        with self._stats_lock:
            self.stats.writes += 1
            self.stats.evictions += evicted

    def get_basis(self, signature: str) -> bytes | None:
        """The stored basis payload for a form-signature key, or ``None``."""
        fault = self._fault(faultinject.STORE_GET)
        payload = self._raw_get_basis(str(signature))
        payload = self._checked(
            payload, lambda: self._raw_delete_basis(str(signature)), fault
        )
        with self._stats_lock:
            if payload is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return payload

    def put_basis(self, signature: str, payload: bytes) -> None:
        """Upsert one basis snapshot keyed by form signature."""
        self._fault(faultinject.STORE_PUT)
        self._raw_put_basis(str(signature), bytes(payload), now=time.time())
        with self._stats_lock:
            self.stats.writes += 1

    def hot_plans(
        self, catalog_version: int, limit: int | None = None
    ) -> "list[tuple[str, str, bytes]]":
        """Up to ``limit`` ``(algorithm, signature, payload)`` rows for
        ``catalog_version``, most-recently-hit first (the replay set).

        Corrupt rows are dropped and skipped, exactly as in
        :meth:`get_plan`; the returned list only contains payloads that
        passed frame verification.
        """
        fault = self._fault(faultinject.STORE_GET)
        rows = self._raw_hot_plans(int(catalog_version), limit)
        out = []
        for algorithm, signature, payload in rows:
            checked = self._checked(
                payload,
                lambda a=algorithm, s=signature: self._raw_delete_plan(
                    int(catalog_version), a, s
                ),
                fault,
            )
            if checked is not None:
                out.append((algorithm, signature, checked))
            # One fault visit corrupts at most one record — keeping the
            # schedule a pure function of call counts, not row counts.
            fault = None
        return out

    def bases(
        self, limit: int | None = None
    ) -> "list[tuple[str, bytes]]":
        """Up to ``limit`` ``(signature, payload)`` basis rows, most
        recently written first; corrupt rows dropped."""
        fault = self._fault(faultinject.STORE_GET)
        rows = self._raw_bases(limit)
        out = []
        for signature, payload in rows:
            checked = self._checked(
                payload,
                lambda s=signature: self._raw_delete_basis(s),
                fault,
            )
            if checked is not None:
                out.append((signature, checked))
            fault = None
        return out

    def invalidate_below(self, catalog_version: int) -> int:
        """Delete every plan record from a catalog version older than
        ``catalog_version``; returns how many were dropped.

        Matches :meth:`OptimizerService.bump_catalog_version` semantics:
        the version is already part of every key (stale entries could
        never be served), this merely reclaims their space eagerly.
        """
        dropped = self._raw_invalidate_below(int(catalog_version))
        with self._stats_lock:
            self.stats.evictions += dropped
        return dropped

    def latest_version(self) -> int:
        """Highest catalog version with stored plans (0 when empty).

        A restarting :class:`~repro.api.OptimizerService` adopts this so
        its version lineage continues across process restarts instead of
        resetting to 0 and orphaning every stored record.
        """
        return self._raw_latest_version()

    def compact(self) -> None:
        """Reclaim dead space (dropped/overwritten/evicted records)."""
        self._raw_compact()
        with self._stats_lock:
            self.stats.compactions += 1

    def flush(self) -> None:
        """Make every previously written record durable."""
        self._raw_flush()

    def close(self) -> None:
        """Flush and release backend resources (idempotent)."""
        self._raw_close()

    def summary(self) -> dict:
        """Operator-facing contents summary (``repro store inspect``,
        ``GET /stats``): entries per catalog version and per algorithm,
        bytes on disk, basis count, last compaction time."""
        summary = self._raw_summary()
        summary["backend"] = self.backend_name
        summary["max_plans"] = self.max_plans
        summary["stats"] = self.stats.as_dict()
        return summary

    def __enter__(self) -> "PlanStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _fault(self, site: str):
        """Fire the fault-injection site shared by all backends.

        ``exception``/``error`` raise :class:`StoreError` (the callers'
        advisory failure type — for a store an unreadable backend *is*
        the error); ``slow`` stalls.  A ``corrupt`` spec is returned to
        the caller, which applies it to the payload it reads (see
        :meth:`_checked`), modelling rot on the read path while the
        backend keeps its pristine copy.
        """
        fault = faultinject.check(site)
        if fault is None:
            return None
        if fault.kind == "slow":
            time.sleep(fault.delay)
        elif fault.kind in ("exception", "error"):
            with self._stats_lock:
                self.stats.errors += 1
            raise StoreError(f"injected: {fault.message}")
        return fault

    def _checked(self, payload, drop, fault=None) -> bytes | None:
        """Frame-verify a payload; drop + count the record when corrupt.

        An injected ``corrupt`` fault models rot *in transit*: the
        caller sees (and must survive) the corruption, but the
        backend's pristine copy is kept — only genuinely corrupt
        at-rest records are deleted.
        """
        if payload is None:
            return None
        in_transit = fault is not None and fault.kind == "corrupt"
        if in_transit:
            payload = faultinject.corrupt_payload(
                payload, faultinject.active().rng_for(fault)
            )
        if serde.verify_frame(payload):
            return payload
        with self._stats_lock:
            self.stats.corrupt_dropped += 1
        if not in_transit:
            try:
                drop()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                logger.debug(
                    "failed to drop corrupt record; it stays counted in "
                    "corrupt_dropped and keeps failing verification",
                    exc_info=True,
                )
        return None

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------

    def _raw_get_plan(self, version, algorithm, signature):
        raise NotImplementedError

    def _raw_touch_plan(self, version, algorithm, signature, now):
        raise NotImplementedError

    def _raw_put_plan(self, version, algorithm, signature, payload, now):
        """Upsert; returns how many records were LRU-evicted."""
        raise NotImplementedError

    def _raw_delete_plan(self, version, algorithm, signature):
        raise NotImplementedError

    def _raw_get_basis(self, signature):
        raise NotImplementedError

    def _raw_put_basis(self, signature, payload, now):
        raise NotImplementedError

    def _raw_delete_basis(self, signature):
        raise NotImplementedError

    def _raw_hot_plans(self, version, limit):
        raise NotImplementedError

    def _raw_bases(self, limit):
        raise NotImplementedError

    def _raw_invalidate_below(self, version):
        raise NotImplementedError

    def _raw_latest_version(self):
        raise NotImplementedError

    def _raw_compact(self):
        raise NotImplementedError

    def _raw_flush(self):
        raise NotImplementedError

    def _raw_close(self):
        raise NotImplementedError

    def _raw_summary(self):
        raise NotImplementedError
