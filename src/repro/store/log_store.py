"""Append-only log :class:`PlanStore` backend.

One file of framed records, each a checksummed operation::

    magic(4) | op(1) | key_len(u32) | val_len(u32) | crc32(u32) | key | val

where ``crc32`` covers ``op + key + val``.  Writes are pure appends
(upserts and deletes alike), so the write path never seeks and a crash
can only damage the *tail* of the file.  On open the log is replayed
into an in-memory index; replay stops at the first record that fails
framing or checksum — everything after a torn write is unreachable
anyway — and the file is truncated back to the last good offset so
subsequent appends extend a clean log.

Compaction rewrites the live index into a fresh file and atomically
renames it over the log, reclaiming space from superseded and deleted
records.  Payload values are the framed blobs from
:mod:`repro.store.serde`; record-level CRCs here protect the log
structure, the payload frames protect the contents — a mid-file bitflip
fails the record CRC and the record is skipped (its key keeps its
previous value), not crashed on.
"""

from __future__ import annotations

import contextlib
import os
import struct
import threading
import time
import zlib
from pathlib import Path

from repro.store.base import PlanStore, StoreError

__all__ = ["LogPlanStore"]

_MAGIC = b"RLG\x01"
_RECORD = struct.Struct("<4sBIII")  # magic, op, key_len, val_len, crc32

# Record operations.  Keys are UTF-8 strings; the plan keyspace embeds
# its composite key as "version\x1falgorithm\x1fsignature".
_OP_PLAN_PUT = 1
_OP_PLAN_DEL = 2
_OP_BASIS_PUT = 3
_OP_BASIS_DEL = 4
_OP_META = 5

_KEY_SEP = "\x1f"


def _plan_key(version: int, algorithm: str, signature: str) -> str:
    return _KEY_SEP.join((str(int(version)), algorithm, signature))


def _split_plan_key(key: str) -> "tuple[int, str, str]":
    version, algorithm, signature = key.split(_KEY_SEP, 2)
    return int(version), algorithm, signature


class _Entry:
    """In-memory index slot: payload + LRU metadata."""

    __slots__ = ("payload", "created", "last_hit", "hits")

    def __init__(self, payload: bytes, now: float):
        self.payload = payload
        self.created = now
        self.last_hit = now
        self.hits = 0


class LogPlanStore(PlanStore):
    """Durable plan + basis store over one append-only log file."""

    backend_name = "log"

    def __init__(
        self, path: "str | Path", max_plans: int | None = None
    ) -> None:
        super().__init__(max_plans=max_plans)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self._plans: dict[str, _Entry] = {}
        self._bases: dict[str, _Entry] = {}
        self._meta: dict[str, str] = {}
        #: Log records whose effect was later superseded (rewrite fuel).
        self._dead_records = 0
        self._torn_tail_dropped = 0
        try:
            self._replay()
            self._file = open(self.path, "ab")
        except OSError as error:
            raise StoreError(
                f"cannot open log store at {self.path}: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Log replay and append
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild the index from the log, truncating any torn tail."""
        if not self.path.exists():
            return
        good_offset = 0
        now = time.time()
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset < len(data):
            if offset + _RECORD.size > len(data):
                break  # torn header
            magic, op, key_len, val_len, crc = _RECORD.unpack_from(
                data, offset
            )
            end = offset + _RECORD.size + key_len + val_len
            if magic != _MAGIC or end > len(data):
                break  # torn or misaligned record
            key_bytes = data[offset + _RECORD.size:offset + _RECORD.size + key_len]
            value = data[offset + _RECORD.size + key_len:end]
            if zlib.crc32(bytes([op]) + key_bytes + value) != crc:
                # A mid-file CRC failure cannot be told apart from a torn
                # tail without trusting the (possibly rotten) length
                # fields of later records; stop here, like the tail case.
                break
            try:
                key = key_bytes.decode("utf-8")
            except UnicodeDecodeError:
                break
            self._apply(op, key, value, now)
            offset = end
            good_offset = offset
        if good_offset < len(data):
            self._torn_tail_dropped += 1
            with open(self.path, "r+b") as handle:
                handle.truncate(good_offset)

    def _apply(self, op: int, key: str, value: bytes, now: float) -> None:
        """Apply one replayed record to the in-memory index."""
        if op == _OP_PLAN_PUT:
            if key in self._plans:
                self._dead_records += 1
            self._plans[key] = _Entry(value, now)
        elif op == _OP_PLAN_DEL:
            self._dead_records += 1 + (1 if self._plans.pop(key, None) else 0)
        elif op == _OP_BASIS_PUT:
            if key in self._bases:
                self._dead_records += 1
            self._bases[key] = _Entry(value, now)
        elif op == _OP_BASIS_DEL:
            self._dead_records += 1 + (1 if self._bases.pop(key, None) else 0)
        elif op == _OP_META:
            self._meta[key] = value.decode("utf-8", "replace")
        # Unknown ops are skipped: a newer writer may append record
        # kinds this reader does not understand yet.

    def _append(self, op: int, key: str, value: bytes = b"") -> None:
        key_bytes = key.encode("utf-8")
        crc = zlib.crc32(bytes([op]) + key_bytes + value)
        self._file.write(
            _RECORD.pack(_MAGIC, op, len(key_bytes), len(value), crc)
        )
        self._file.write(key_bytes)
        self._file.write(value)

    @contextlib.contextmanager
    def _guarded(self):
        # The closed check happens under the lock: a concurrent close()
        # cannot slip between the check and the operation.
        with self._lock:
            if self._closed:
                raise StoreError(f"store at {self.path} is closed")
            yield

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def _raw_get_plan(self, version, algorithm, signature):
        key = _plan_key(version, algorithm, signature)
        with self._guarded():
            entry = self._plans.get(key)
        return entry.payload if entry else None

    def _raw_touch_plan(self, version, algorithm, signature, now):
        key = _plan_key(version, algorithm, signature)
        with self._guarded():
            entry = self._plans.get(key)
            if entry:
                entry.last_hit = now
                entry.hits += 1

    def _raw_put_plan(self, version, algorithm, signature, payload, now):
        key = _plan_key(version, algorithm, signature)
        with self._guarded():
            if key in self._plans:
                self._dead_records += 1
            self._plans[key] = _Entry(payload, now)
            self._append(_OP_PLAN_PUT, key, payload)
            evicted = 0
            overflow = len(self._plans) - self.max_plans
            if overflow > 0:
                victims = sorted(
                    self._plans.items(), key=lambda item: item[1].last_hit
                )[:overflow]
                for victim_key, _ in victims:
                    del self._plans[victim_key]
                    self._append(_OP_PLAN_DEL, victim_key)
                    self._dead_records += 1
                    evicted += 1
            return evicted

    def _raw_delete_plan(self, version, algorithm, signature):
        key = _plan_key(version, algorithm, signature)
        with self._guarded():
            if self._plans.pop(key, None) is not None:
                self._append(_OP_PLAN_DEL, key)
                self._dead_records += 2

    def _raw_get_basis(self, signature):
        with self._guarded():
            entry = self._bases.get(signature)
            if entry:
                entry.last_hit = time.time()
                entry.hits += 1
        return entry.payload if entry else None

    def _raw_put_basis(self, signature, payload, now):
        with self._guarded():
            if signature in self._bases:
                self._dead_records += 1
            self._bases[signature] = _Entry(payload, now)
            self._append(_OP_BASIS_PUT, signature, payload)

    def _raw_delete_basis(self, signature):
        with self._guarded():
            if self._bases.pop(signature, None) is not None:
                self._append(_OP_BASIS_DEL, signature)
                self._dead_records += 2

    def _raw_hot_plans(self, version, limit):
        with self._guarded():
            rows = [
                (key, entry)
                for key, entry in self._plans.items()
                if _split_plan_key(key)[0] == int(version)
            ]
        rows.sort(key=lambda item: item[1].last_hit, reverse=True)
        if limit is not None:
            rows = rows[: int(limit)]
        out = []
        for key, entry in rows:
            _, algorithm, signature = _split_plan_key(key)
            out.append((algorithm, signature, entry.payload))
        return out

    def _raw_bases(self, limit):
        with self._guarded():
            rows = sorted(
                self._bases.items(),
                key=lambda item: item[1].last_hit,
                reverse=True,
            )
        if limit is not None:
            rows = rows[: int(limit)]
        return [(signature, entry.payload) for signature, entry in rows]

    def _raw_invalidate_below(self, version):
        with self._guarded():
            victims = [
                key
                for key in self._plans
                if _split_plan_key(key)[0] < int(version)
            ]
            for key in victims:
                del self._plans[key]
                self._append(_OP_PLAN_DEL, key)
                self._dead_records += 2
            return len(victims)

    def _raw_latest_version(self):
        with self._guarded():
            if not self._plans:
                return 0
            return max(_split_plan_key(key)[0] for key in self._plans)

    def _raw_compact(self):
        """Rewrite the live index into a fresh log, atomically renamed.

        The temp file lands in the same directory so the rename never
        crosses filesystems; a crash mid-compaction leaves the original
        log untouched.
        """
        with self._guarded():
            self._meta["last_compaction"] = repr(time.time())
            tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
            self._file.flush()
            original = self._file
            self._file = open(tmp_path, "wb")
            try:
                for key, value in self._meta.items():
                    self._append(_OP_META, key, value.encode("utf-8"))
                for key, entry in self._plans.items():
                    self._append(_OP_PLAN_PUT, key, entry.payload)
                for signature, entry in self._bases.items():
                    self._append(_OP_BASIS_PUT, signature, entry.payload)
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError:
                self._file.close()
                self._file = original
                tmp_path.unlink(missing_ok=True)
                raise StoreError(f"compaction failed for {self.path}")
            self._file.close()
            original.close()
            os.replace(tmp_path, self.path)
            self._file = open(self.path, "ab")
            self._dead_records = 0

    def _raw_flush(self):
        with self._guarded():
            self._file.flush()
            os.fsync(self._file.fileno())

    def _raw_close(self):
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError:
                pass
            self._file.close()

    def _raw_summary(self):
        with self._guarded():
            per_version: dict[str, int] = {}
            per_algorithm: dict[str, int] = {}
            for key in self._plans:
                version, algorithm, _ = _split_plan_key(key)
                per_version[str(version)] = per_version.get(str(version), 0) + 1
                per_algorithm[algorithm] = per_algorithm.get(algorithm, 0) + 1
            last_compaction = self._meta.get("last_compaction")
            summary = {
                "path": str(self.path),
                "plans": len(self._plans),
                "bases": len(self._bases),
                "plans_per_catalog_version": dict(
                    sorted(per_version.items(), key=lambda kv: int(kv[0]))
                ),
                "plans_per_algorithm": dict(sorted(per_algorithm.items())),
                "size_bytes": (
                    self.path.stat().st_size if self.path.exists() else 0
                ),
                "last_compaction": (
                    float(last_compaction) if last_compaction else None
                ),
                "dead_records": self._dead_records,
                "torn_tail_dropped": self._torn_tail_dropped,
            }
        return summary
