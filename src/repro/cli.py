"""Command-line interface: ``python -m repro.cli <command>``.

Built on the unified :mod:`repro.api` surface: every algorithm in the
registry is reachable through one ``--algorithm`` flag, and all of them
report through the same :class:`~repro.api.PlanResult`.

Commands
--------
``optimize``
    Optimize a query (from a JSON file or randomly generated) with any
    registered algorithm::

        python -m repro.cli optimize --algorithm auto --tables 6
        python -m repro.cli optimize --algorithm milp --topology star \\
            --tables 8 --time-limit 30
        python -m repro.cli optimize --algorithm selinger --query q.json

    ``--algorithm auto`` (the default is ``milp``, the paper's method)
    routes by table count and join-graph shape: exhaustive DP for small
    queries, IKKBZ for tree-shaped C_out queries, MILP for mid-size,
    greedy beyond.  ``--check-dp`` cross-checks any algorithm against the
    exhaustive DP optimum; ``--export-lp``/``--export-mps`` export the
    MILP formulation.
``algorithms``
    List every algorithm registered in :mod:`repro.api` (including
    third-party registrations) with budget-handling notes.  ``--json``
    emits machine-readable registry metadata for serve clients and the
    load generator.
``serve``
    Run the :mod:`repro.serve` optimization server with its JSON-over-
    HTTP front end (``POST /optimize``, ``GET /metrics``,
    ``GET /healthz``)::

        python -m repro.cli serve --port 8080 --workers 4
        curl -s localhost:8080/healthz

    Requests carry an optional ``priority`` and ``deadline_ms``;
    admission control sheds load with HTTP 503 when the queue is full,
    and deadline-constrained MILP requests run under a degraded budget
    instead of answering late.  Pair it with the closed-loop load
    generator ``python benchmarks/run_serve_bench.py`` (chain/star/
    clique/cycle mixes, configurable duplicate rate and arrival
    pattern) to measure throughput, latency percentiles and
    coalesce/cache/warm ratios.
    ``--store PATH`` persists plans and basis snapshots across
    restarts: a restarted server replays the hottest records before
    accepting traffic (see ``docs/operations.md``, "Persistence & warm
    restart").
    ``--shards N`` runs the multi-process tier instead: N shard child
    processes behind the same HTTP front end, consistent-hash routed,
    heartbeat-supervised, with crash failover and automatic warm
    respawn (see ``docs/operations.md``, "Sharded serving &
    failover").
``store inspect``
    Summarize a plan store for operators: entries per catalog version
    and algorithm, size on disk, last compaction::

        python -m repro.cli store inspect /var/lib/repro/plans.db
``trace``
    Record a traced synthetic workload through the serve stack and dump
    it for a trace viewer (see :mod:`repro.obs`)::

        python -m repro.cli trace --queries 4 --tables 6 \\
            --out trace.json
        # load trace.json into ui.perfetto.dev

    ``--dump-format jsonl`` emits one trace per line instead; the
    command always ends with a top-span summary table (where did the
    wall time go, aggregated over sampled requests).
``generate``
    Generate a random query and write it as JSON.
``figure1`` / ``figure2`` / ``ablation``
    Shortcuts to the experiment harness modules.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api import (
    OptimizerSettings,
    available_algorithms,
    create_optimizer,
)
from repro.catalog.serde import load_query, save_plan, save_query
from repro.dp.selinger import MAX_DP_TABLES
from repro.milp.io import write_lp
from repro.milp.mps import write_mps
from repro.workloads.generator import QueryGenerator


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    optimize = commands.add_parser(
        "optimize", help="optimize a query with any registered algorithm"
    )
    optimize.add_argument("--query", help="query JSON file (see `generate`)")
    optimize.add_argument("--topology", default="star")
    optimize.add_argument("--tables", type=int, default=8)
    optimize.add_argument("--seed", type=int, default=0)
    optimize.add_argument(
        "--algorithm", default="milp",
        help="registry key (see `algorithms`); 'auto' routes by query "
             "shape, default: milp",
    )
    optimize.add_argument(
        "--precision", default="high", choices=("high", "medium", "low")
    )
    optimize.add_argument(
        "--cost-model", default="hash",
        choices=("cout", "hash", "sort_merge", "bnl"),
    )
    optimize.add_argument("--time-limit", type=float, default=30.0)
    optimize.add_argument("--no-warm-start", action="store_true")
    optimize.add_argument(
        "--portfolio", action="store_true",
        help="deprecated alias for --algorithm milp-portfolio",
    )
    optimize.add_argument("--export-lp", help="write the MILP in LP format")
    optimize.add_argument("--export-mps", help="write the MILP in MPS format")
    optimize.add_argument("--save-plan", help="write the plan as JSON")
    optimize.add_argument(
        "--explain", action="store_true",
        help="print an EXPLAIN-style tree for the chosen plan",
    )
    optimize.add_argument(
        "--export-dot", help="write the plan as a Graphviz digraph"
    )
    optimize.add_argument(
        "--check-dp", action="store_true",
        help="cross-check against exhaustive DP (small queries only)",
    )

    algorithms = commands.add_parser(
        "algorithms", help="list registered optimization algorithms"
    )
    algorithms.add_argument(
        "--json", action="store_true",
        help="emit machine-readable registry metadata",
    )

    serve = commands.add_parser(
        "serve", help="run the JSON-over-HTTP optimization server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument(
        "--shards", type=int,
        default=int(os.environ.get("REPRO_SHARDS", "0")),
        help="run N shard worker processes behind the front end "
             "(0 = single-process; default: REPRO_SHARDS or 0)",
    )
    serve.add_argument(
        "--shard-workers", type=int, default=2,
        help="worker threads inside each shard process",
    )
    serve.add_argument("--time-limit", type=float, default=30.0,
                       help="default optimization budget in seconds")
    serve.add_argument(
        "--default-deadline", type=float, default=None,
        help="deadline (seconds) applied to requests that send none",
    )
    serve.add_argument(
        "--cost-model", default="hash",
        choices=("cout", "hash", "sort_merge", "bnl"),
    )
    serve.add_argument(
        "--precision", default="high", choices=("high", "medium", "low")
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="disable in-flight request coalescing",
    )
    serve.add_argument(
        "--no-share-bases", action="store_true",
        help="disable the cross-query basis exchange pool",
    )
    serve.add_argument(
        "--store", default=None, metavar="PATH",
        help="persist plans and bases at PATH; a restarted server "
             "replays them before accepting traffic",
    )
    serve.add_argument(
        "--store-backend", default=None, choices=("sqlite", "log"),
        help="store backend (default: REPRO_STORE_BACKEND or sqlite)",
    )
    serve.add_argument(
        "--replay-budget", type=int, default=None,
        help="max plans/bases replayed at start "
             "(default: REPRO_STORE_REPLAY_BUDGET)",
    )

    store = commands.add_parser(
        "store", help="operate on a persistent plan store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    inspect = store_commands.add_parser(
        "inspect", help="summarize a plan store's contents"
    )
    inspect.add_argument("path", help="store file to inspect")
    inspect.add_argument(
        "--backend", default=None, choices=("sqlite", "log"),
        help="store backend (default: REPRO_STORE_BACKEND or sqlite)",
    )
    inspect.add_argument(
        "--json", action="store_true",
        help="emit the summary as machine-readable JSON",
    )

    analyze = commands.add_parser(
        "analyze",
        help="run the repository's static analysis (repro.devtools)",
    )
    analyze.add_argument(
        "--root", default=".",
        help="repository root to analyze (default: current directory)",
    )
    analyze.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI contract)",
    )
    analyze.add_argument(
        "--stats", action="store_true",
        help="emit only per-rule counts (the BENCH_analyze.json shape)",
    )
    analyze.add_argument(
        "--verbose", action="store_true",
        help="also list suppressed findings in text output",
    )
    analyze.add_argument(
        "--write-baseline", metavar="PATH",
        help="write the stats report to PATH and still print the "
             "normal report",
    )

    trace = commands.add_parser(
        "trace",
        help="record a traced synthetic workload and summarize the spans",
    )
    trace.add_argument(
        "--queries", type=int, default=4,
        help="number of synthetic queries to serve (default: 4)",
    )
    trace.add_argument("--topology", default="star")
    trace.add_argument("--tables", type=int, default=6)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--algorithm", default="milp")
    trace.add_argument(
        "--duplicates", type=int, default=1,
        help="extra submissions of the first query (exercises "
             "coalescing and the plan cache; default: 1)",
    )
    trace.add_argument("--workers", type=int, default=2)
    trace.add_argument("--time-limit", type=float, default=10.0)
    trace.add_argument(
        "--cost-model", default="hash",
        choices=("cout", "hash", "sort_merge", "bnl"),
    )
    trace.add_argument(
        "--sample", default="all", choices=("all", "head", "slow"),
        help="sampling mode for the recording tracer (default: all)",
    )
    trace.add_argument(
        "--slow-ms", type=float, default=250.0,
        help="slow threshold for --sample slow (default: 250)",
    )
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the trace dump to PATH instead of stdout",
    )
    trace.add_argument(
        "--dump-format", default="chrome", choices=("chrome", "jsonl"),
        help="dump format: Chrome trace-event JSON (Perfetto-loadable) "
             "or one trace per line (default: chrome)",
    )
    trace.add_argument(
        "--top", type=int, default=10,
        help="rows in the span summary table (default: 10)",
    )

    generate = commands.add_parser(
        "generate", help="generate a random query as JSON"
    )
    generate.add_argument("output")
    generate.add_argument("--topology", default="star")
    generate.add_argument("--tables", type=int, default=8)
    generate.add_argument("--seed", type=int, default=0)

    for name in ("figure1", "figure2", "ablation"):
        sub = commands.add_parser(
            name, help=f"run the {name} experiment harness"
        )
        sub.add_argument("args", nargs=argparse.REMAINDER)
    return parser


def _load_or_generate(args) -> "object":
    if args.query:
        return load_query(args.query)
    generator = QueryGenerator(seed=args.seed)
    return generator.generate(args.topology, args.tables)


def _cmd_optimize(args) -> int:
    query = _load_or_generate(args)
    algorithm = args.algorithm
    if args.portfolio:
        if algorithm not in ("milp", "milp-portfolio"):
            print(
                f"--portfolio conflicts with --algorithm {algorithm}; "
                "drop --portfolio or use --algorithm milp-portfolio",
                file=sys.stderr,
            )
            return 2
        algorithm = "milp-portfolio"
    if algorithm not in available_algorithms():
        print(
            f"unknown algorithm {algorithm!r}; "
            f"registered: {', '.join(available_algorithms())}",
            file=sys.stderr,
        )
        return 2
    settings = OptimizerSettings(
        cost_model=args.cost_model,
        time_limit=args.time_limit,
        seed=args.seed,
        precision=args.precision,
        extra={"warm_start": not args.no_warm_start},
    )
    if args.export_lp or args.export_mps:
        from repro.core.formulation import JoinOrderFormulation

        formulation = JoinOrderFormulation(
            query, settings.formulation_config(query.num_tables)
        )
        if args.export_lp:
            write_lp(formulation.model, args.export_lp)
            print(f"wrote MILP to {args.export_lp}")
        if args.export_mps:
            write_mps(formulation.model, args.export_mps)
            print(f"wrote MILP to {args.export_mps}")
    result = create_optimizer(algorithm, settings).optimize(query)
    routed = result.diagnostics.get("routed_to")
    label = f"{algorithm} -> {routed}" if routed else result.algorithm
    print(f"algorithm:         {label}")
    print(f"status:            {result.status.value}")
    if result.plan is None:
        reason = result.diagnostics.get(
            "error", "no plan found within the budget"
        )
        print(reason)
        return 1
    print(f"plan:              {result.plan.describe()}")
    print(f"true cost:         {result.true_cost:,.0f}")
    print(f"guaranteed factor: {result.optimality_factor:.3f}")
    effort = ""
    if "nodes" in result.diagnostics:
        effort = f" ({result.diagnostics['nodes']} nodes)"
    elif "subsets_explored" in result.diagnostics:
        effort = f" ({result.diagnostics['subsets_explored']} subsets)"
    elif "iterations" in result.diagnostics:
        effort = f" ({result.diagnostics['iterations']} iterations)"
    print(f"solve time:        {result.solve_time:.2f}s{effort}")
    if args.explain:
        from repro.plans.explain import explain_text

        print()
        print(explain_text(result.plan, use_cout=args.cost_model == "cout"))
    if args.export_dot:
        from pathlib import Path

        from repro.plans.explain import to_dot

        Path(args.export_dot).write_text(to_dot(result.plan) + "\n")
        print(f"wrote plan digraph to {args.export_dot}")
    if args.save_plan:
        save_plan(result.plan, args.save_plan)
        print(f"wrote plan to {args.save_plan}")
    if args.check_dp:
        if query.num_tables > MAX_DP_TABLES:
            print("DP check skipped: query too large")
        else:
            dp = create_optimizer("selinger", settings).optimize(query)
            if dp.true_cost is None:
                print("DP check skipped: DP did not finish in the budget")
            else:
                ratio = result.true_cost / max(dp.true_cost, 1e-12)
                print(f"DP optimum:        {dp.true_cost:,.0f} "
                      f"(ratio {ratio:.3f})")
    return 0


def _algorithm_metadata() -> list[dict]:
    """Machine-readable registry rows (the ``algorithms --json`` payload).

    Serve clients and the load generator consume this instead of
    scraping the human-readable listing: each row carries the registry
    key, whether the engine honors a time budget (``None`` = depends on
    routing), and the first line of the adapter's docstring.
    """
    from repro.api import default_registry

    rows = []
    for name in available_algorithms():
        factory = default_registry.factory(name)
        doc = (factory.__doc__ or "").strip().splitlines()
        rows.append({
            "name": name,
            "honors_time_limit": getattr(
                factory, "honors_time_limit", None
            ),
            "description": doc[0] if doc else "",
        })
    return rows


def _cmd_algorithms(args) -> int:
    if getattr(args, "json", False):
        import json

        print(json.dumps({"algorithms": _algorithm_metadata()}, indent=2))
        return 0
    print("registered algorithms:")
    for row in _algorithm_metadata():
        honors = row["honors_time_limit"]
        if honors is True:
            note = "honors --time-limit"
        elif honors is False:
            note = "ignores --time-limit (finishes early)"
        elif honors is None:
            note = "budget handling depends on the routed algorithm"
        else:
            note = ""
        print(f"  {row['name']:<16} {note}")
    return 0


def _cmd_serve(args) -> int:
    from repro.api import OptimizerSettings as _Settings
    from repro.serve import OptimizationServer, make_http_server

    if args.shards > 0:
        return _cmd_serve_sharded(args)
    settings = _Settings(
        cost_model=args.cost_model,
        time_limit=args.time_limit,
        precision=args.precision,
    )
    store = None
    if args.store:
        from repro.store import open_store

        store = open_store(args.store, backend=args.store_backend)
    server = OptimizationServer(
        settings,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        default_deadline=args.default_deadline,
        coalesce=not args.no_coalesce,
        share_bases=not args.no_share_bases,
        store=store,
        replay_budget=args.replay_budget,
    )
    httpd = make_http_server(server, args.host, args.port)
    host, port = httpd.server_address[:2]
    persistence = f", store {args.store}" if args.store else ""
    print(f"serving on http://{host}:{port} "
          f"({args.workers} workers, queue {args.queue_capacity}"
          f"{persistence}); "
          f"POST /optimize, GET /metrics, GET /healthz; Ctrl-C to drain")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("draining...")
    finally:
        httpd.shutdown()
        server.stop(drain=True)
        if store is not None:
            store.close()
    return 0


def _cmd_serve_sharded(args) -> int:
    """``repro serve --shards N``: the multi-process tier.

    Each shard is a child process running a full inner server over its
    own slice of the keyspace (consistent hash of catalog version +
    query signature); the hub supervises with heartbeats, respawns
    crashed shards after warm replay, and fails in-flight requests over
    to healthy shards.  ``--store PATH`` gives each shard its own
    ``PATH.shardN`` store so respawned shards come back warm.
    """
    from repro.serve import ShardedOptimizationServer, make_http_server

    server = ShardedOptimizationServer(
        shards=args.shards,
        workers_per_shard=args.shard_workers,
        queue_capacity=args.queue_capacity,
        default_deadline=args.default_deadline,
        coalesce=not args.no_coalesce,
        cost_model=args.cost_model,
        time_limit=args.time_limit,
        precision=args.precision,
        store_path=args.store,
        store_backend=args.store_backend,
        replay_budget=args.replay_budget,
    )
    httpd = make_http_server(server, args.host, args.port)
    host, port = httpd.server_address[:2]
    persistence = f", store {args.store}.shardN" if args.store else ""
    print(f"serving on http://{host}:{port} "
          f"({args.shards} shard processes x {args.shard_workers} workers"
          f"{persistence}); "
          f"POST /optimize, GET /metrics, GET /healthz; Ctrl-C to drain")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("draining shards...")
    finally:
        httpd.shutdown()
        server.stop(drain=True)
    return 0


def _cmd_store(args) -> int:
    from repro.store import StoreError, open_store

    if args.store_command != "inspect":  # pragma: no cover - argparse
        return 2
    from pathlib import Path

    if not Path(args.path).exists():
        print(f"no store at {args.path}", file=sys.stderr)
        return 2
    try:
        store = open_store(args.path, backend=args.backend)
    except StoreError as error:
        print(f"cannot open store: {error}", file=sys.stderr)
        return 2
    try:
        summary = store.summary()
    finally:
        store.close()
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"store:            {summary['path']} ({summary['backend']})")
    print(f"plans:            {summary['plans']} (cap {summary['max_plans']})")
    print(f"bases:            {summary['bases']}")
    print(f"size on disk:     {summary['size_bytes']:,} bytes")
    last = summary.get("last_compaction")
    if last:
        import datetime

        stamp = datetime.datetime.fromtimestamp(last).isoformat(
            sep=" ", timespec="seconds"
        )
        print(f"last compaction:  {stamp}")
    else:
        print("last compaction:  never")
    per_version = summary.get("plans_per_catalog_version") or {}
    if per_version:
        print("plans per catalog version:")
        for version, count in per_version.items():
            print(f"  v{version:<6} {count}")
    per_algorithm = summary.get("plans_per_algorithm") or {}
    if per_algorithm:
        print("plans per algorithm:")
        for algorithm, count in per_algorithm.items():
            print(f"  {algorithm:<16} {count}")
    return 0


def _cmd_trace(args) -> int:
    """Record a synthetic serve workload under a tracer and report it.

    Runs ``--queries`` generated queries (plus ``--duplicates`` repeats
    of the first one) through a real :class:`OptimizationServer` with an
    installed :class:`repro.obs.Tracer`, then dumps the sampled traces
    (``--out``/``--dump-format``) and prints a top-span summary — the
    offline equivalent of hitting ``GET /debug/traces`` on a live
    server.
    """
    from pathlib import Path

    from repro import obs
    from repro.obs import export as obs_export
    from repro.serve import OptimizationServer

    tracer = obs.Tracer(sample=args.sample, slow_ms=args.slow_ms)
    settings = OptimizerSettings(
        cost_model=args.cost_model,
        time_limit=args.time_limit,
        seed=args.seed,
    )
    generator = QueryGenerator(seed=args.seed)
    queries = [
        generator.generate(args.topology, args.tables)
        for _ in range(max(args.queries, 1))
    ]
    queries.extend(queries[0] for _ in range(max(args.duplicates, 0)))
    with obs.tracing(tracer):
        with OptimizationServer(settings, workers=args.workers) as server:
            tickets = [
                server.submit(query, args.algorithm) for query in queries
            ]
            outcomes = [ticket.result(timeout=600.0) for ticket in tickets]
        traces = tracer.traces()

    completed = sum(1 for o in outcomes if o.status.value == "completed")
    print(f"served {len(outcomes)} requests "
          f"({completed} completed, "
          f"{sum(1 for o in outcomes if o.coalesced)} coalesced)")
    stats = tracer.stats()
    print(f"traces: {stats['started']} started, {stats['kept']} kept "
          f"(sample={stats['sample']})")
    if args.dump_format == "jsonl":
        dump = obs_export.render_jsonl(traces)
    else:
        dump = obs_export.render_chrome(traces)
    if args.out:
        Path(args.out).write_text(dump, encoding="utf-8")
        print(f"wrote {args.dump_format} dump to {args.out}")
    else:
        print(dump)
    summary = obs_export.summarize(traces, top=args.top)
    if summary:
        print()
        print(f"{'span':<20} {'count':>6} {'total_ms':>10} "
              f"{'mean_ms':>9} {'max_ms':>9}")
        for row in summary:
            print(f"{row['name']:<20} {row['count']:>6} "
                  f"{row['total_ms']:>10.1f} {row['mean_ms']:>9.2f} "
                  f"{row['max_ms']:>9.2f}")
    return 0


def _cmd_generate(args) -> int:
    generator = QueryGenerator(seed=args.seed)
    query = generator.generate(args.topology, args.tables)
    save_query(query, args.output)
    print(f"wrote {query.name} to {args.output}")
    return 0


def _cmd_analyze(args) -> int:
    from pathlib import Path

    from repro.devtools import all_rules, run_analysis
    from repro.devtools.report import render_json, render_stats, render_text

    root = Path(args.root).resolve()
    report = run_analysis(root, all_rules())
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            render_stats(report), encoding="utf-8"
        )
    if args.stats:
        out = render_stats(report)
    elif args.format == "json":
        out = render_json(report)
    else:
        out = render_text(report, verbose=args.verbose)
    sys.stdout.write(out)
    return 0 if report.clean else 1


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # Harness subcommands forward their options verbatim; argparse's
    # REMAINDER does not accept leading options, so dispatch early.
    if argv and argv[0] in ("figure1", "figure2", "ablation"):
        from repro.harness import ablation, figure1, figure2

        module = {"figure1": figure1, "figure2": figure2,
                  "ablation": ablation}[argv[0]]
        module.main(argv[1:])
        return 0
    args = _build_parser().parse_args(argv)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "algorithms":
        return _cmd_algorithms(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "figure1":
        from repro.harness import figure1

        figure1.main(args.args)
        return 0
    if args.command == "figure2":
        from repro.harness import figure2

        figure2.main(args.args)
        return 0
    if args.command == "ablation":
        from repro.harness import ablation

        ablation.main(args.args)
        return 0
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":
    sys.exit(main())
