"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``optimize``
    Optimize a query (from a JSON file or randomly generated) with the
    MILP optimizer; optionally cross-check against DP and export the MILP.
``generate``
    Generate a random query and write it as JSON.
``figure1`` / ``figure2`` / ``ablation``
    Shortcuts to the experiment harness modules.
"""

from __future__ import annotations

import argparse
import sys

from repro.catalog.serde import load_query, save_plan, save_query
from repro.dp.selinger import MAX_DP_TABLES, SelingerOptimizer
from repro.milp.branch_and_bound import SolverOptions
from repro.milp.io import write_lp
from repro.milp.mps import write_mps
from repro.workloads.generator import QueryGenerator
from repro.core.config import FormulationConfig
from repro.core.optimizer import MILPJoinOptimizer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    optimize = commands.add_parser(
        "optimize", help="optimize a query with the MILP optimizer"
    )
    optimize.add_argument("--query", help="query JSON file (see `generate`)")
    optimize.add_argument("--topology", default="star")
    optimize.add_argument("--tables", type=int, default=8)
    optimize.add_argument("--seed", type=int, default=0)
    optimize.add_argument(
        "--precision", default="high", choices=("high", "medium", "low")
    )
    optimize.add_argument(
        "--cost-model", default="hash",
        choices=("cout", "hash", "sort_merge", "bnl"),
    )
    optimize.add_argument("--time-limit", type=float, default=30.0)
    optimize.add_argument("--no-warm-start", action="store_true")
    optimize.add_argument(
        "--portfolio", action="store_true",
        help="solve with the four-member concurrent portfolio",
    )
    optimize.add_argument("--export-lp", help="write the MILP in LP format")
    optimize.add_argument("--export-mps", help="write the MILP in MPS format")
    optimize.add_argument("--save-plan", help="write the plan as JSON")
    optimize.add_argument(
        "--explain", action="store_true",
        help="print an EXPLAIN-style tree for the chosen plan",
    )
    optimize.add_argument(
        "--export-dot", help="write the plan as a Graphviz digraph"
    )
    optimize.add_argument(
        "--check-dp", action="store_true",
        help="cross-check against exhaustive DP (small queries only)",
    )

    generate = commands.add_parser(
        "generate", help="generate a random query as JSON"
    )
    generate.add_argument("output")
    generate.add_argument("--topology", default="star")
    generate.add_argument("--tables", type=int, default=8)
    generate.add_argument("--seed", type=int, default=0)

    for name in ("figure1", "figure2", "ablation"):
        sub = commands.add_parser(
            name, help=f"run the {name} experiment harness"
        )
        sub.add_argument("args", nargs=argparse.REMAINDER)
    return parser


def _load_or_generate(args) -> "object":
    if args.query:
        return load_query(args.query)
    generator = QueryGenerator(seed=args.seed)
    return generator.generate(args.topology, args.tables)


def _cmd_optimize(args) -> int:
    query = _load_or_generate(args)
    preset = {
        "high": FormulationConfig.high_precision,
        "medium": FormulationConfig.medium_precision,
        "low": FormulationConfig.low_precision,
    }[args.precision]
    config = preset(query.num_tables, cost_model=args.cost_model)
    optimizer = MILPJoinOptimizer(
        config, SolverOptions(time_limit=args.time_limit)
    )
    if args.export_lp or args.export_mps:
        formulation = optimizer.formulate(query)
        if args.export_lp:
            write_lp(formulation.model, args.export_lp)
            print(f"wrote MILP to {args.export_lp}")
        if args.export_mps:
            write_mps(formulation.model, args.export_mps)
            print(f"wrote MILP to {args.export_mps}")
    if args.portfolio:
        result = optimizer.optimize_with_portfolio(
            query, warm_start=not args.no_warm_start
        )
    else:
        result = optimizer.optimize(
            query, warm_start=not args.no_warm_start
        )
    print(f"status:            {result.status.value}")
    if result.plan is None:
        print("no plan found within the budget")
        return 1
    print(f"plan:              {result.plan.describe()}")
    print(f"true cost:         {result.true_cost:,.0f}")
    print(f"guaranteed factor: {result.optimality_factor:.3f}")
    print(f"solve time:        {result.solve_time:.2f}s "
          f"({result.milp_solution.node_count} nodes)")
    if args.explain:
        from repro.plans.explain import explain_text

        print()
        print(explain_text(result.plan, use_cout=args.cost_model == "cout"))
    if args.export_dot:
        from pathlib import Path

        from repro.plans.explain import to_dot

        Path(args.export_dot).write_text(to_dot(result.plan) + "\n")
        print(f"wrote plan digraph to {args.export_dot}")
    if args.save_plan:
        save_plan(result.plan, args.save_plan)
        print(f"wrote plan to {args.save_plan}")
    if args.check_dp:
        if query.num_tables > MAX_DP_TABLES:
            print("DP check skipped: query too large")
        else:
            dp = SelingerOptimizer(
                query, use_cout=args.cost_model == "cout"
            ).optimize()
            print(f"DP optimum:        {dp.cost:,.0f} "
                  f"(ratio {result.true_cost / max(dp.cost, 1e-12):.3f})")
    return 0


def _cmd_generate(args) -> int:
    generator = QueryGenerator(seed=args.seed)
    query = generator.generate(args.topology, args.tables)
    save_query(query, args.output)
    print(f"wrote {query.name} to {args.output}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # Harness subcommands forward their options verbatim; argparse's
    # REMAINDER does not accept leading options, so dispatch early.
    if argv and argv[0] in ("figure1", "figure2", "ablation"):
        from repro.harness import ablation, figure1, figure2

        module = {"figure1": figure1, "figure2": figure2,
                  "ablation": ablation}[argv[0]]
        module.main(argv[1:])
        return 0
    args = _build_parser().parse_args(argv)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "figure1":
        from repro.harness import figure1

        figure1.main(args.args)
        return 0
    if args.command == "figure2":
        from repro.harness import figure2

        figure2.main(args.args)
        return 0
    if args.command == "ablation":
        from repro.harness import ablation

        ablation.main(args.args)
        return 0
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":
    sys.exit(main())
