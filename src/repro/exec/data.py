"""Synthetic data generation matching a query's statistics.

The executor needs actual rows.  This module materializes, per query, an
in-memory dataset whose *observed* join and selection selectivities match
the catalog's declared statistics in expectation:

* a binary equi-join predicate with selectivity ``s`` gets a dedicated
  integer column pair drawn uniformly from a domain of size ``round(1/s)``
  — two uniform draws collide with probability ``s``;
* a unary predicate with selectivity ``s`` gets a uniform float column;
  the predicate keeps rows below ``s``.

This lets the test suite check the estimator end to end: estimated
intermediate cardinalities must match executed ones within sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.predicate import Predicate
from repro.catalog.query import Query
from repro.exceptions import ReproError


class ExecutionError(ReproError):
    """Raised when plan execution fails or exceeds resource guards."""


#: Column values are stored per table as name -> numpy array.
TableData = dict[str, np.ndarray]


@dataclass
class Dataset:
    """Materialized tables for one query."""

    query: Query
    tables: dict[str, TableData] = field(default_factory=dict)

    def rows(self, table: str) -> int:
        """Number of materialized rows of ``table``."""
        data = self.tables[table]
        if not data:
            return 0
        return len(next(iter(data.values())))


def _domain_size(selectivity: float) -> int:
    return max(1, round(1.0 / selectivity))


def generate_dataset(
    query: Query,
    seed: int = 0,
    scale: float = 1.0,
    max_rows_per_table: int = 2_000_000,
) -> Dataset:
    """Materialize every query table.

    ``scale`` multiplies declared cardinalities (use < 1 to keep execution
    cheap while preserving relative sizes).  Join-predicate columns are
    named after their predicate; unary-predicate columns likewise.
    """
    rng = np.random.default_rng(seed)
    dataset = Dataset(query=query)
    for table in query.tables:
        rows = max(1, round(table.cardinality * scale))
        if rows > max_rows_per_table:
            raise ExecutionError(
                f"table {table.name!r} would materialize {rows} rows; "
                f"lower `scale` (cap {max_rows_per_table})"
            )
        dataset.tables[table.name] = {}
    for predicate in query.predicates:
        if predicate.arity > 2:
            raise ExecutionError(
                "the executor supports unary and binary predicates only"
            )
        if predicate.is_binary:
            domain = _domain_size(predicate.selectivity)
            for table_name in predicate.tables:
                rows = dataset.rows(table_name) or max(
                    1, round(query.table(table_name).cardinality * scale)
                )
                dataset.tables[table_name][predicate.name] = rng.integers(
                    0, domain, size=rows, dtype=np.int64
                )
        else:
            table_name = predicate.tables[0]
            rows = dataset.rows(table_name) or max(
                1, round(query.table(table_name).cardinality * scale)
            )
            dataset.tables[table_name][predicate.name] = rng.random(rows)
    # Tables untouched by any predicate still need a row count marker.
    for table in query.tables:
        if not dataset.tables[table.name]:
            rows = max(1, round(table.cardinality * scale))
            dataset.tables[table.name]["__rowid__"] = np.arange(
                rows, dtype=np.int64
            )
    return dataset


def scaled_selectivity(predicate: Predicate) -> float:
    """The selectivity the generated data actually realizes.

    Domain rounding makes the realized selectivity ``1 / round(1/s)``
    rather than ``s`` exactly; estimator-validation tests compare against
    this value.
    """
    if predicate.is_binary:
        return 1.0 / _domain_size(predicate.selectivity)
    return predicate.selectivity
