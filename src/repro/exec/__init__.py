"""Execution substrate: synthetic data generation + a vectorized plan
executor, used to validate the cardinality model end to end."""

from repro.exec.data import (
    Dataset,
    ExecutionError,
    generate_dataset,
    scaled_selectivity,
)
from repro.exec.executor import (
    DEFAULT_ROW_GUARD,
    ExecutionResult,
    PlanExecutor,
    execute_plan,
)

__all__ = [
    "DEFAULT_ROW_GUARD",
    "Dataset",
    "ExecutionError",
    "ExecutionResult",
    "PlanExecutor",
    "execute_plan",
    "generate_dataset",
    "scaled_selectivity",
]
