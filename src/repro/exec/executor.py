"""In-memory execution of left-deep plans (vectorized with numpy).

The executor runs a :class:`~repro.plans.plan.LeftDeepPlan` over a
:class:`~repro.exec.data.Dataset` pipeline-style: the intermediate result
is a vector of row indices per joined table; each join step either
hash-joins on a connecting equi-predicate (sort + searchsorted expansion)
or forms a guarded cross product.  Remaining applicable predicates are
applied as filters as soon as every referenced table is present —
mirroring the cost model's predicate push-down semantics.

Primary purpose: validating the cardinality estimator and the cost
model's shape against actually-observed intermediate result sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.predicate import Predicate
from repro.catalog.query import Query
from repro.plans.plan import LeftDeepPlan
from repro.exec.data import Dataset, ExecutionError

#: Abort when an intermediate result would exceed this many rows.
DEFAULT_ROW_GUARD = 5_000_000


@dataclass
class ExecutionResult:
    """Observed execution outcome.

    ``intermediate_cardinalities[j]`` is the row count of join ``j``'s
    output, aligned with the estimator's
    :meth:`~repro.plans.cost.PlanCostEvaluator.breakdown` outputs.
    """

    plan: LeftDeepPlan
    intermediate_cardinalities: list[int] = field(default_factory=list)
    final_cardinality: int = 0


class PlanExecutor:
    """Executes left-deep plans over materialized datasets."""

    def __init__(
        self, dataset: Dataset, row_guard: int = DEFAULT_ROW_GUARD
    ) -> None:
        self.dataset = dataset
        self.query: Query = dataset.query
        self.row_guard = row_guard
        self._binary = [
            p for p in self.query.predicates if p.is_binary
        ]
        self._unary = [p for p in self.query.predicates if p.is_unary]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, plan: LeftDeepPlan) -> ExecutionResult:
        """Run ``plan``; returns observed intermediate cardinalities."""
        result = ExecutionResult(plan=plan)
        first = plan.first_table
        indices: dict[str, np.ndarray] = {
            first: self._scan(first)
        }
        applied = {p.name for p in self._unary if p.tables[0] == first}
        for step in plan.steps:
            indices = self._join_step(indices, step.inner_table, applied)
            count = self._row_count(indices)
            result.intermediate_cardinalities.append(count)
            if count > self.row_guard:
                raise ExecutionError(
                    f"intermediate result exceeded the row guard "
                    f"({count} > {self.row_guard}); this plan is too "
                    "expensive to execute at this scale"
                )
        result.final_cardinality = self._row_count(indices)
        return result

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _scan(self, table: str) -> np.ndarray:
        rows = self.dataset.rows(table)
        keep = np.ones(rows, dtype=bool)
        for predicate in self._unary:
            if predicate.tables[0] != table:
                continue
            column = self.dataset.tables[table][predicate.name]
            keep &= column < predicate.selectivity
        return np.nonzero(keep)[0]

    def _join_step(
        self,
        indices: dict[str, np.ndarray],
        inner: str,
        applied: set[str],
    ) -> dict[str, np.ndarray]:
        inner_rows = self._scan(inner)
        applied.update(
            p.name for p in self._unary if p.tables[0] == inner
        )
        joined_tables = set(indices)
        connecting = [
            p
            for p in self._binary
            if inner in p.tables
            and any(t in joined_tables for t in p.tables)
            and p.name not in applied
        ]
        if connecting:
            outer_keys, inner_keys, usable = self._composite_keys(
                indices, inner, inner_rows, connecting
            )
            outer_positions, inner_positions = self._equi_join_keys(
                outer_keys, inner_keys
            )
            for predicate in usable:
                applied.add(predicate.name)
            new_indices = {
                table: rows[outer_positions]
                for table, rows in indices.items()
            }
            new_indices[inner] = inner_rows[inner_positions]
            residual = [p for p in connecting if p not in usable]
        else:
            new_indices = self._cross_product(indices, inner, inner_rows)
            residual = []
        # Predicates that could not join on the composite key act as
        # filters on the joined result.
        for predicate in residual:
            new_indices = self._filter_binary(new_indices, predicate)
            applied.add(predicate.name)
        return new_indices

    def _composite_keys(
        self,
        indices: dict[str, np.ndarray],
        inner: str,
        inner_rows: np.ndarray,
        connecting: list[Predicate],
    ) -> tuple[np.ndarray, np.ndarray, list[Predicate]]:
        """Combine every connecting predicate into one join key.

        Joining on the full composite key avoids materializing the large
        single-key intermediate that a join-then-filter strategy would
        create.  Falls back to a prefix of the predicates if the combined
        domain would overflow int64.
        """
        usable: list[Predicate] = []
        outer_key = np.zeros(
            len(next(iter(indices.values()))), dtype=np.int64
        )
        inner_key = np.zeros(len(inner_rows), dtype=np.int64)
        scale = 1
        for predicate in connecting:
            outer_table = next(
                t for t in predicate.tables if t != inner and t in indices
            )
            outer_values = self.dataset.tables[outer_table][
                predicate.name
            ][indices[outer_table]]
            inner_values = self.dataset.tables[inner][predicate.name][
                inner_rows
            ]
            domain = int(
                max(
                    outer_values.max(initial=0),
                    inner_values.max(initial=0),
                )
            ) + 1
            if scale > (2 ** 62) // max(domain, 1):
                break  # int64 overflow: leave the rest as filters
            outer_key = outer_key * domain + outer_values
            inner_key = inner_key * domain + inner_values
            scale *= domain
            usable.append(predicate)
        return outer_key, inner_key, usable

    def _equi_join_keys(
        self,
        outer_keys: np.ndarray,
        inner_keys: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sorted-probe equi-join on key vectors; returns position pairs."""
        order = np.argsort(inner_keys, kind="stable")
        sorted_keys = inner_keys[order]
        left = np.searchsorted(sorted_keys, outer_keys, side="left")
        right = np.searchsorted(sorted_keys, outer_keys, side="right")
        counts = right - left
        total = int(counts.sum())
        if total > self.row_guard:
            raise ExecutionError(
                f"join would produce {total} rows (> guard {self.row_guard})"
            )
        outer_positions = np.repeat(np.arange(len(outer_keys)), counts)
        offsets = np.concatenate(
            [np.arange(l, r) for l, r in zip(left, right) if r > l]
        ) if total else np.empty(0, dtype=np.int64)
        inner_positions = order[offsets] if total else offsets
        return outer_positions, inner_positions

    def _cross_product(
        self,
        indices: dict[str, np.ndarray],
        inner: str,
        inner_rows: np.ndarray,
    ) -> dict[str, np.ndarray]:
        outer_count = self._row_count(indices)
        total = outer_count * len(inner_rows)
        if total > self.row_guard:
            raise ExecutionError(
                f"cross product would produce {total} rows "
                f"(> guard {self.row_guard})"
            )
        new_indices = {
            table: np.repeat(rows, len(inner_rows))
            for table, rows in indices.items()
        }
        new_indices[inner] = np.tile(inner_rows, outer_count)
        return new_indices

    def _filter_binary(
        self, indices: dict[str, np.ndarray], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        left_table, right_table = predicate.tables
        left = self.dataset.tables[left_table][predicate.name][
            indices[left_table]
        ]
        right = self.dataset.tables[right_table][predicate.name][
            indices[right_table]
        ]
        mask = left == right
        return {table: rows[mask] for table, rows in indices.items()}

    @staticmethod
    def _row_count(indices: dict[str, np.ndarray]) -> int:
        return len(next(iter(indices.values())))


def execute_plan(
    plan: LeftDeepPlan,
    dataset: Dataset,
    row_guard: int = DEFAULT_ROW_GUARD,
) -> ExecutionResult:
    """One-call convenience wrapper around :class:`PlanExecutor`."""
    return PlanExecutor(dataset, row_guard).execute(plan)
