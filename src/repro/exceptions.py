"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch a single type at the API boundary.  Sub-errors mirror the package
structure (catalog, MILP solver, formulation, plans, workloads).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CatalogError(ReproError):
    """Invalid catalog object (table, column, predicate or query)."""


class QueryValidationError(CatalogError):
    """A query references unknown tables/columns or carries invalid stats."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class ModelError(ReproError):
    """Invalid MILP model construction (bad bounds, duplicate names, ...)."""


class SolverError(ReproError):
    """The MILP/LP solver failed in an unexpected way."""


class CancelledError(ReproError):
    """A cooperative cancellation token stopped the work in progress.

    Raised from solver inner loops when the :class:`repro.cancel.CancelToken`
    threaded into them is cancelled (client abandoned the request, deadline
    expired, watchdog fenced a wedged worker).  Deliberately *not* derived
    from :class:`SolverError`: cancellation is not a solver fault and must
    not trigger error-fallback or retry machinery.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class InfeasibleModelError(SolverError):
    """The model was proven infeasible."""


class UnboundedModelError(SolverError):
    """The model was proven unbounded."""


class FormulationError(ReproError):
    """The join-ordering MILP formulation could not be built."""


class ExtractionError(ReproError):
    """A MILP solution could not be decoded into a valid query plan."""


class PlanError(ReproError):
    """Invalid query plan (wrong operand structure, unknown tables, ...)."""


class UnnestingError(ReproError):
    """A nested statement could not be decomposed into SPJ blocks."""
