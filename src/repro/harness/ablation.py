"""Ablation studies A1-A3 (beyond the paper's headline figures).

* **A1 — precision sweep**: threshold tolerance versus plan quality and
  solve effort, quantifying the precision/speed trade-off Section 7.1
  discusses qualitatively.
* **A2 — solver features**: warm start and primal heuristics on/off,
  quantifying where the anytime behaviour comes from.
* **A3 — cost models**: the same queries optimized under C_out, hash,
  sort-merge and BNL objectives, exercising all Section 4.3 encodings.

Run as a script::

    python -m repro.harness.ablation [--study precision|solver|cost]
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass

from repro.workloads.generator import QueryGenerator
from repro.dp.selinger import SelingerOptimizer
from repro.milp.branch_and_bound import SolverOptions
from repro.plans.operators import JoinAlgorithm
from repro.core.config import FormulationConfig
from repro.core.optimizer import MILPJoinOptimizer
from repro.harness.reporting import render_table

DEFAULT_TABLES = 6
DEFAULT_QUERIES = 3
DEFAULT_BUDGET = 6.0


@dataclass(frozen=True)
class AblationRow:
    """One configuration's aggregate outcome."""

    configuration: str
    mean_true_cost_ratio: float
    mean_factor: float
    mean_nodes: float
    mean_time: float


def _mean(values) -> float:
    values = list(values)
    if not values:
        return math.nan
    if any(math.isinf(v) for v in values):
        return math.inf
    return sum(values) / len(values)


def _run_configs(
    configs: "list[tuple[str, FormulationConfig, SolverOptions]]",
    topology: str,
    num_tables: int,
    queries: int,
    use_cout: bool,
    algorithm: JoinAlgorithm = JoinAlgorithm.HASH,
) -> list[AblationRow]:
    rows = []
    for label, config, options in configs:
        ratios, factors, nodes, times = [], [], [], []
        for seed in range(queries):
            query = QueryGenerator(seed=seed).generate(topology, num_tables)
            dp = SelingerOptimizer(
                query, use_cout=use_cout, algorithm=algorithm
            ).optimize()
            result = MILPJoinOptimizer(config, options).optimize(query)
            if result.true_cost is None:
                ratios.append(math.inf)
            else:
                ratios.append(result.true_cost / max(dp.cost, 1e-12))
            factors.append(result.optimality_factor)
            nodes.append(result.milp_solution.node_count)
            times.append(result.solve_time)
        rows.append(
            AblationRow(
                configuration=label,
                mean_true_cost_ratio=_mean(ratios),
                mean_factor=_mean(factors),
                mean_nodes=_mean(nodes),
                mean_time=_mean(times),
            )
        )
    return rows


def run_precision_sweep(
    num_tables: int = DEFAULT_TABLES,
    queries: int = DEFAULT_QUERIES,
    budget: float = DEFAULT_BUDGET,
    topology: str = "star",
) -> list[AblationRow]:
    """A1: tolerance factor sweep under the C_out objective."""
    options = SolverOptions(time_limit=budget)
    configs = [
        (
            f"tolerance={tolerance:g}",
            FormulationConfig(
                tolerance=tolerance,
                cost_model="cout",
                label=f"tol{tolerance:g}",
            ),
            options,
        )
        for tolerance in (2.0, 3.0, 10.0, 100.0, 1000.0)
    ]
    return _run_configs(configs, topology, num_tables, queries, use_cout=True)


def run_solver_ablation(
    num_tables: int = DEFAULT_TABLES,
    queries: int = DEFAULT_QUERIES,
    budget: float = DEFAULT_BUDGET,
    topology: str = "star",
) -> list[AblationRow]:
    """A2: warm start / heuristics / cuts / ordering on-off matrix."""
    base = FormulationConfig.medium_precision(num_tables, cost_model="cout")
    rows = []
    variants = [
        ("full", base, SolverOptions(time_limit=budget), True),
        (
            "no warm start",
            base,
            SolverOptions(time_limit=budget),
            False,
        ),
        (
            "no heuristics",
            base,
            SolverOptions(time_limit=budget, heuristics=False),
            True,
        ),
        (
            "cutting planes",
            base,
            SolverOptions(time_limit=budget, cuts=True),
            True,
        ),
        (
            "no tangent cuts",
            FormulationConfig.medium_precision(
                num_tables, cost_model="cout", tangent_cuts=0
            ),
            SolverOptions(time_limit=budget),
            True,
        ),
        (
            "no threshold ordering",
            FormulationConfig.medium_precision(
                num_tables, cost_model="cout", threshold_ordering=False
            ),
            SolverOptions(time_limit=budget),
            True,
        ),
    ]
    for label, config, options, warm in variants:
        ratios, factors, nodes, times = [], [], [], []
        for seed in range(queries):
            query = QueryGenerator(seed=seed).generate(topology, num_tables)
            dp = SelingerOptimizer(query, use_cout=True).optimize()
            result = MILPJoinOptimizer(config, options).optimize(
                query, warm_start=warm
            )
            if result.true_cost is None:
                ratios.append(math.inf)
            else:
                ratios.append(result.true_cost / max(dp.cost, 1e-12))
            factors.append(result.optimality_factor)
            nodes.append(result.milp_solution.node_count)
            times.append(result.solve_time)
        rows.append(
            AblationRow(label, _mean(ratios), _mean(factors),
                        _mean(nodes), _mean(times))
        )
    return rows


def run_cost_model_ablation(
    num_tables: int = DEFAULT_TABLES,
    queries: int = DEFAULT_QUERIES,
    budget: float = DEFAULT_BUDGET,
    topology: str = "star",
) -> list[AblationRow]:
    """A3: all Section 4.3 cost encodings on the same queries."""
    options = SolverOptions(time_limit=budget)
    algorithm_of = {
        "cout": JoinAlgorithm.HASH,
        "hash": JoinAlgorithm.HASH,
        "sort_merge": JoinAlgorithm.SORT_MERGE,
        "bnl": JoinAlgorithm.BLOCK_NESTED_LOOP,
    }
    rows = []
    for cost_model in ("cout", "hash", "sort_merge", "bnl"):
        config = FormulationConfig.medium_precision(
            num_tables, cost_model=cost_model
        )
        rows.extend(
            _run_configs(
                [(cost_model, config, options)],
                topology,
                num_tables,
                queries,
                use_cout=cost_model == "cout",
                algorithm=algorithm_of[cost_model],
            )
        )
    return rows


def run_heuristics_comparison(
    num_tables: int = DEFAULT_TABLES,
    queries: int = DEFAULT_QUERIES,
    budget: float = DEFAULT_BUDGET,
    topology: str = "star",
) -> list[AblationRow]:
    """A4: the MILP optimizer versus the heuristic family (Section 2).

    Iterative improvement, simulated annealing, greedy and IKKBZ all
    produce plans — sometimes excellent ones — but only the MILP approach
    (and finished exhaustive DP) can report a guaranteed optimality
    factor, the paper's criterion for Figure 2.  Every contender runs
    through the unified :mod:`repro.api` registry.
    """
    from repro.api import OptimizerSettings, create_optimizer

    settings = OptimizerSettings(
        cost_model="cout", time_limit=budget, precision="medium"
    )
    algorithms = [
        ("MILP (medium)", "milp"),
        ("iterative improvement", "ii"),
        ("simulated annealing", "sa"),
        ("greedy", "greedy"),
        ("IKKBZ (trees only)", "ikkbz"),
    ]
    rows = []
    for label, key in algorithms:
        ratios, factors, nodes, times = [], [], [], []
        for seed in range(queries):
            query = QueryGenerator(seed=seed).generate(topology, num_tables)
            dp = SelingerOptimizer(query, use_cout=True).optimize()
            result = create_optimizer(key, settings).optimize(query)
            if result.diagnostics.get("fallback"):
                # The adapter substituted another algorithm (IKKBZ off a
                # tree); report "inapplicable", not the stand-in's cost.
                ratios.append(math.inf)
                factors.append(math.inf)
                nodes.append(0)
                times.append(result.solve_time)
                continue
            cost = (
                result.true_cost
                if result.true_cost is not None else math.inf
            )
            effort = result.diagnostics.get(
                "nodes", result.diagnostics.get("iterations", 0)
            )
            ratios.append(cost / max(dp.cost, 1e-12))
            factors.append(result.optimality_factor)
            nodes.append(effort)
            times.append(result.solve_time)
        rows.append(
            AblationRow(label, _mean(ratios), _mean(factors),
                        _mean(nodes), _mean(times))
        )
    return rows


def run_portfolio_comparison(
    num_tables: int = DEFAULT_TABLES,
    queries: int = DEFAULT_QUERIES,
    budget: float = DEFAULT_BUDGET,
    topology: str = "star",
) -> list[AblationRow]:
    """A5: single branch-and-bound versus the concurrent portfolio.

    The paper's Section 1 argues MILP buys parallel optimization for free;
    this ablation quantifies it on our solver.  Node counts for the
    portfolio sum over its members.
    """
    from repro.api import OptimizerSettings, create_optimizer

    modes = [
        ("single search", "milp", True),
        ("portfolio (parallel)", "milp-portfolio", True),
        ("portfolio (sequential)", "milp-portfolio", False),
    ]
    rows = []
    for label, key, parallel in modes:
        settings = OptimizerSettings(
            cost_model="cout", time_limit=budget, precision="medium",
            extra={"parallel": parallel},
        )
        ratios, factors, nodes, times = [], [], [], []
        for seed in range(queries):
            query = QueryGenerator(seed=seed).generate(topology, num_tables)
            dp = SelingerOptimizer(query, use_cout=True).optimize()
            result = create_optimizer(key, settings).optimize(query)
            if result.true_cost is None:
                ratios.append(math.inf)
            else:
                ratios.append(result.true_cost / max(dp.cost, 1e-12))
            factors.append(result.optimality_factor)
            nodes.append(result.diagnostics.get("nodes", 0))
            times.append(result.solve_time)
        rows.append(
            AblationRow(label, _mean(ratios), _mean(factors),
                        _mean(nodes), _mean(times))
        )
    return rows


def run_bushy_comparison(
    num_tables: int = DEFAULT_TABLES,
    queries: int = DEFAULT_QUERIES,
    budget: float = DEFAULT_BUDGET,
    topology: str = "chain",
) -> list[AblationRow]:
    """A6: left-deep MILP vs bushy MILP vs bushy DP (C_out, chain queries).

    Quantifies the cost of the paper's left-deep restriction.  The
    ``true_cost_ratio`` column is relative to the *bushy DP* optimum here
    (which excludes cross products, so MILP rows can drop below 1).
    """
    from repro.dp.bushy import BushyOptimizer
    from repro.core.bushy import BushyMILPOptimizer

    config = FormulationConfig.medium_precision(num_tables, cost_model="cout")

    def run_left_deep(query):
        result = MILPJoinOptimizer(
            config, SolverOptions(time_limit=budget)
        ).optimize(query)
        cost = math.inf if result.true_cost is None else result.true_cost
        return cost, result.optimality_factor, result.milp_solution.node_count

    def run_bushy_milp(query):
        result = BushyMILPOptimizer(
            config, SolverOptions(time_limit=budget)
        ).optimize(query)
        cost = math.inf if result.true_cost is None else result.true_cost
        return cost, result.optimality_factor, result.milp_solution.node_count

    def run_bushy_dp(query):
        result = BushyOptimizer(query, use_cout=True).optimize()
        return result.cost, 1.0, 0

    modes = [
        ("left-deep MILP", run_left_deep),
        ("bushy MILP", run_bushy_milp),
        ("bushy DP (no cross products)", run_bushy_dp),
    ]
    rows = []
    for label, runner in modes:
        ratios, factors, nodes, times = [], [], [], []
        for seed in range(queries):
            query = QueryGenerator(seed=seed).generate(topology, num_tables)
            reference = BushyOptimizer(query, use_cout=True).optimize()
            import time as _time

            started = _time.monotonic()
            cost, factor, effort = runner(query)
            times.append(_time.monotonic() - started)
            ratios.append(cost / max(reference.cost, 1e-12))
            factors.append(factor)
            nodes.append(effort)
        rows.append(
            AblationRow(label, _mean(ratios), _mean(factors),
                        _mean(nodes), _mean(times))
        )
    return rows


def format_rows(rows: list[AblationRow], title: str) -> str:
    """Render ablation rows as a text table."""
    headers = [
        "configuration",
        "true-cost/DP-opt",
        "guaranteed factor",
        "nodes",
        "time(s)",
    ]
    return render_table(
        headers,
        [
            [row.configuration, row.mean_true_cost_ratio, row.mean_factor,
             row.mean_nodes, row.mean_time]
            for row in rows
        ],
        title=title,
    )


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--study",
        nargs="+",
        default=["precision", "solver", "cost", "heuristics"],
        choices=(
            "precision", "solver", "cost", "heuristics", "portfolio",
            "bushy",
        ),
    )
    parser.add_argument("--tables", type=int, default=DEFAULT_TABLES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET)
    args = parser.parse_args(argv)
    if "precision" in args.study:
        rows = run_precision_sweep(args.tables, args.queries, args.budget)
        print(format_rows(rows, "A1: precision sweep (C_out objective)"))
        print()
    if "solver" in args.study:
        rows = run_solver_ablation(args.tables, args.queries, args.budget)
        print(format_rows(rows, "A2: solver feature ablation"))
        print()
    if "cost" in args.study:
        rows = run_cost_model_ablation(args.tables, args.queries, args.budget)
        print(format_rows(rows, "A3: cost model comparison"))
        print()
    if "heuristics" in args.study:
        rows = run_heuristics_comparison(
            args.tables, args.queries, args.budget
        )
        print(format_rows(rows, "A4: MILP vs heuristic family"))
        print()
    if "portfolio" in args.study:
        rows = run_portfolio_comparison(
            args.tables, args.queries, args.budget
        )
        print(format_rows(rows, "A5: single search vs portfolio"))
        print()
    if "bushy" in args.study:
        rows = run_bushy_comparison(args.tables, args.queries, args.budget)
        print(format_rows(rows, "A6: left-deep vs bushy plan spaces"))


if __name__ == "__main__":
    main()
