"""Experiment harness regenerating the paper's figures and the ablations.

* :mod:`repro.harness.figure1` — Figure 1 (model size), E1.
* :mod:`repro.harness.figure2` — Figure 2 (anytime comparison), E2-E4.
* :mod:`repro.harness.ablation` — ablations A1-A3.

Submodules are imported lazily so ``python -m repro.harness.figureN`` does
not trigger double-import warnings.
"""

import importlib

_EXPORTS = {
    "AnytimeSample": "repro.harness.anytime",
    "dp_trajectory": "repro.harness.anytime",
    "median": "repro.harness.anytime",
    "median_trajectory": "repro.harness.anytime",
    "milp_trajectory": "repro.harness.anytime",
    "Figure1Row": "repro.harness.figure1",
    "format_figure1": "repro.harness.figure1",
    "run_figure1": "repro.harness.figure1",
    "Figure2Panel": "repro.harness.figure2",
    "format_figure2": "repro.harness.figure2",
    "run_figure2": "repro.harness.figure2",
    "run_panel": "repro.harness.figure2",
    "render_table": "repro.harness.reporting",
    "write_csv": "repro.harness.reporting",
    "ComparisonConfig": "repro.harness.runner",
    "RunResult": "repro.harness.runner",
    "compare_on_query": "repro.harness.runner",
    "run_dp": "repro.harness.runner",
    "run_milp": "repro.harness.runner",
    "AblationRow": "repro.harness.ablation",
    "run_precision_sweep": "repro.harness.ablation",
    "run_solver_ablation": "repro.harness.ablation",
    "run_cost_model_ablation": "repro.harness.ablation",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.harness' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    return getattr(module, name)
