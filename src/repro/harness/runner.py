"""Experiment runner: one query through every compared optimizer.

Implements the paper's Section 7.1 protocol — same time budget for every
algorithm, trajectories of the guaranteed optimality factor sampled at
regular intervals — on top of the unified :mod:`repro.api` surface, so
any registered algorithm (including third-party registrations) can join
the comparison by name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.api import OptimizerSettings, PlanResult, create_optimizer
from repro.catalog.query import Query
from repro.dp.selinger import MAX_DP_TABLES
from repro.milp.solution import SolveStatus
from repro.core.config import FormulationConfig
from repro.harness.anytime import (
    AnytimeSample,
    dp_trajectory,
    milp_trajectory,
)


@dataclass
class RunResult:
    """One algorithm's outcome on one query."""

    algorithm: str
    query_name: str
    trajectory: list[AnytimeSample]
    final_factor: float
    solve_time: float
    plan_description: str = ""
    true_cost: float | None = None


@dataclass
class ComparisonConfig:
    """Protocol parameters for one comparison run.

    Attributes
    ----------
    time_budget:
        Optimization time per algorithm per query (paper: 60 s; scaled
        defaults are smaller because our solver substrate is pure Python).
    sample_interval:
        Trajectory sampling interval (paper: 6 s out of 60).
    cost_model:
        MILP objective / DP cost metric; the paper assumes hash joins.
    milp_configs:
        Formulation configurations to compare (paper: high/medium/low).
    include_dp:
        Include the Selinger DP comparator (skipped automatically beyond
        :data:`~repro.dp.selinger.MAX_DP_TABLES` tables).
    warm_start:
        Seed the MILP solver with the greedy plan.
    extra_algorithms:
        Additional registry keys to run alongside DP and the MILP
        configurations (e.g. ``["ii", "sa", "greedy"]``).
    """

    time_budget: float = 6.0
    sample_interval: float = 0.6
    cost_model: str = "hash"
    milp_configs: list[FormulationConfig] = field(default_factory=list)
    include_dp: bool = True
    warm_start: bool = True
    extra_algorithms: list[str] = field(default_factory=list)

    def settings(self, **extra) -> OptimizerSettings:
        """API settings implementing this protocol configuration."""
        return OptimizerSettings(
            cost_model=self.cost_model,
            time_limit=self.time_budget,
            extra={"warm_start": self.warm_start, **extra},
        )


def _trajectory(
    result: PlanResult, config: ComparisonConfig
) -> list[AnytimeSample]:
    """Factor-over-time samples for any unified result.

    Results with a bound-carrying event stream (MILP) replay it; exact
    algorithms contribute a step function at their finish time; pure
    heuristics never leave infinity (no bounds, per the paper).
    """
    if any(not math.isinf(event.bound) for event in result.events):
        return milp_trajectory(
            result.events, config.time_budget, config.sample_interval
        )
    finished = (
        result.solve_time
        if result.status is SolveStatus.OPTIMAL
        else None
    )
    return dp_trajectory(
        finished, config.time_budget, config.sample_interval
    )


def run_algorithm(
    query: Query,
    algorithm: str,
    config: ComparisonConfig,
    label: str | None = None,
    settings: OptimizerSettings | None = None,
) -> RunResult:
    """Run one registered algorithm under the comparison protocol."""
    optimizer = create_optimizer(algorithm, settings or config.settings())
    result = optimizer.optimize(query, time_limit=config.time_budget)
    return RunResult(
        algorithm=label or algorithm,
        query_name=query.name,
        trajectory=_trajectory(result, config),
        final_factor=result.optimality_factor,
        solve_time=result.solve_time,
        plan_description=result.plan.describe() if result.plan else "",
        true_cost=result.true_cost,
    )


def run_dp(query: Query, config: ComparisonConfig) -> RunResult:
    """Run the Selinger DP under the time budget."""
    return run_algorithm(query, "selinger", config, label="DP")


def run_milp(
    query: Query,
    formulation_config: FormulationConfig,
    config: ComparisonConfig,
) -> RunResult:
    """Run the MILP optimizer under the time budget."""
    label = f"ILP ({formulation_config.label})"
    settings = config.settings(
        formulation_config=formulation_config.with_cost_model(
            config.cost_model
        ),
    )
    return run_algorithm(query, "milp", config, label=label,
                         settings=settings)


def compare_on_query(
    query: Query, config: ComparisonConfig
) -> list[RunResult]:
    """Run every configured algorithm on one query."""
    results: list[RunResult] = []
    if config.include_dp and query.num_tables <= MAX_DP_TABLES:
        results.append(run_dp(query, config))
    for formulation_config in config.milp_configs:
        adjusted = formulation_config.with_cost_model(config.cost_model)
        results.append(run_milp(query, adjusted, config))
    for algorithm in config.extra_algorithms:
        results.append(run_algorithm(query, algorithm, config))
    return results
