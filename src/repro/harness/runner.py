"""Experiment runner: one query through every compared optimizer.

Implements the paper's Section 7.1 protocol — same time budget for every
algorithm, trajectories of the guaranteed optimality factor sampled at
regular intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.query import Query
from repro.dp.selinger import MAX_DP_TABLES, SelingerOptimizer
from repro.milp.branch_and_bound import SolverOptions
from repro.core.config import FormulationConfig
from repro.core.optimizer import MILPJoinOptimizer
from repro.harness.anytime import (
    AnytimeSample,
    dp_trajectory,
    milp_trajectory,
)


@dataclass
class RunResult:
    """One algorithm's outcome on one query."""

    algorithm: str
    query_name: str
    trajectory: list[AnytimeSample]
    final_factor: float
    solve_time: float
    plan_description: str = ""
    true_cost: float | None = None


@dataclass
class ComparisonConfig:
    """Protocol parameters for one comparison run.

    Attributes
    ----------
    time_budget:
        Optimization time per algorithm per query (paper: 60 s; scaled
        defaults are smaller because our solver substrate is pure Python).
    sample_interval:
        Trajectory sampling interval (paper: 6 s out of 60).
    cost_model:
        MILP objective / DP cost metric; the paper assumes hash joins.
    milp_configs:
        Formulation configurations to compare (paper: high/medium/low).
    include_dp:
        Include the Selinger DP comparator (skipped automatically beyond
        :data:`~repro.dp.selinger.MAX_DP_TABLES` tables).
    warm_start:
        Seed the MILP solver with the greedy plan.
    """

    time_budget: float = 6.0
    sample_interval: float = 0.6
    cost_model: str = "hash"
    milp_configs: list[FormulationConfig] = field(default_factory=list)
    include_dp: bool = True
    warm_start: bool = True


def run_dp(query: Query, config: ComparisonConfig) -> RunResult:
    """Run the Selinger DP under the time budget."""
    optimizer = SelingerOptimizer(
        query, use_cout=config.cost_model == "cout"
    )
    result = optimizer.optimize(time_limit=config.time_budget)
    finished = result.elapsed if result.optimal else None
    trajectory = dp_trajectory(
        finished, config.time_budget, config.sample_interval
    )
    return RunResult(
        algorithm="DP",
        query_name=query.name,
        trajectory=trajectory,
        final_factor=result.optimality_factor,
        solve_time=result.elapsed,
        plan_description=result.plan.describe() if result.plan else "",
        true_cost=result.cost if result.optimal else None,
    )


def run_milp(
    query: Query,
    formulation_config: FormulationConfig,
    config: ComparisonConfig,
) -> RunResult:
    """Run the MILP optimizer under the time budget."""
    label = f"ILP ({formulation_config.label})"
    options = SolverOptions(time_limit=config.time_budget)
    optimizer = MILPJoinOptimizer(formulation_config, options)
    result = optimizer.optimize(query, warm_start=config.warm_start)
    trajectory = milp_trajectory(
        result.events, config.time_budget, config.sample_interval
    )
    return RunResult(
        algorithm=label,
        query_name=query.name,
        trajectory=trajectory,
        final_factor=result.optimality_factor,
        solve_time=result.solve_time,
        plan_description=result.plan.describe() if result.plan else "",
        true_cost=result.true_cost,
    )


def compare_on_query(
    query: Query, config: ComparisonConfig
) -> list[RunResult]:
    """Run every configured algorithm on one query."""
    results: list[RunResult] = []
    if config.include_dp and query.num_tables <= MAX_DP_TABLES:
        results.append(run_dp(query, config))
    for formulation_config in config.milp_configs:
        adjusted = formulation_config.with_cost_model(config.cost_model)
        results.append(run_milp(query, adjusted, config))
    return results
