"""Plain-text and CSV rendering of experiment results."""

from __future__ import annotations

import csv
import math
from collections.abc import Sequence
from pathlib import Path


def format_value(value) -> str:
    """Human-friendly cell rendering (handles inf and large floats)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "-"
        if value and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells), 1)
        if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def write_csv(
    path: "str | Path",
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> None:
    """Write rows to a CSV file (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
