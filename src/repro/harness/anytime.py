"""Anytime trajectories: the paper's Figure 2 measurement protocol.

Algorithms are compared "in regular intervals according to the following
criterion: the factor by which the cost of the best plan found so far is
higher than the optimum at most" (Section 7.1).  For the MILP optimizer the
factor is incumbent objective over proven lower bound; for dynamic
programming it is infinite until the DP finishes and exactly 1.0 after.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.milp.solution import IncumbentEvent


@dataclass(frozen=True, slots=True)
class AnytimeSample:
    """Guaranteed optimality factor at one point in time."""

    time: float
    factor: float


def factor_from_state(objective: float, bound: float) -> float:
    """Guaranteed factor ``objective / bound`` (``inf`` without both)."""
    if math.isinf(objective) or objective <= 0:
        return math.inf if objective > 0 else 1.0
    if bound <= 0 or math.isinf(bound):
        return math.inf
    return max(1.0, objective / bound)


def milp_trajectory(
    events: list[IncumbentEvent],
    horizon: float,
    interval: float,
) -> list[AnytimeSample]:
    """Sample the solver's guaranteed factor at regular intervals.

    Replays the anytime event stream: at each sampling instant the best
    incumbent objective and the best proven bound known so far determine
    the factor.
    """
    samples: list[AnytimeSample] = []
    objective = math.inf
    bound = -math.inf
    pointer = 0
    steps = max(1, round(horizon / interval))
    for step in range(1, steps + 1):
        instant = step * interval
        while pointer < len(events) and events[pointer].time <= instant:
            event = events[pointer]
            objective = min(objective, event.objective)
            bound = max(bound, event.bound)
            pointer += 1
        samples.append(AnytimeSample(instant, factor_from_state(objective, bound)))
    return samples


def dp_trajectory(
    finished_at: float | None,
    horizon: float,
    interval: float,
) -> list[AnytimeSample]:
    """DP's trajectory: nothing until it finishes, optimal afterwards.

    ``finished_at=None`` means the DP did not finish within the horizon.
    """
    samples: list[AnytimeSample] = []
    steps = max(1, round(horizon / interval))
    for step in range(1, steps + 1):
        instant = step * interval
        done = finished_at is not None and instant >= finished_at
        samples.append(AnytimeSample(instant, 1.0 if done else math.inf))
    return samples


def median(values: list[float]) -> float:
    """Median that treats ``inf`` correctly (no averaging surprises)."""
    if not values:
        return math.nan
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    low, high = ordered[mid - 1], ordered[mid]
    if math.isinf(low) or math.isinf(high):
        return high if math.isinf(high) else low
    return (low + high) / 2.0


def median_trajectory(
    trajectories: list[list[AnytimeSample]],
) -> list[AnytimeSample]:
    """Pointwise median of equally-sampled trajectories (Figure 2 plots
    medians over 20 queries)."""
    if not trajectories:
        return []
    length = min(len(trajectory) for trajectory in trajectories)
    result: list[AnytimeSample] = []
    for k in range(length):
        instant = trajectories[0][k].time
        factors = [trajectory[k].factor for trajectory in trajectories]
        result.append(AnytimeSample(instant, median(factors)))
    return result
