"""Experiment E1 — paper Figure 1: MILP model size.

Reports the median number of variables and constraints of the MILP
representing one query, as a function of the number of query tables, for
the three precision configurations.  The paper shows star join graphs and
notes chain/cycle differ only marginally; this harness can report all
three.

Run as a script::

    python -m repro.harness.figure1 [--sizes 10 20 30 ...] [--seeds N]
                                    [--topology star] [--csv out.csv]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.api import route_algorithm
from repro.workloads.generator import QueryGenerator
from repro.core.analysis import measure_model_size
from repro.core.config import FormulationConfig
from repro.harness.anytime import median
from repro.harness.reporting import render_table, write_csv

#: Paper's query sizes.
PAPER_SIZES = (10, 20, 30, 40, 50, 60)

#: Scaled default (the measurement is cheap, so defaults match the paper).
DEFAULT_SIZES = PAPER_SIZES

DEFAULT_SEEDS = 20


@dataclass(frozen=True)
class Figure1Row:
    """Median model size for one (size, precision) data point.

    ``auto_algorithm`` records where :mod:`repro.api`'s ``"auto"`` router
    would send a query of this shape and size — documenting, next to the
    model sizes, at which scale the MILP actually gets used.
    """

    topology: str
    num_tables: int
    precision: str
    thresholds: int
    variables: float
    constraints: float
    auto_algorithm: str = ""


def run_figure1(
    sizes=DEFAULT_SIZES,
    seeds: int = DEFAULT_SEEDS,
    topology: str = "star",
) -> list[Figure1Row]:
    """Measure median model sizes; returns one row per (size, precision)."""
    rows: list[Figure1Row] = []
    for num_tables in sizes:
        sample = QueryGenerator(seed=0).generate(topology, num_tables)
        routed = route_algorithm(sample)
        for config in FormulationConfig.presets(num_tables):
            variables: list[float] = []
            constraints: list[float] = []
            thresholds = 0
            for seed in range(seeds):
                query = QueryGenerator(seed=seed).generate(
                    topology, num_tables
                )
                size = measure_model_size(query, config)
                variables.append(float(size.variables))
                constraints.append(float(size.constraints))
                thresholds = size.num_thresholds
            rows.append(
                Figure1Row(
                    topology=topology,
                    num_tables=num_tables,
                    precision=config.label,
                    thresholds=thresholds,
                    variables=median(variables),
                    constraints=median(constraints),
                    auto_algorithm=routed,
                )
            )
    return rows


def format_figure1(rows: list[Figure1Row]) -> str:
    """Render the Figure 1 series as a text table."""
    headers = [
        "topology",
        "tables",
        "precision",
        "thresholds/result",
        "median variables",
        "median constraints",
        "auto routes to",
    ]
    table_rows = [
        [
            row.topology,
            row.num_tables,
            row.precision,
            row.thresholds,
            row.variables,
            row.constraints,
            row.auto_algorithm,
        ]
        for row in rows
    ]
    return render_table(
        headers,
        table_rows,
        title="Figure 1: median MILP size per query (variables / constraints)",
    )


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument("--seeds", type=int, default=DEFAULT_SEEDS)
    parser.add_argument(
        "--topology",
        default="star",
        choices=("chain", "star", "cycle", "clique", "grid"),
    )
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)
    rows = run_figure1(args.sizes, args.seeds, args.topology)
    print(format_figure1(rows))
    if args.csv:
        write_csv(
            args.csv,
            ["topology", "tables", "precision", "thresholds",
             "variables", "constraints", "auto_algorithm"],
            [
                [row.topology, row.num_tables, row.precision,
                 row.thresholds, row.variables, row.constraints,
                 row.auto_algorithm]
                for row in rows
            ],
        )


if __name__ == "__main__":
    main()
