"""Experiment E2-E4 — paper Figure 2: anytime comparison DP vs MILP.

For each join graph shape (chain / cycle / star) and query size, run the
classical DP and the MILP optimizer in its three precision configurations
under a common time budget, and report the median guaranteed optimality
factor over time — exactly the paper's Figure 2 panels, as text series.

The paper's scale (10-60 tables, 60 s, Gurobi) is reachable via
``--paper``; the default is scaled down because the solver substrate is
pure Python (see DESIGN.md) — the *shape* of the comparison (DP cliff
versus MILP anytime degradation, star easier than chain/cycle for MILP) is
preserved at the scaled sizes.

Run as a script::

    python -m repro.harness.figure2 [--graph chain] [--sizes 4 6 8]
                                    [--queries 3] [--budget 6] [--csv out]
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass, field

from repro.workloads.generator import QueryGenerator
from repro.core.config import FormulationConfig
from repro.harness.anytime import AnytimeSample, median_trajectory
from repro.harness.reporting import render_table, write_csv
from repro.harness.runner import ComparisonConfig, compare_on_query

#: Scaled defaults: sizes the pure-Python substrate handles in seconds.
DEFAULT_SIZES = (4, 6, 8)
DEFAULT_QUERIES = 3
DEFAULT_BUDGET = 6.0

#: The paper's setting.
PAPER_SIZES = (10, 20, 30, 40, 50, 60)
PAPER_QUERIES = 20
PAPER_BUDGET = 60.0


@dataclass
class Figure2Panel:
    """One panel of Figure 2: a (topology, size) pair.

    ``series`` maps algorithm label to its median trajectory.
    """

    topology: str
    num_tables: int
    series: dict[str, list[AnytimeSample]] = field(default_factory=dict)


def run_panel(
    topology: str,
    num_tables: int,
    queries: int,
    budget: float,
    cost_model: str = "hash",
    base_seed: int = 0,
    extra_algorithms: list[str] | None = None,
) -> Figure2Panel:
    """Run one Figure 2 panel: ``queries`` random queries, all algorithms.

    ``extra_algorithms`` adds registered :mod:`repro.api` algorithms
    (e.g. ``["ii", "sa"]``) to the paper's DP-vs-ILP panel — heuristics
    contribute flat-infinity trajectories, visualizing the paper's point
    that they prove nothing.
    """
    comparison = ComparisonConfig(
        time_budget=budget,
        sample_interval=budget / 10.0,
        cost_model=cost_model,
        milp_configs=FormulationConfig.presets(num_tables),
        extra_algorithms=list(extra_algorithms or []),
    )
    trajectories: dict[str, list[list[AnytimeSample]]] = {}
    for index in range(queries):
        query = QueryGenerator(seed=base_seed + index).generate(
            topology, num_tables
        )
        for run in compare_on_query(query, comparison):
            trajectories.setdefault(run.algorithm, []).append(run.trajectory)
    panel = Figure2Panel(topology=topology, num_tables=num_tables)
    for algorithm, runs in trajectories.items():
        panel.series[algorithm] = median_trajectory(runs)
    return panel


def run_figure2(
    topologies=("chain", "cycle", "star"),
    sizes=DEFAULT_SIZES,
    queries: int = DEFAULT_QUERIES,
    budget: float = DEFAULT_BUDGET,
    cost_model: str = "hash",
    extra_algorithms: list[str] | None = None,
) -> list[Figure2Panel]:
    """Run the full grid of Figure 2 panels."""
    return [
        run_panel(topology, num_tables, queries, budget, cost_model,
                  extra_algorithms=extra_algorithms)
        for topology in topologies
        for num_tables in sizes
    ]


def format_panel(panel: Figure2Panel) -> str:
    """Render one panel: rows are sample times, columns algorithms."""
    algorithms = sorted(panel.series)
    headers = ["time(s)"] + algorithms
    length = min(
        (len(series) for series in panel.series.values()), default=0
    )
    rows = []
    for k in range(length):
        instant = panel.series[algorithms[0]][k].time
        row = [round(instant, 2)]
        for algorithm in algorithms:
            factor = panel.series[algorithm][k].factor
            row.append(math.inf if math.isinf(factor) else factor)
        rows.append(row)
    title = (
        f"Figure 2 panel — {panel.topology}, {panel.num_tables} tables "
        "(median guaranteed cost/LB factor; inf = no plan yet)"
    )
    return render_table(headers, rows, title=title)


def format_figure2(panels: list[Figure2Panel]) -> str:
    """Render all panels."""
    return "\n\n".join(format_panel(panel) for panel in panels)


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--graph",
        nargs="+",
        default=["chain", "cycle", "star"],
        choices=("chain", "cycle", "star", "clique", "grid"),
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--budget", type=float, default=None)
    parser.add_argument("--cost-model", default="hash")
    parser.add_argument(
        "--algorithms", nargs="*", default=[],
        help="extra repro.api registry keys to include (e.g. ii sa greedy)",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's scale (10-60 tables, 20 queries, 60 s)",
    )
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)
    sizes = args.sizes or (PAPER_SIZES if args.paper else DEFAULT_SIZES)
    queries = args.queries or (
        PAPER_QUERIES if args.paper else DEFAULT_QUERIES
    )
    budget = args.budget or (PAPER_BUDGET if args.paper else DEFAULT_BUDGET)
    panels = run_figure2(
        args.graph, sizes, queries, budget, args.cost_model,
        extra_algorithms=args.algorithms,
    )
    print(format_figure2(panels))
    if args.csv:
        rows = []
        for panel in panels:
            for algorithm, series in sorted(panel.series.items()):
                for sample in series:
                    rows.append(
                        [panel.topology, panel.num_tables, algorithm,
                         sample.time, sample.factor]
                    )
        write_csv(
            args.csv,
            ["topology", "tables", "algorithm", "time", "factor"],
            rows,
        )


if __name__ == "__main__":
    main()
