"""``repro.serve`` — the async optimization server.

Where :mod:`repro.api` made every algorithm one library surface, this
package makes that surface *deployable*: a long-lived server with the
concerns a production query engine actually has — concurrent clients,
duplicate in-flight queries, deadlines, overload — built strictly on
:class:`~repro.api.OptimizerService` (no per-algorithm front ends).

Layers, bottom up:

* :mod:`repro.serve.metrics` — counters/gauges/histograms with a text
  exposition (queue depth, latency percentiles, coalesce/cache/warm
  ratios);
* :mod:`repro.serve.scheduler` — bounded priority + earliest-deadline
  queue with admission control and deadline-degraded budgets;
* :mod:`repro.serve.coalesce` — in-flight request coalescing keyed by
  query signature (N concurrent identical queries → 1 optimization);
* :mod:`repro.serve.server` — :class:`OptimizationServer`: worker pool,
  cross-query basis sharing through the keyed
  :class:`~repro.milp.lp_backend.BasisExchangePool`, graceful drain;
* :mod:`repro.serve.http` — stdlib JSON-over-HTTP front end
  (``POST /optimize``, ``GET /metrics``, ``GET /healthz``), also
  reachable as the ``repro serve`` CLI subcommand;
* :mod:`repro.serve.ring` / :mod:`repro.serve.shardwire` /
  :mod:`repro.serve.shard` / :mod:`repro.serve.supervisor` /
  :mod:`repro.serve.sharded` — the multi-process tier:
  :class:`ShardedOptimizationServer` runs N shard child processes
  (each a full inner server with shard-local plan cache, basis pool
  and store), routes by consistent hash of
  ``(catalog_version, query_signature)``, supervises with heartbeats,
  and fails over in-flight requests honestly when a shard dies
  (``repro serve --shards N``).

Quickstart::

    from repro.serve import OptimizationServer, Priority

    with OptimizationServer(workers=4) as server:
        ticket = server.submit(query, "auto", priority=Priority.HIGH,
                               deadline=0.5)
        outcome = ticket.result()
        if outcome.ok:
            print(outcome.result.plan.describe())
        print(server.metrics_snapshot()["coalesce"])
"""

from repro.serve.coalesce import RequestCoalescer
from repro.serve.http import OptimizationHTTPServer, make_http_server
from repro.serve.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serve.resilience import (
    BreakerBoard,
    BreakerState,
    CancelToken,
    CancelledError,
    CircuitBreaker,
    ResilientExecutor,
    RetryPolicy,
    size_class,
)
from repro.serve.scheduler import (
    DeadlineScheduler,
    Priority,
    ServeRequest,
    degraded_budget,
)
from repro.serve.ring import HashRing
from repro.serve.server import (
    OptimizationServer,
    RequestStatus,
    ServeResult,
    ServeTicket,
)
from repro.serve.sharded import ShardedOptimizationServer
from repro.serve.supervisor import ShardState, ShardSupervisor

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CancelToken",
    "CancelledError",
    "CircuitBreaker",
    "Counter",
    "CounterFamily",
    "DeadlineScheduler",
    "Gauge",
    "HashRing",
    "Histogram",
    "MetricsRegistry",
    "OptimizationHTTPServer",
    "OptimizationServer",
    "Priority",
    "RequestCoalescer",
    "RequestStatus",
    "ResilientExecutor",
    "RetryPolicy",
    "ServeRequest",
    "ServeResult",
    "ServeTicket",
    "ShardState",
    "ShardSupervisor",
    "ShardedOptimizationServer",
    "degraded_budget",
    "make_http_server",
    "size_class",
]
