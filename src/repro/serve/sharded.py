"""Multi-process sharded optimization serving.

:class:`ShardedOptimizationServer` presents the same surface as the
single-process :class:`~repro.serve.server.OptimizationServer` —
``submit``/``optimize``/``stats``/``metrics_text``/``stop(drain=...)``,
the same :class:`~repro.serve.scheduler.DeadlineScheduler` admission
and the same deadline-free request coalescing — but executes every
optimization in one of N shard child processes, each running a full
inner server (worker pool, resilience ladder, shard-local plan cache,
:class:`~repro.milp.lp_backend.BasisExchangePool`, per-shard store
with warm replay).  Pure-python MILP solves serialize on the GIL; the
process boundary is what actually buys concurrent solves.

Request flow::

    submit → scheduler (admission, priority/EDF) → dispatcher thread
           → HashRing.route((catalog_version, query_signature))
           → shard breaker check → checksum-framed request over the pipe
    shard  → inner OptimizationServer → framed ServeResult back
    reader → resolve the hub future (idempotent) + per-shard metrics

Failure flow (the point of the module)::

    ShardSupervisor.tick → dead/silent shard → take_inflight()
        → deadline still allows and retries remain?  re-offer to the
          scheduler (routes to the next healthy ring owner)
        : deadline blown?  TIMED_OUT          — honest, never silent
        : retries exhausted?  FAILED with the shard's obituary
    → respawn with backoff → store-backed warm replay → ready →
      the ring walk finds the shard healthy again (no rebuild)

Consistent-hash routing keeps each key's plan cache and basis pool
shard-local and *hot across respawns*: a recovered shard owns exactly
its old keyspace, and its warm replay reloaded exactly those plans.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from concurrent.futures import InvalidStateError
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable

from repro import faultinject, obs
from repro.api import available_algorithms, query_signature

from repro.serve import shardwire
from repro.serve.coalesce import RequestCoalescer
from repro.serve.metrics import MetricsRegistry, render_labeled
from repro.serve.scheduler import (
    DeadlineScheduler,
    Priority,
    ServeRequest,
)
from repro.serve.server import (
    RequestStatus,
    ServeResult,
    ServeTicket,
    _priority,
)
from repro.serve.ring import HashRing
from repro.serve.shard import (
    ShardConfig,
    shard_heartbeat_interval,
    shard_heartbeat_timeout,
    shard_max_retries,
    shard_start_method,
    shard_vnodes,
)
from repro.serve.supervisor import ShardHandle, ShardState, ShardSupervisor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.query import Query

__all__ = ["ShardedOptimizationServer"]

logger = logging.getLogger("repro.serve.shard")

#: Ceiling on how long a deadline-free request may sit on a shard
#: before the hub force-resolves it (the shard's own watchdog should
#: have answered long before; this is the hub's last-resort backstop).
DEFAULT_REQUEST_TIMEOUT = 300.0

#: Post-deadline grace before the hub force-resolves an overdue
#: request: the shard's watchdog normally reports the TIMED_OUT itself
#: (with better accounting); the hub only overrides a shard that went
#: quiet *without* being declared dead yet.
DEADLINE_GRACE = 2.0


class ShardedOptimizationServer:
    """N shard processes behind one scheduler, supervisor and ring.

    Parameters mirror :class:`~repro.serve.server.OptimizationServer`
    where they mean the same thing; the shard-specific knobs default
    from the ``REPRO_SHARD_*`` environment (documented in
    docs/operations.md).

    ``fault_specs``/``fault_seed`` seed each shard child's own
    deterministic :class:`~repro.faultinject.FaultPlan` (per-index
    seeds); hub-side sites (scheduler admission, the wire) use the
    process-global plan as usual.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        workers_per_shard: int = 2,
        queue_capacity: int = 128,
        shard_queue_capacity: int = 64,
        default_deadline: float | None = None,
        coalesce: bool = True,
        cost_model: str = "hash",
        time_limit: float = 30.0,
        seed: int = 0,
        precision: str = "high",
        store_path: str | None = None,
        store_backend: str | None = None,
        replay_budget: int | None = None,
        flush_interval: float | None = None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        supervisor_interval: float = 0.05,
        spawn_timeout: float = 60.0,
        max_retries: int | None = None,
        respawn: bool = True,
        respawn_backoff: float = 0.25,
        breaker_threshold: int = 5,
        breaker_reset: float = 5.0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        vnodes: int | None = None,
        start_method: str | None = None,
        budget_safety: float = 0.9,
        min_budget: float = 0.05,
        fault_specs: tuple | None = None,
        fault_seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.default_deadline = default_deadline
        self.request_timeout = request_timeout
        self.max_retries = (
            max_retries if max_retries is not None else shard_max_retries()
        )
        self.supervisor_interval = supervisor_interval
        self.clock = clock
        self._catalog_version = 0
        beat = (
            heartbeat_interval if heartbeat_interval is not None
            else shard_heartbeat_interval()
        )
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else shard_heartbeat_timeout()
        )
        configs = [
            ShardConfig(
                index=index,
                workers=workers_per_shard,
                queue_capacity=shard_queue_capacity,
                cost_model=cost_model,
                time_limit=time_limit,
                seed=seed,
                precision=precision,
                coalesce=coalesce,
                store_path=store_path,
                store_backend=store_backend,
                replay_budget=replay_budget,
                flush_interval=flush_interval,
                heartbeat_interval=beat,
                budget_safety=budget_safety,
                min_budget=min_budget,
                fault_seed=fault_seed,
                fault_specs=tuple(fault_specs or ()),
            )
            for index in range(shards)
        ]
        self.supervisor = ShardSupervisor(
            configs,
            on_failure=self._on_shard_failure,
            on_message=self._on_shard_message,
            on_ready=self._on_shard_ready,
            clock=clock,
            heartbeat_timeout=self.heartbeat_timeout,
            spawn_timeout=spawn_timeout,
            respawn=respawn,
            respawn_backoff=respawn_backoff,
            breaker_threshold=breaker_threshold,
            breaker_reset=breaker_reset,
            start_method=start_method or shard_start_method(),
        )
        self.ring = HashRing(
            shards, vnodes if vnodes is not None else shard_vnodes()
        )
        self.scheduler = DeadlineScheduler(queue_capacity)
        self.coalescer = RequestCoalescer() if coalesce else None
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._started = False
        self._rid_lock = threading.Lock()
        self._next_rid = 1
        self._dispatcher: threading.Thread | None = None
        self._supervisor_thread: threading.Thread | None = None
        self._stop_loops = threading.Event()

        m = self.metrics
        self._requests_total = m.counter(
            "serve_requests_total", "requests submitted")
        self._completed = m.counter(
            "serve_completed_total", "requests answered with a result")
        self._rejected = m.counter(
            "serve_rejected_total", "requests shed by admission control")
        self._timed_out = m.counter(
            "serve_timed_out_total", "requests whose deadline expired")
        self._failed = m.counter(
            "serve_failed_total", "requests that raised")
        self._cancelled = m.counter(
            "serve_cancelled_total", "requests cancelled cooperatively")
        self._coalesced = m.counter(
            "serve_coalesced_total", "requests answered by another's solve")
        self._dispatched = m.counter(
            "serve_dispatched_total", "requests shipped to a shard")
        self._shard_kills = m.counter(
            "serve_shard_kills_total", "shards declared dead")
        self._shard_respawns = m.counter(
            "serve_shard_respawns_total", "shard processes respawned")
        self._shard_retries = m.counter(
            "serve_shard_retries_total",
            "requests re-dispatched after a shard death")
        self._wire_corrupt = m.counter(
            "serve_wire_corrupt_total", "corrupt frames on the shard wire")
        self._errors = m.counter_family(
            "errors_total", "errors by exception type")
        self._queue_depth = m.gauge(
            "serve_queue_depth", "requests waiting in the scheduler")
        self._healthy_shards = m.gauge(
            "serve_healthy_shards", "shards currently in the routing ring")
        self._shard_inflight = m.gauge(
            "serve_shard_inflight", "requests currently on shards")
        self._wait_hist = m.histogram(
            "serve_wait_seconds", "queue wait time (hub side)")
        self._total_hist = m.histogram(
            "serve_total_seconds", "submit-to-resolve latency")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(
        self, wait_ready: bool = True, timeout: float = 60.0
    ) -> "ShardedOptimizationServer":
        """Spawn every shard; optionally block until the ring is live.

        ``wait_ready`` blocks until at least one shard reports ready
        (each finishes its warm replay first), so the first submitted
        request has somewhere to go.
        """
        with self._lock:
            if self._started:
                return self
            self._started = True
        self.supervisor.start()
        self._stop_loops.clear()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="shard-dispatcher", daemon=True,
        )
        self._dispatcher.start()
        self._supervisor_thread = threading.Thread(
            target=self._supervise_loop, name="shard-supervisor", daemon=True,
        )
        self._supervisor_thread.start()
        if wait_ready:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if self.supervisor.healthy():
                    break
                time.sleep(0.01)
            else:
                logger.warning(
                    "no shard became ready within %.1fs; "
                    "requests will be rejected until one does", timeout,
                )
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down; every outstanding future still resolves.

        ``drain=True``: stop admitting, dispatch what is queued, tell
        every shard to drain (each inner server finishes its in-flight
        work and ships the results), then reap.  ``drain=False``:
        reject the queue, stop the shards hard, and force-resolve
        whatever was in flight as ``TIMED_OUT`` — honestly, since the
        work genuinely did not complete.
        """
        self.scheduler.close()
        deadline = time.monotonic() + timeout
        if drain:
            # Phase 1: let the dispatcher empty the admission queue.
            while len(self.scheduler) and time.monotonic() < deadline:
                time.sleep(0.01)
            # Phase 2: ask every live shard to drain and say bye.
            for handle in self.supervisor.handles:
                if handle.state in (ShardState.READY, ShardState.STARTING):
                    handle.mark_draining()
                    handle.send(shardwire.encode_control("drain"))
            # Phase 3: wait for in-flight results (the supervisor loop
            # keeps running, so a shard dying mid-drain still gets its
            # requests disposed honestly).
            while time.monotonic() < deadline:
                if not any(
                    h.inflight_count() for h in self.supervisor.handles
                ):
                    break
                time.sleep(0.01)
        else:
            for handle in self.supervisor.handles:
                handle.send(shardwire.encode_control("stop"))
        self._stop_loops.set()
        self.supervisor.stop()
        # Nothing a dead server holds may dangle: queue leftovers are
        # REJECTED (never started), in-flight leftovers TIMED_OUT.
        for request in self.scheduler.drain():
            self._resolve_rejection(request, "server shutting down")
        for handle in self.supervisor.handles:
            for _rid, request in handle.take_inflight():
                self._finish(request, ServeResult(
                    status=RequestStatus.TIMED_OUT,
                    algorithm=request.algorithm,
                    error="server stopped while request was on a shard",
                ))
        if self.coalescer is not None:
            # Any leaders still tracked above were resolved; their
            # followers resolved with them via _finish.
            pass
        for thread in (self._dispatcher, self._supervisor_thread):
            if thread is not None:
                thread.join(max(0.1, deadline - time.monotonic()))
        with self._lock:
            self._started = False

    def __enter__(self) -> "ShardedOptimizationServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop(drain=True)

    @property
    def started(self) -> bool:
        with self._lock:
            return self._started

    # ------------------------------------------------------------------
    # Submission (the OptimizationServer surface)
    # ------------------------------------------------------------------

    def submit(
        self,
        query: "Query",
        algorithm: str = "auto",
        *,
        priority: "Priority | str | int" = Priority.NORMAL,
        deadline: float | None = None,
    ) -> ServeTicket:
        """Admit one request; identical contract to the single-process
        :meth:`OptimizationServer.submit`."""
        resolved_priority = _priority(priority)
        effective = (
            deadline if deadline is not None else self.default_deadline
        )
        if effective is not None and not (
            math.isfinite(effective) and effective > 0
        ):
            raise ValueError(
                "deadline must be a positive finite number of seconds"
            )
        self._requests_total.inc()
        request = ServeRequest(
            query=query,
            algorithm=algorithm,
            priority=resolved_priority,
        )
        if effective is not None:
            request.deadline = request.submitted + effective
        trace = obs.start_trace(
            "request",
            algorithm=algorithm,
            priority=resolved_priority.name.lower(),
            query=getattr(query, "name", "?"),
            sharded=True,
        )
        if trace:
            request.trace = trace
        if self.scheduler.closed:
            self._resolve_rejection(request, "server stopped")
            return ServeTicket(request)
        # repro: allow[LOCK-001] racy fast-path read; start() re-checks under the lock
        if not self._started:
            self.start()
        if algorithm not in available_algorithms():
            self._failed.inc()
            request.future.set_result(ServeResult(
                status=RequestStatus.FAILED,
                algorithm=algorithm,
                error=(
                    f"unknown algorithm {algorithm!r}; registered: "
                    f"{', '.join(available_algorithms())}"
                ),
            ))
            return ServeTicket(request)
        request.key = (
            self.catalog_version, algorithm, query_signature(query),
        )
        # Deadline-free requests coalesce hub-side (same invariant as
        # the single-process server: deadline carriers never coalesce).
        if self.coalescer is not None and request.deadline is None:
            if not self.coalescer.lead_or_follow(request.key, request):
                self._coalesced.inc()
                return ServeTicket(request)
            request.leads = True
        with obs.attach(request.trace):
            admitted = self.scheduler.offer(request)
        if not admitted:
            if request.leads:
                for follower in self.coalescer.withdraw(request.key):
                    self._resolve_rejection(follower, "queue full")
            self._resolve_rejection(request, "queue full")
            return ServeTicket(request)
        self._queue_depth.set(len(self.scheduler))
        return ServeTicket(request)

    def optimize(
        self,
        query: "Query",
        algorithm: str = "auto",
        *,
        priority: "Priority | str | int" = Priority.NORMAL,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> ServeResult:
        """Synchronous convenience: submit and block for the result."""
        ticket = self.submit(
            query, algorithm, priority=priority, deadline=deadline
        )
        return ticket.result(timeout)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            request = self.scheduler.take(timeout=0.1)
            self._queue_depth.set(len(self.scheduler))
            if request is None:
                if self.scheduler.closed and not len(self.scheduler):
                    return
                if self._stop_loops.is_set():
                    return
                continue
            try:
                self._dispatch(request)
            except Exception as error:  # noqa: BLE001 - loop must survive
                logger.exception("dispatch failed")
                self._errors.labels(type=type(error).__name__).inc()
                self._finish(request, ServeResult(
                    status=RequestStatus.FAILED,
                    algorithm=request.algorithm,
                    error=f"dispatch error: {type(error).__name__}: {error}",
                ))

    def _dispatch(self, request: ServeRequest) -> None:
        """Route one admitted request onto a healthy shard."""
        if request.queue_span is not None:
            request.queue_span.finish()
            request.queue_span = None
        now = time.monotonic()
        self._wait_hist.observe(now - request.submitted)
        remaining = request.remaining(now)
        if remaining is not None and remaining <= 0:
            self._finish(request, ServeResult(
                status=RequestStatus.TIMED_OUT,
                algorithm=request.algorithm,
                error="deadline expired before dispatch",
            ))
            return
        key = f"{request.key[0]}:{request.key[2]}" if request.key else \
            query_signature(request.query)
        healthy = self.supervisor.healthy()
        self._healthy_shards.set(len(healthy))
        dispatched = False
        for index in self.ring.preference(key):
            if index not in healthy:
                continue
            handle = self.supervisor.handle(index)
            if not handle.breaker.allow():
                continue
            if self._send_request(handle, request, remaining):
                dispatched = True
                break
            # send failed: the breaker records the failure; the next
            # ring owner gets a chance within this same dispatch.
            handle.breaker.record_failure()
        if not dispatched:
            self._finish(request, ServeResult(
                status=RequestStatus.REJECTED,
                algorithm=request.algorithm,
                error="no healthy shard available",
            ))

    def _send_request(
        self,
        handle: ShardHandle,
        request: ServeRequest,
        remaining: float | None,
    ) -> bool:
        with self._rid_lock:
            rid = self._next_rid
            self._next_rid += 1
        request.rid = rid
        request.shard = handle.index
        request.dispatched = time.monotonic()
        if request.trace:
            request.trace.annotate(shard=handle.index)
            request.trace.event("shard.dispatch", shard=handle.index,
                                rid=rid, attempt=request.attempts)
        blob = shardwire.encode_request(
            rid,
            request.query,
            request.algorithm,
            priority=int(request.priority),
            deadline_s=remaining,
            catalog_version=self.catalog_version,
            trace=obs.serialize_context(request.trace),
        )
        fault = faultinject.check(faultinject.SHARD_WIRE)
        if fault is not None and fault.kind == "corrupt":
            plan = faultinject.active()
            if plan is not None:
                blob = faultinject.corrupt_payload(blob, plan.rng_for(fault))
                self._wire_corrupt.inc()
        # Track before sending: the shard could answer (or die) between
        # send and track, and an untracked answer would be dropped.
        handle.track(rid, request)
        if not handle.send(blob):
            handle.untrack(rid)
            request.shard = None
            return False
        self._dispatched.inc()
        self._shard_inflight.set(sum(
            h.inflight_count() for h in self.supervisor.handles
        ))
        return True

    # ------------------------------------------------------------------
    # Shard callbacks (supervisor reader / tick threads)
    # ------------------------------------------------------------------

    def _on_shard_message(
        self, handle: ShardHandle, rid: int, body: dict[str, Any]
    ) -> None:
        if body.get("_corrupt") is not None:
            # A frame died on the wire.  With a readable rid the named
            # request fails honestly; without one we can only count it —
            # the request itself is still covered by the deadline
            # backstop and the shard-death disposition.
            self._wire_corrupt.inc()
            request = handle.untrack(rid) if rid else None
            if request is not None:
                self._finish(request, ServeResult(
                    status=RequestStatus.FAILED,
                    algorithm=request.algorithm,
                    error=(
                        "corrupt frame on the shard wire: "
                        f"{body['_corrupt']}"
                    ),
                ))
            return
        if body["type"] != "result":
            return
        request = handle.untrack(rid)
        if request is None:
            return  # late answer for a request already disposed
        try:
            outcome = shardwire.result_from_body(body)
        except shardwire.ShardWireError as error:
            self._wire_corrupt.inc()
            self._finish(request, ServeResult(
                status=RequestStatus.FAILED,
                algorithm=request.algorithm,
                error=f"undecodable result from shard: {error}",
            ))
            return
        # The shard answered — whatever the verdict, the *process* is
        # alive and routable.
        handle.breaker.record_success()
        self._shard_inflight.set(sum(
            h.inflight_count() for h in self.supervisor.handles
        ))
        if request.trace:
            request.trace.annotate(shard_trace=outcome.trace_id)
        self._finish(request, outcome)

    def _on_shard_ready(self, handle: ShardHandle) -> None:
        self._healthy_shards.set(len(self.supervisor.healthy()))

    def _on_shard_failure(
        self,
        handle: ShardHandle,
        inflight: list[tuple[int, ServeRequest]],
        reason: str,
    ) -> None:
        """Honest disposition of a dead shard's in-flight requests."""
        self._shard_kills.inc()
        self._errors.labels(type="ShardFailure").inc()
        self._healthy_shards.set(len(self.supervisor.healthy()))
        now = time.monotonic()
        for _rid, request in inflight:
            request.attempts += 1
            request.shard = None
            obituary = f"shard {handle.index} died: {reason}"
            remaining = request.remaining(now)
            if self.scheduler.closed:
                self._finish(request, ServeResult(
                    status=RequestStatus.TIMED_OUT,
                    algorithm=request.algorithm,
                    error=f"{obituary} (during shutdown)",
                ))
            elif remaining is not None and remaining <= 0.05:
                # The deadline does not allow a retry: honest timeout.
                self._finish(request, ServeResult(
                    status=RequestStatus.TIMED_OUT,
                    algorithm=request.algorithm,
                    error=f"{obituary}; deadline does not allow a retry",
                ))
            elif request.attempts > self.max_retries:
                self._finish(request, ServeResult(
                    status=RequestStatus.FAILED,
                    algorithm=request.algorithm,
                    error=(
                        f"{obituary}; gave up after "
                        f"{request.attempts} attempts"
                    ),
                ))
            else:
                # Retry on a healthy shard: back through admission so
                # priority/EDF ordering still holds under failover.
                self._shard_retries.inc()
                if request.trace:
                    request.trace.event(
                        "shard.failover", from_shard=handle.index,
                        attempt=request.attempts, reason=reason,
                    )
                if not self.scheduler.offer(request):
                    self._finish(request, ServeResult(
                        status=RequestStatus.REJECTED,
                        algorithm=request.algorithm,
                        error=f"{obituary}; failover queue full",
                    ))
        self._shard_inflight.set(sum(
            h.inflight_count() for h in self.supervisor.handles
        ))

    # ------------------------------------------------------------------
    # Supervision loop (hub side)
    # ------------------------------------------------------------------

    def _supervise_loop(self) -> None:
        while not self._stop_loops.wait(self.supervisor_interval):
            try:
                self.supervisor.tick()
                self._respawn_accounting()
                self._deadline_backstop()
            except Exception:  # noqa: BLE001 - loop must survive
                logger.exception("supervision tick failed")

    def _respawn_accounting(self) -> None:
        total = self.supervisor.respawns_total
        recorded = self._shard_respawns.value
        if total > recorded:
            self._shard_respawns.inc(total - recorded)
        self._healthy_shards.set(len(self.supervisor.healthy()))

    def _deadline_backstop(self) -> None:
        """Force-resolve requests a live-but-silent shard sat on.

        Normal deadline handling is shard-side (the inner watchdog).
        This backstop only fires when a request is ``DEADLINE_GRACE``
        past its deadline — or ``request_timeout`` old without one —
        and the shard still holds it: the hub resolves ``TIMED_OUT``,
        tells the shard to cancel, and ignores any late answer.
        """
        now = time.monotonic()
        for handle in self.supervisor.handles:
            for rid, request in handle.inflight_snapshot():
                remaining = request.remaining(now)
                overdue = (
                    remaining is not None
                    and remaining < -DEADLINE_GRACE
                )
                if not overdue and request.dispatched is not None:
                    overdue = (
                        remaining is None
                        and now - request.dispatched > self.request_timeout
                    )
                if not overdue:
                    continue
                if handle.untrack(rid) is None:
                    continue  # a result beat us to it
                handle.send(shardwire.encode_control(
                    "cancel", rid=rid, reason="deadline expired",
                ))
                self._finish(request, ServeResult(
                    status=RequestStatus.TIMED_OUT,
                    algorithm=request.algorithm,
                    error="deadline expired on shard; hub backstop fired",
                ))

    # ------------------------------------------------------------------
    # Resolution (mirrors OptimizationServer semantics)
    # ------------------------------------------------------------------

    def _finish(self, request: ServeRequest, outcome: ServeResult) -> None:
        followers = (
            self.coalescer.complete(request.key)
            if request.leads and self.coalescer is not None else []
        )
        self._resolve(request, outcome)
        for follower in followers:
            self._resolve(follower, replace(
                outcome,
                coalesced=True,
                wait_seconds=0.0,
                service_seconds=0.0,
            ))

    def _resolve(self, request: ServeRequest, outcome: ServeResult) -> None:
        total = time.monotonic() - request.submitted
        outcome.total_seconds = total
        trace = request.trace
        if trace and outcome.trace_id is None:
            outcome.trace_id = trace.trace_id
        try:
            request.future.set_result(outcome)
        # repro: allow[NUM-004] idempotent resolve: reader, supervisor disposition and deadline backstop may race; exactly one counts
        except InvalidStateError:
            return
        if trace:
            if request.queue_span is not None:
                request.queue_span.finish()
            trace.annotate(status=outcome.status.value)
            trace.finish()
        self._total_hist.observe(total)
        counter = {
            RequestStatus.COMPLETED: self._completed,
            RequestStatus.REJECTED: self._rejected,
            RequestStatus.TIMED_OUT: self._timed_out,
            RequestStatus.FAILED: self._failed,
            RequestStatus.CANCELLED: self._cancelled,
        }[outcome.status]
        counter.inc()

    def _resolve_rejection(self, request: ServeRequest, reason: str) -> None:
        if request.leads and self.coalescer is not None:
            for follower in self.coalescer.withdraw(request.key):
                self._resolve(follower, ServeResult(
                    status=RequestStatus.REJECTED,
                    algorithm=follower.algorithm,
                    error=reason,
                ))
        self._resolve(request, ServeResult(
            status=RequestStatus.REJECTED,
            algorithm=request.algorithm,
            error=reason,
        ))

    # ------------------------------------------------------------------
    # Catalog + chaos surface
    # ------------------------------------------------------------------

    @property
    def catalog_version(self) -> int:
        with self._lock:
            return self._catalog_version

    def bump_catalog_version(self) -> int:
        """Invalidate cached plans everywhere: bump the hub's routing
        version (new ring keys) and broadcast to every shard's inner
        service."""
        with self._lock:
            self._catalog_version += 1
            version = self._catalog_version
        for handle in self.supervisor.handles:
            handle.send(shardwire.encode_control("bump"))
        return version

    def kill_shard(self, index: int) -> bool:
        """SIGKILL one shard process (chaos/benchmark surface).

        Returns whether a live process was killed.  Recovery is the
        supervisor's job: detection → disposition → respawn → rejoin.
        """
        handle = self.supervisor.handle(index)
        with handle._lock:  # repro: allow[LOCK-001] chaos API reads the live process under the handle lock
            process = handle._process
        if process is None or not process.is_alive():
            return False
        process.kill()
        return True

    # ------------------------------------------------------------------
    # Introspection (the /metrics, /healthz and /stats surfaces)
    # ------------------------------------------------------------------

    def shard_health(self) -> dict[str, Any]:
        """Per-shard liveness for ``/healthz``."""
        health = self.supervisor.health()
        health["queue_depth"] = len(self.scheduler)
        health["draining"] = self.scheduler.closed
        return health

    def shard_stats(self) -> dict[str, dict[str, Any]]:
        """Last heartbeat metrics snapshot per shard."""
        return {
            str(handle.index): handle.stats_snapshot()
            for handle in self.supervisor.handles
        }

    def stats(self) -> dict[str, Any]:
        return self.metrics_snapshot()

    def metrics_snapshot(self) -> dict[str, Any]:
        requests = self._requests_total.value
        coalesced = self._coalesced.value
        health = self.supervisor.health()
        return {
            "sharded": True,
            "requests": {
                "submitted": requests,
                "completed": self._completed.value,
                "rejected": self._rejected.value,
                "timed_out": self._timed_out.value,
                "failed": self._failed.value,
                "cancelled": self._cancelled.value,
                "dispatched": self._dispatched.value,
            },
            "coalesce": {
                "coalesced": coalesced,
                "rate": coalesced / requests if requests else 0.0,
                "in_flight": (
                    self.coalescer.in_flight()
                    if self.coalescer is not None else 0
                ),
            },
            "latency": {
                "wait": self._wait_hist.snapshot(),
                "total": self._total_hist.snapshot(),
            },
            "queue": {
                "depth": len(self.scheduler),
                "capacity": self.scheduler.capacity,
                "offered": self.scheduler.offered,
                "shed": self.scheduler.shed,
            },
            # The one-place supervision section (satellite: worker
            # replacement and shard respawns together; per-shard
            # workers_replaced ride in shards[i].resilience).
            "supervision": {
                "workers_replaced": sum(
                    int(
                        (s.get("resilience") or {}).get(
                            "workers_replaced", 0
                        ) or 0
                    )
                    for s in self.shard_stats().values()
                    if isinstance(s, dict)
                ),
                "shard_respawns": self.supervisor.respawns_total,
                "shard_kills": self.supervisor.kills,
                "shard_retries": self._shard_retries.value,
                "healthy_shards": health["healthy_shards"],
                "total_shards": health["total_shards"],
            },
            "wire": {"corrupt_frames": self._wire_corrupt.value},
            "shards": {
                index: {
                    **health["shards"][index],
                    "server": stats,
                }
                for index, stats in self.shard_stats().items()
            },
            "errors": self._errors.as_dict(),
        }

    def metrics_text(self) -> str:
        """Merged exposition: hub registry + every shard's registry
        labeled ``shard="N"`` (satellite: one scrape page)."""
        parts = [self.metrics.expose()]
        for handle in self.supervisor.handles:
            registry = handle.registry_snapshot()
            if registry:
                parts.append(render_labeled(
                    registry, {"shard": str(handle.index)}
                ))
        return "".join(parts)
