"""Admission-controlled priority + earliest-deadline-first request queue.

The scheduler models what the in-process ``OptimizerService`` never had
to: *traffic*.  Concurrent clients submit requests with priorities and
deadlines; the server must bound its queue (an optimizer that queues
unboundedly under overload answers every request late instead of some
requests on time), shed load explicitly with a ``REJECTED`` status, and
give late-admitted requests a *reduced* optimization budget so an
anytime MILP degrades gracefully instead of blowing through its
deadline.

Ordering is (priority, deadline, arrival): strict priority first —
interactive optimization outranks batch re-optimization — then earliest
deadline first within a priority class, then FIFO for requests without
deadlines.  Requests whose deadline has already passed when a worker
picks them up are never optimized (they count as ``TIMED_OUT``).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro import faultinject, obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cancel import CancelToken
    from repro.catalog.query import Query

__all__ = [
    "DeadlineScheduler",
    "Priority",
    "ServeRequest",
    "degraded_budget",
]


class Priority(enum.IntEnum):
    """Request priority classes; lower values are served first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass
class ServeRequest:
    """One admitted optimization request flowing through the server.

    ``deadline`` is absolute on the ``time.monotonic()`` clock (the
    submission surfaces accept relative seconds and convert).  ``future``
    resolves to a :class:`~repro.serve.server.ServeResult` exactly once,
    whatever the outcome — completion, rejection, timeout or failure.
    """

    query: "Query"
    algorithm: str
    priority: Priority = Priority.NORMAL
    deadline: float | None = None
    submitted: float = field(default_factory=time.monotonic)
    future: Future = field(default_factory=Future)
    #: Coalescing key; filled by the server (signature + algorithm).
    key: Any = None
    #: Whether this request leads an in-flight coalescing entry (only
    #: leaders complete/withdraw their key — a non-participant must
    #: never pop another leader's entry).
    leads: bool = False
    started: float | None = None
    #: Cooperative cancellation token; created by the server at submit
    #: time (carrying the deadline) and threaded through the service
    #: into the solver's pivot loop.  The watchdog cancels it when the
    #: deadline passes; :meth:`~repro.serve.server.ServeTicket.cancel`
    #: cancels it on the client's behalf.
    cancel_token: "CancelToken | None" = None
    #: Root tracing span (:mod:`repro.obs`), parked here by the server
    #: at submit time and re-entered by whichever worker thread picks
    #: the request up (explicit cross-thread handoff).  ``None`` when
    #: tracing is off or the request was not sampled.
    trace: "obs.Span | None" = None
    #: Open ``queue.wait`` child span: started on the submitting thread
    #: at admission, finished by the worker that dequeues the request.
    queue_span: "obs.Span | None" = None
    #: Sharded serving (:mod:`repro.serve.sharded`): wire request id
    #: assigned at dispatch, the shard currently holding the request,
    #: and how many times a shard death forced a failover re-dispatch.
    #: Unused (and zero-cost) in the single-process server.
    rid: int | None = None
    shard: int | None = None
    attempts: int = 0
    #: When the hub last dispatched this request onto a shard
    #: (``time.monotonic``); drives the hub-side deadline backstop.
    dispatched: float | None = None

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (``None`` without a deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def sort_key(self) -> tuple:
        deadline = (
            self.deadline if self.deadline is not None else float("inf")
        )
        return (int(self.priority), deadline, self.submitted)


class DeadlineScheduler:
    """Bounded priority/EDF queue with explicit load shedding.

    ``offer`` is non-blocking: a full queue means the caller sheds the
    request *now* (the server maps that to ``REJECTED``) instead of
    queueing into certain lateness.  ``take`` blocks workers until a
    request or shutdown arrives.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: list[tuple[tuple, int, ServeRequest]] = []
        self._tick = itertools.count()
        self._closed = False
        self.offered = 0
        self.shed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def offer(self, request: ServeRequest) -> bool:
        """Admit ``request``; ``False`` means the queue is full (shed)
        or the scheduler is closed."""
        fault = faultinject.check(faultinject.SCHEDULER_OFFER)
        with obs.span("scheduler.admit") as admit_span:
            with self._lock:
                self.offered += 1
                if (
                    self._closed
                    or len(self._heap) >= self.capacity
                    or (fault is not None and fault.kind == "overflow")
                ):
                    self.shed += 1
                    admit_span.annotate(
                        outcome="shed", depth=len(self._heap)
                    )
                    return False
                if request.trace:
                    # Started here on the submitting thread; the worker
                    # that dequeues the request finishes it — the
                    # cross-thread span the queue-wait measurement needs.
                    request.queue_span = request.trace.child(
                        "queue.wait", priority=request.priority.name.lower()
                    )
                heapq.heappush(
                    self._heap, (request.sort_key(), next(self._tick), request)
                )
                self._not_empty.notify()
                admit_span.annotate(
                    outcome="admitted", depth=len(self._heap)
                )
                return True

    def take(self, timeout: float | None = None) -> ServeRequest | None:
        """Highest-urgency request, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the scheduler was closed and
        drained — the worker loop uses that to re-check shutdown state.
        """
        with self._lock:
            if not self._heap:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def drain(self) -> list[ServeRequest]:
        """Remove and return every queued request (shutdown-reject)."""
        with self._lock:
            drained = [entry[2] for entry in self._heap]
            self._heap.clear()
            return drained

    def close(self) -> None:
        """Stop admitting; wake every blocked worker."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


def degraded_budget(
    request: ServeRequest,
    default_budget: float,
    *,
    safety: float = 0.9,
    min_budget: float = 0.05,
    now: float | None = None,
) -> float | None:
    """Optimization budget for ``request``, degraded to fit its deadline.

    * No deadline: ``None`` — the caller should use its configured
      default (and keep the plan-cache key stable).
    * Deadline with ``remaining * safety >= default_budget``: ``None``
      as well — the default budget already fits.
    * Deadline tighter than the default: the remaining time scaled by
      ``safety`` (headroom for plan extraction and queueing jitter), so
      an anytime algorithm returns its best-so-far answer *on time*.
    * Less than ``min_budget`` remaining: ``0.0`` — too late for any
      meaningful optimization; the caller should time the request out
      rather than burn a worker.
    """
    remaining = request.remaining(now)
    if remaining is None:
        return None
    usable = remaining * safety
    if usable < min_budget:
        return 0.0
    if usable >= default_budget:
        return None
    return usable
