"""Shard child process: one :class:`OptimizationServer` behind a pipe.

A shard is deliberately *not* a new serving implementation.  The child
process runs the existing single-process
:class:`~repro.serve.server.OptimizationServer` — worker pool, deadline
watchdog, resilience ladder, request coalescing, shard-local
:class:`~repro.milp.lp_backend.BasisExchangePool`, and store-backed
warm replay — and this module only adds the pipe protocol around it:

* decode checksum-framed requests (:mod:`repro.serve.shardwire`),
  submit them to the inner server, and ship each resolved
  :class:`~repro.serve.server.ServeResult` back under its request id;
* heartbeat on a fixed cadence with a sanitized metrics snapshot, so
  the hub-side supervisor can distinguish "busy" from "dead" and can
  merge per-shard metrics;
* honor ``drain``/``stop``/``cancel``/``bump`` control messages;
* host the process-level fault sites (``shard.kill`` = SIGKILL self,
  ``shard.heartbeat`` = stalled/skipped beats, ``shard.request`` =
  wedged or failed intake) that the chaos suite drives.

Everything the child needs crosses the ``exec``/``fork`` boundary in a
:class:`ShardConfig` of primitives — no live objects, so the config is
identical under both start methods and a respawned shard is built from
the same recipe as the original.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro import faultinject, obs
from repro.api import OptimizerSettings
from repro.store import open_store, shard_store_path

from repro.serve import shardwire
from repro.serve.scheduler import Priority
from repro.serve.server import (
    OptimizationServer,
    RequestStatus,
    ServeResult,
    ServeTicket,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

__all__ = [
    "ShardConfig",
    "shard_heartbeat_interval",
    "shard_heartbeat_timeout",
    "shard_main",
    "shard_max_retries",
    "shard_start_method",
    "shard_vnodes",
]

logger = logging.getLogger("repro.serve.shard")


# ----------------------------------------------------------------------
# Environment knobs (documented in docs/operations.md — rule REG-001)
# ----------------------------------------------------------------------

def shard_heartbeat_interval() -> float:
    """Seconds between shard heartbeats (``REPRO_SHARD_HEARTBEAT_INTERVAL``)."""
    raw = os.environ.get("REPRO_SHARD_HEARTBEAT_INTERVAL", "").strip()
    return float(raw) if raw else 0.25


def shard_heartbeat_timeout() -> float:
    """Heartbeat silence the supervisor treats as a dead shard
    (``REPRO_SHARD_HEARTBEAT_TIMEOUT``)."""
    raw = os.environ.get("REPRO_SHARD_HEARTBEAT_TIMEOUT", "").strip()
    return float(raw) if raw else 2.0


def shard_max_retries() -> int:
    """Failover retries per request after a shard death
    (``REPRO_SHARD_MAX_RETRIES``)."""
    raw = os.environ.get("REPRO_SHARD_MAX_RETRIES", "").strip()
    return int(raw) if raw else 2


def shard_vnodes() -> int:
    """Virtual nodes per shard on the hash ring (``REPRO_SHARD_VNODES``)."""
    raw = os.environ.get("REPRO_SHARD_VNODES", "").strip()
    return int(raw) if raw else 32


def shard_start_method() -> str:
    """Multiprocessing start method (``REPRO_SHARD_START_METHOD``).

    Defaults to ``fork`` where available: shard start-up (and therefore
    crash *recovery*) is hundreds of milliseconds cheaper than a spawn
    that re-imports numpy/scipy.  The fork-safety debt is paid by the
    ``os.register_at_fork`` hooks in :mod:`repro.faultinject` and
    :mod:`repro.obs` plus the primitives-only :class:`ShardConfig`.
    """
    raw = os.environ.get("REPRO_SHARD_START_METHOD", "").strip().lower()
    if raw:
        return raw
    import multiprocessing

    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard child needs, as picklable primitives.

    ``fault_specs`` seeds the child's own deterministic
    :class:`~repro.faultinject.FaultPlan` (seeded per shard index, so
    three shards under one chaos seed fire three distinct schedules).
    By default specs apply to the *first* incarnation only — the
    supervisor strips them on respawn so a kill-site cannot re-fire
    every five requests forever and livelock recovery; set
    ``faults_on_respawn`` to keep them across incarnations.
    """

    index: int
    workers: int = 2
    queue_capacity: int = 64
    cost_model: str = "hash"
    time_limit: float = 30.0
    seed: int = 0
    precision: str = "high"
    coalesce: bool = True
    store_path: str | None = None
    store_backend: str | None = None
    replay_budget: int | None = None
    flush_interval: float | None = None
    heartbeat_interval: float = 0.25
    budget_safety: float = 0.9
    min_budget: float = 0.05
    fault_seed: int = 0
    fault_specs: tuple[faultinject.FaultSpec, ...] = field(default=())
    faults_on_respawn: bool = False
    incarnation: int = 0


def _build_server(config: ShardConfig) -> OptimizationServer:
    store = None
    if config.store_path is not None:
        store = open_store(
            shard_store_path(config.store_path, config.index),
            backend=config.store_backend,
        )
    settings = OptimizerSettings(
        cost_model=config.cost_model,
        time_limit=config.time_limit,
        seed=config.seed,
        precision=config.precision,
    )
    return OptimizationServer(
        settings,
        workers=config.workers,
        queue_capacity=config.queue_capacity,
        coalesce=config.coalesce,
        store=store,
        replay_budget=config.replay_budget,
        flush_interval=config.flush_interval,
        budget_safety=config.budget_safety,
        min_budget=config.min_budget,
    )


# ----------------------------------------------------------------------
# Child entry point
# ----------------------------------------------------------------------

class _ShardRuntime:
    """The child's pipe loop state (one instance per shard process)."""

    def __init__(self, conn: "Connection", config: ShardConfig) -> None:
        self.conn = conn
        self.config = config
        self.server = _build_server(config)
        self._send_lock = threading.Lock()
        self._stop_beats = threading.Event()
        self._lock = threading.Lock()
        #: Live tickets by rid, for control-message cancellation.
        self._tickets: dict[int, ServeTicket] = {}

    # -- outbound ------------------------------------------------------

    def send(self, blob: bytes) -> bool:
        """Ship one frame to the hub; ``False`` when the pipe is gone.

        One lock around ``send_bytes``: result callbacks fire on worker
        threads concurrently with the heartbeat thread, and interleaved
        partial writes would corrupt *both* frames.
        """
        try:
            with self._send_lock:
                self.conn.send_bytes(blob)
            return True
        except (BrokenPipeError, OSError):
            return False

    def send_result(self, rid: int, outcome: ServeResult) -> None:
        fault = faultinject.check(faultinject.SHARD_WIRE)
        blob = shardwire.encode_result(rid, outcome)
        if fault is not None and fault.kind == "corrupt":
            plan = faultinject.active()
            if plan is not None:
                blob = faultinject.corrupt_payload(blob, plan.rng_for(fault))
        self.send(blob)

    # -- request intake ------------------------------------------------

    def handle_request(self, rid: int, body: dict[str, Any]) -> None:
        kill = faultinject.check(faultinject.SHARD_KILL)
        if kill is not None:
            # kill -9 semantics: no cleanup, no goodbye, earlier
            # requests die mid-solve.  The supervisor must recover.
            logger.warning("shard %d: injected SIGKILL", self.config.index)
            os.kill(os.getpid(), signal.SIGKILL)
        fault = faultinject.check(faultinject.SHARD_REQUEST)
        if fault is not None:
            if fault.kind == "slow":
                time.sleep(fault.delay)
            elif fault.kind in ("error", "exception"):
                self.send_result(rid, ServeResult(
                    status=RequestStatus.FAILED,
                    algorithm=str(body.get("algorithm", "?")),
                    error=f"injected shard fault: {fault.message}",
                ))
                return
        try:
            wire = shardwire.request_from_body(body)
        except shardwire.ShardWireError as error:
            self.send_result(rid, ServeResult(
                status=RequestStatus.FAILED,
                algorithm=str(body.get("algorithm", "?")),
                error=f"shard rejected request frame: {error}",
            ))
            return
        ticket = self.server.submit(
            wire.query,
            wire.algorithm,
            priority=Priority(wire.priority),
            deadline=wire.deadline_s,
            trace_context=wire.trace,
        )
        with self._lock:
            self._tickets[rid] = ticket
        ticket.future.add_done_callback(self._result_sender(rid))

    def _result_sender(self, rid: int):
        def _done(future) -> None:
            with self._lock:
                self._tickets.pop(rid, None)
            try:
                outcome = future.result()
            except Exception as error:  # noqa: BLE001 - never kill a worker
                outcome = ServeResult(
                    status=RequestStatus.FAILED,
                    algorithm="?",
                    error=f"{type(error).__name__}: {error}",
                )
            try:
                self.send_result(rid, outcome)
            except Exception:  # noqa: BLE001
                logger.exception("shard %d: result send failed",
                                 self.config.index)
        return _done

    # -- control -------------------------------------------------------

    def handle_control(self, body: dict[str, Any]) -> bool:
        """Apply a control message; ``False`` means exit the loop."""
        op = body.get("op")
        if op == "cancel":
            rid = int(body.get("rid", 0))
            with self._lock:
                ticket = self._tickets.get(rid)
            if ticket is not None:
                ticket.cancel(str(body.get("reason", "cancelled by hub")))
            return True
        if op == "bump":
            self.server.service.bump_catalog_version()
            return True
        if op == "drain":
            self._shutdown(drain=True)
            return False
        if op == "stop":
            self._shutdown(drain=False)
            return False
        logger.warning("shard %d: unknown control op %r",
                       self.config.index, op)
        return True

    def _shutdown(self, drain: bool) -> None:
        # stop() resolves every outstanding future, and each resolution
        # fires its _result_sender callback — so the hub receives an
        # honest disposition for everything in flight before the bye.
        self._stop_beats.set()
        self.server.stop(drain=drain)
        self.send(shardwire.encode_bye(self.config.index))

    # -- heartbeats ----------------------------------------------------

    def heartbeat_loop(self) -> None:
        seq = 0
        while not self._stop_beats.wait(self.config.heartbeat_interval):
            fault = faultinject.check(faultinject.SHARD_HEARTBEAT)
            if fault is not None:
                if fault.kind == "slow":
                    # A wedged-but-alive shard: silent past the
                    # supervisor's timeout, which must declare it dead.
                    time.sleep(fault.delay)
                    continue
                if fault.kind in ("error", "exception"):
                    continue  # skip this beat
            seq += 1
            stats = self.server.metrics_snapshot()
            # The raw registry rides along so the hub can merge it into
            # its /metrics page under a shard="N" label.
            stats["registry"] = self.server.metrics.snapshot()
            if not self.send(
                shardwire.encode_heartbeat(self.config.index, seq, stats)
            ):
                return

    # -- main loop -----------------------------------------------------

    def run(self) -> None:
        self.server.start()
        beats = threading.Thread(
            target=self.heartbeat_loop,
            name=f"shard-{self.config.index}-beats",
            daemon=True,
        )
        beats.start()
        self.send(shardwire.encode_ready(
            self.config.index,
            pid=os.getpid(),
            replayed_plans=int(
                self.server.metrics.gauge(
                    "store_replayed_plans", "plans preloaded").value
            ),
            replayed_bases=int(
                self.server.metrics.gauge(
                    "store_replayed_bases", "bases preloaded").value
            ),
        ))
        try:
            while True:
                try:
                    blob = self.conn.recv_bytes()
                except (EOFError, OSError):
                    # Hub gone (crashed or hard-stopped us): nothing to
                    # report results to — stop without draining.
                    self._stop_beats.set()
                    self.server.stop(drain=False)
                    return
                try:
                    rid, body = shardwire.decode_message(blob)
                except shardwire.ShardWireError as error:
                    rid = shardwire.peek_rid(blob)
                    # Honest per-request error, never a crash: a named
                    # request fails loudly; an unnameable frame is
                    # reported and dropped.
                    self.send_result(rid, ServeResult(
                        status=RequestStatus.FAILED,
                        algorithm="?",
                        error=f"shard received corrupt frame: {error}",
                    ))
                    continue
                if body["type"] == "request":
                    self.handle_request(rid, body)
                elif body["type"] == "control":
                    if not self.handle_control(body):
                        return
                else:
                    logger.warning(
                        "shard %d: unexpected %r message from hub",
                        self.config.index, body["type"],
                    )
        finally:
            self._stop_beats.set()


def shard_main(conn: "Connection", config: ShardConfig) -> None:
    """Child-process entry point (the ``multiprocessing.Process`` target).

    Installs the shard's own deterministic fault plan and tracer (the
    fork hooks cleared any inherited ones), builds the inner server —
    including the per-shard store's warm replay — and runs the pipe
    loop until the hub says stop or the pipe dies.
    """
    if config.fault_specs and (
        config.incarnation == 0 or config.faults_on_respawn
    ):
        faultinject.install(faultinject.FaultPlan(
            seed=config.fault_seed + config.index,
            specs=list(config.fault_specs),
        ))
    tracer = obs.tracer_from_env()
    if tracer is not None:
        obs.install(tracer)
    runtime = _ShardRuntime(conn, config)
    try:
        runtime.run()
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
