"""Retry, degradation ladder and circuit breaking for the serve layer.

The server's workers must answer *every* request honestly even when the
optimizer underneath misbehaves — transient numerical failures, a
poisoned warm-start basis, a backend that starts throwing under one
workload shape.  This module packages the three standard defenses:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  seeded jitter for *transient* failures (:class:`repro.exceptions.
  SolverError` and ERROR-status results).  Backoff sleeps go through the
  request's :class:`~repro.cancel.CancelToken`, so a cancelled request
  never sits out a retry delay.
* the **degradation ladder** in :class:`ResilientExecutor` — when the
  requested algorithm keeps failing, descend: warm configured solve →
  fresh *cold* revised simplex (no shared basis pool, no warm-start
  surface to be poisoned) → scipy/HiGHS backend → the constructive
  ``greedy`` heuristic.  Each descent is recorded in the result's
  ``diagnostics["degradation"]`` so a degraded answer is never mistaken
  for a first-class one, and statuses stay honest — a determinate
  ``INFEASIBLE``/``UNBOUNDED`` answer is *passed through*, never
  "retried away".
* :class:`CircuitBreaker` — per ``(algorithm, size-class)`` breakers
  (:class:`BreakerBoard`) that stop hammering a failing algorithm:
  after ``failure_threshold`` consecutive failures the breaker OPENs
  and the ladder skips that rung outright; after ``reset_timeout``
  seconds it goes HALF_OPEN and admits a limited number of probe
  requests, closing again only on a probe success.

Everything is deterministic under test: jitter derives from a seeded
RNG, breakers take an injectable clock.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.api.service import _accepts_cancel_token
from repro.cancel import CancelToken
from repro.exceptions import CancelledError, SolverError
from repro.milp.branch_and_bound import SolverOptions
from repro.milp.solution import SolveStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.result import PlanResult
    from repro.api.service import OptimizerService
    from repro.catalog.query import Query

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CancelToken",
    "CancelledError",
    "CircuitBreaker",
    "ExecutionOutcome",
    "ResilientExecutor",
    "RetryPolicy",
    "size_class",
]

#: Algorithms that run the MILP stack and therefore have the
#: cold-simplex / HiGHS ladder rungs available.
_MILP_FAMILY = ("milp", "milp-portfolio")

#: The ladder's last rung: always produces *some* plan in polynomial
#: time.  Only used when registered with the service's registry.
_LAST_RESORT = "greedy"


def size_class(query: "Query") -> str:
    """Coarse size bucket used to key circuit breakers.

    An algorithm that breaks on 20-table queries is usually fine on
    5-table ones — tripping one global breaker would deny service to
    traffic that was never failing.  Buckets follow the routing bands in
    :mod:`repro.api.adapters`: exhaustive-DP territory is ``small``,
    the MILP sweet spot ``medium``, everything beyond ``large``.
    """
    n = query.num_tables
    if n <= 8:
        return "small"
    if n <= 16:
        return "medium"
    return "large"


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``max_attempts`` counts *total* tries of the primary rung (1 = no
    retries).  The delay before retry ``k`` (1-based) is
    ``min(max_delay, base_delay * multiplier**(k-1))`` scaled by a
    jitter factor in ``[1, 1 + jitter]`` drawn from a ``seed``-derived
    RNG — deterministic in tests, decorrelated in production fleets.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def rng(self) -> random.Random:
        """Fresh jitter stream (one per executed request)."""
        return random.Random(self.seed)

    def delay(self, retry: int, rng: random.Random) -> float:
        """Backoff before 1-based retry number ``retry``."""
        if retry < 1:
            raise ValueError("retry is 1-based")
        base = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry - 1)
        )
        return base * (1.0 + self.jitter * rng.random())


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class BreakerState(enum.Enum):
    """Classic three-state breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    CLOSED admits everything and counts *consecutive* failures; at
    ``failure_threshold`` it OPENs and :meth:`allow` refuses until
    ``reset_timeout`` seconds pass.  Then HALF_OPEN admits up to
    ``half_open_probes`` in-flight probes: one probe success re-CLOSEs
    (the fault cleared), one probe failure re-OPENs and restarts the
    timeout.  Thread-safe; the clock is injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self.rejections = 0
        self.opens = 0

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether a request may be attempted right now.

        In HALF_OPEN each ``True`` claims one probe slot; the caller
        must report back via :meth:`record_success` /
        :meth:`record_failure` (which releases the slot).
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._probes < self.half_open_probes:
                    self._probes += 1
                    return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._state = BreakerState.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._trip()
                return
            if self._state is BreakerState.OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._failures = self.failure_threshold
        self.opens += 1

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes = 0

    def as_dict(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state.value,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "rejections": self.rejections,
            }


class BreakerBoard:
    """Lazy map of ``(algorithm, size-class)`` → :class:`CircuitBreaker`."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._kwargs = dict(
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            half_open_probes=half_open_probes,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}

    def get(self, algorithm: str, bucket: str) -> CircuitBreaker:
        key = (algorithm, bucket)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(**self._kwargs)
                self._breakers[key] = breaker
            return breaker

    def as_dict(self) -> dict:
        with self._lock:
            items = sorted(self._breakers.items())
        return {
            f"{algorithm}/{bucket}": breaker.as_dict()
            for (algorithm, bucket), breaker in items
        }


# ----------------------------------------------------------------------
# The degradation ladder
# ----------------------------------------------------------------------


@dataclass
class ExecutionOutcome:
    """What :meth:`ResilientExecutor.execute` concluded for one request.

    ``result`` is ``None`` only when every rung failed (``error`` then
    carries the last failure) or the request was cancelled before any
    rung produced an answer.  ``cancelled`` is the cancellation reason
    when the request's token fired mid-execution.  ``report`` is the
    degradation record (also attached to the result's diagnostics when
    anything beyond a clean first attempt happened).
    """

    result: "PlanResult | None" = None
    error: str | None = None
    cancelled: str | None = None
    retries: int = 0
    degraded: bool = False
    report: dict = field(default_factory=dict)


class ResilientExecutor:
    """Run one optimization through retries, breakers and the ladder.

    Wraps an :class:`~repro.api.service.OptimizerService`; the server's
    workers call :meth:`execute` instead of ``service.optimize``.
    Rungs, in order:

    1. ``warm`` — the service as configured (plan cache, shared basis
       pool, warm simplex).  Transient failures (``SolverError``) are
       retried per the :class:`RetryPolicy`; other exceptions descend
       immediately.
    2. ``cold-simplex`` — MILP-family algorithms only: a fresh
       optimizer forced onto ``backend="simplex"`` with *no* shared
       basis pool, so corrupted warm-start state cannot recur.
    3. ``highs`` — MILP-family only: the scipy/HiGHS backend, a wholly
       independent LP implementation.
    4. ``greedy`` — the constructive heuristic, when registered.

    The ``warm`` and ``greedy`` rungs are gated by circuit breakers
    keyed ``(algorithm, size_class(query))``; an OPEN breaker skips the
    rung without consuming its budget.  A result with a usable plan —
    or a *determinate* ``INFEASIBLE``/``UNBOUNDED`` verdict — ends the
    ladder; an empty ``NO_SOLUTION`` descends in search of any plan.
    """

    def __init__(
        self,
        service: "OptimizerService",
        retry: RetryPolicy | None = None,
        breakers: BreakerBoard | None = None,
        enable_ladder: bool = True,
    ) -> None:
        self.service = service
        self.retry = retry or RetryPolicy()
        self.breakers = breakers or BreakerBoard()
        self.enable_ladder = enable_ladder

    # -- public ---------------------------------------------------------

    def execute(
        self,
        query: "Query",
        algorithm: str,
        *,
        budget: float | None = None,
        use_cache: bool = True,
        cancel_token: CancelToken | None = None,
    ) -> ExecutionOutcome:
        bucket = size_class(query)
        outcome = ExecutionOutcome(report={
            "requested": algorithm,
            "size_class": bucket,
            "attempts": [],
        })
        attempts: list[dict] = outcome.report["attempts"]
        rng = self.retry.rng()
        last_error: str | None = None

        for rung, rung_algorithm in self._rungs(algorithm):
            if cancel_token is not None and cancel_token.cancelled:
                outcome.cancelled = cancel_token.reason
                break
            breaker = self._breaker_for(rung, rung_algorithm, bucket)
            if breaker is not None and not breaker.allow():
                attempts.append({
                    "rung": rung,
                    "algorithm": rung_algorithm,
                    "outcome": "breaker-open",
                })
                obs.event(
                    "rung.breaker_open",
                    rung=rung, algorithm=rung_algorithm, bucket=bucket,
                )
                continue
            tries = self.retry.max_attempts if rung == "warm" else 1
            done, last_error = self._run_rung(
                outcome, rung, rung_algorithm, breaker, tries, rng,
                query, budget, use_cache, cancel_token, last_error,
            )
            if done:
                break
        else:
            # Ladder exhausted.  An earlier rung may still have left an
            # honest empty (NO_SOLUTION) result — return that rather
            # than dressing it up as a failure.
            if outcome.result is None:
                outcome.error = last_error or (
                    f"no rung of the degradation ladder produced a plan "
                    f"for {algorithm!r}"
                )
        if outcome.cancelled is None and outcome.error is None:
            outcome.degraded = outcome.retries > 0 or any(
                a["rung"] != "warm" or a["outcome"] != "ok"
                for a in attempts
            )
            if outcome.degraded and outcome.result is not None:
                # Never mutate a possibly-cached result object shared
                # with other requests; attach the record to a copy.
                outcome.result = replace(
                    outcome.result,
                    diagnostics={
                        **outcome.result.diagnostics,
                        "degradation": outcome.report,
                    },
                )
        return outcome

    # -- internals ------------------------------------------------------

    def _rungs(self, algorithm: str) -> list[tuple[str, str]]:
        rungs = [("warm", algorithm)]
        if not self.enable_ladder:
            return rungs
        if algorithm in _MILP_FAMILY:
            rungs.append(("cold-simplex", algorithm))
            rungs.append(("highs", algorithm))
        if (
            algorithm != _LAST_RESORT
            and _LAST_RESORT in self.service.algorithms()
        ):
            rungs.append(("last-resort", _LAST_RESORT))
        return rungs

    def _breaker_for(
        self, rung: str, algorithm: str, bucket: str
    ) -> CircuitBreaker | None:
        # The one-shot backend-swap rungs are already last-ditch
        # attempts on fresh state; only the registry-level rungs (which
        # production traffic keeps hitting) carry breakers.
        if rung in ("warm", "last-resort"):
            return self.breakers.get(algorithm, bucket)
        return None

    def _run_rung(
        self,
        outcome: ExecutionOutcome,
        rung: str,
        algorithm: str,
        breaker: CircuitBreaker | None,
        tries: int,
        rng: random.Random,
        query: "Query",
        budget: float | None,
        use_cache: bool,
        cancel_token: CancelToken | None,
        last_error: str | None,
    ) -> tuple[bool, str | None]:
        """One ladder rung, with retries.  Returns ``(done, last_error)``;
        ``done`` means the ladder should stop (answer or cancellation)."""
        attempts: list[dict] = outcome.report["attempts"]
        for attempt in range(1, tries + 1):
            record = {
                "rung": rung,
                "algorithm": algorithm,
                "attempt": attempt,
            }
            attempts.append(record)
            with obs.span(
                "rung", rung=rung, algorithm=algorithm, attempt=attempt,
            ) as rung_span:
                if breaker is not None and rung_span:
                    rung_span.annotate(breaker=breaker.state.value)
                done = self._run_attempt(
                    outcome, record, rung, algorithm, breaker, attempt,
                    tries, rng, query, budget, use_cache, cancel_token,
                )
                last_error = record.pop("last_error", last_error)
                rung_span.annotate(outcome=record.get("outcome", "retry"))
            if done is not None:
                return done, last_error
        return False, last_error

    def _run_attempt(
        self,
        outcome: ExecutionOutcome,
        record: dict,
        rung: str,
        algorithm: str,
        breaker: CircuitBreaker | None,
        attempt: int,
        tries: int,
        rng: random.Random,
        query: "Query",
        budget: float | None,
        use_cache: bool,
        cancel_token: CancelToken | None,
    ) -> bool | None:
        """One try of one rung.  Returns ``True``/``False`` for "ladder
        done / descend" (mirroring :meth:`_run_rung`'s first return
        element) or ``None`` to retry this rung.  A new last-error
        string is passed back via ``record["last_error"]``."""
        try:
            result = self._attempt(
                rung, algorithm, query, budget, use_cache, cancel_token
            )
        except CancelledError as error:
            record["outcome"] = f"cancelled: {error.reason}"
            outcome.cancelled = error.reason
            return True
        except SolverError as error:
            record["last_error"] = f"{type(error).__name__}: {error}"
            record["outcome"] = f"transient: {error}"
            if breaker is not None:
                breaker.record_failure()
            if attempt < tries:
                outcome.retries += 1
                if self._backoff(attempt, rng, cancel_token):
                    outcome.cancelled = (
                        cancel_token.reason
                        if cancel_token is not None else "cancelled"
                    )
                    return True
            return None if attempt < tries else False
        except Exception as error:  # noqa: BLE001 - ladder boundary
            record["last_error"] = f"{type(error).__name__}: {error}"
            record["outcome"] = f"error: {error}"
            if breaker is not None:
                breaker.record_failure()
            return False
        if cancel_token is not None and cancel_token.cancelled:
            # The solve absorbed the cancellation and returned its
            # best-so-far (anytime semantics).  A usable plan is
            # still an answer; an empty result is a cancellation.
            outcome.cancelled = cancel_token.reason
            if result.has_plan:
                record["outcome"] = "ok"
                outcome.result = result
                outcome.cancelled = None
                if breaker is not None:
                    breaker.record_success()
            else:
                record["outcome"] = (
                    f"cancelled: {cancel_token.reason}"
                )
            return True
        if result.has_plan or result.status in (
            SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED
        ):
            record["outcome"] = "ok"
            outcome.result = result
            if breaker is not None:
                breaker.record_success()
            return True
        # Honest empty answer (NO_SOLUTION): not a solver fault —
        # the breaker stays untouched — but descend looking for a
        # rung that can produce *a* plan.
        record["last_error"] = (
            f"{algorithm!r} returned {result.status.value} "
            "without a plan"
        )
        record["outcome"] = f"empty: {result.status.value}"
        if outcome.result is None:
            outcome.result = result
        return False

    def _attempt(
        self,
        rung: str,
        algorithm: str,
        query: "Query",
        budget: float | None,
        use_cache: bool,
        cancel_token: CancelToken | None,
    ) -> "PlanResult":
        if rung in ("warm", "last-resort"):
            return self.service.optimize(
                query,
                algorithm,
                time_limit=budget,
                use_cache=use_cache,
                cancel_token=cancel_token,
            )
        backend = "simplex" if rung == "cold-simplex" else "scipy"
        optimizer = self._fresh_optimizer(algorithm, backend)
        if cancel_token is not None and _accepts_cancel_token(optimizer):
            return optimizer.optimize(
                query, time_limit=budget, cancel_token=cancel_token
            )
        return optimizer.optimize(query, time_limit=budget)

    def _fresh_optimizer(self, algorithm: str, backend: str):
        """A cold optimizer: forced backend, no shared warm-start pool."""
        settings = self.service.settings
        extra = dict(settings.extra)
        base = extra.get("solver_options")
        options = (
            replace(base) if base is not None
            else SolverOptions(time_limit=settings.time_limit)
        )
        options.backend = backend
        options.basis_pool = None
        extra["solver_options"] = options
        return self.service.registry.create(
            algorithm, replace(settings, extra=extra)
        )

    def _backoff(
        self,
        attempt: int,
        rng: random.Random,
        cancel_token: CancelToken | None,
    ) -> bool:
        """Sleep before the next retry; ``True`` means cancelled."""
        delay = self.retry.delay(attempt, rng)
        if delay <= 0:
            return cancel_token is not None and cancel_token.cancelled
        # The wait runs under its own span: the thread-local trace
        # context survives the blocking CancelToken.wait by
        # construction, and the span makes backoff time visible
        # instead of blending into the rung that follows.
        with obs.span(
            "retry.backoff", delay_ms=round(delay * 1000.0, 2)
        ) as backoff_span:
            if cancel_token is not None:
                cancelled = cancel_token.wait(delay)
                backoff_span.annotate(cancelled=cancelled)
                return cancelled
            time.sleep(delay)
            return False
