"""Checksum-framed wire format for the hub ↔ shard pipe.

Sharded serving (:mod:`repro.serve.shard`) moves requests and results
across a process boundary.  Pickling user data over that boundary is
off the table — a corrupt or adversarial frame must never execute code
or crash a shard — so every message reuses the repository's existing
serialization discipline:

* query and plan payloads travel as the :mod:`repro.catalog.serde`
  dict forms, and completed plans as the *exact*
  :mod:`repro.store.serde` plan-record bytes (base64 inside the JSON
  body), so a stored plan and a served plan are literally the same
  artifact;
* every frame carries the :mod:`repro.store.serde`-style header —
  4-byte magic, u16 schema version, u32 CRC32 of the body — prefixed
  with a u64 request id.  The rid sits *outside* the checksummed body
  on purpose: a receiver that fails the checksum can still (best
  effort) name the request it must fail honestly, instead of dropping
  it silently;
* bodies are canonical JSON (sorted keys, compact separators,
  ``allow_nan=False``), which makes encoding deterministic:
  ``encode(decode(frame)) == frame`` byte-for-byte — the property the
  round-trip suite pins.

Corruption handling mirrors the plan store: a bad checksum, wrong
magic, unknown schema version or malformed body raises
:class:`ShardWireError`, and the receiver turns that into an honest
per-request ``FAILED`` result — never a shard crash, never a guess.
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.catalog.serde import query_from_dict, query_to_dict
from repro.exceptions import ReproError
from repro.store import serde as store_serde

from repro.serve.server import RequestStatus, ServeResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.query import Query

__all__ = [
    "SCHEMA_VERSION",
    "ShardWireError",
    "WireRequest",
    "decode_message",
    "encode_bye",
    "encode_control",
    "encode_heartbeat",
    "encode_message",
    "encode_ready",
    "encode_request",
    "encode_result",
    "peek_rid",
    "request_from_body",
    "result_from_body",
    "sanitize",
]

#: Bump on any change to the framed body layout; receivers reject
#: frames carrying a different version rather than guessing.
SCHEMA_VERSION = 1

#: Shard-wire frame magic (distinct from the store's RPR/RBS magics so
#: a misrouted blob is rejected by name, not by checksum luck).
WIRE_MAGIC = b"RSW\x01"

#: Request id prefix (u64) + store-style frame header (magic 4s,
#: schema version u16, body crc32 u32).
_RID = struct.Struct("<Q")
_FRAME = struct.Struct("<4sHI")

#: Message types carried in the body's ``type`` field.
MESSAGE_TYPES = (
    "request", "result", "heartbeat", "ready", "control", "bye",
)


class ShardWireError(ReproError):
    """A shard-wire frame failed checksum, framing or body validation.

    Receivers catch this and fail the *named request* honestly (the rid
    prefix survives body corruption); they never crash or misparse.
    """


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_message(rid: int, body: dict[str, Any]) -> bytes:
    """Frame ``body`` as canonical JSON under request id ``rid``.

    ``rid`` is 0 for messages that are not request-scoped (heartbeats,
    ready, control, bye).
    """
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return (
        _RID.pack(rid)
        + _FRAME.pack(WIRE_MAGIC, SCHEMA_VERSION, zlib.crc32(payload))
        + payload
    )


def peek_rid(blob: bytes) -> int:
    """Best-effort request id of ``blob`` (0 when even the prefix is
    gone).  Never raises: this is the corruption path's last resort for
    naming the request it must fail."""
    if len(blob) < _RID.size:
        return 0
    return int(_RID.unpack_from(blob)[0])


def decode_message(blob: bytes) -> tuple[int, dict[str, Any]]:
    """``(rid, body)`` of a frame; :class:`ShardWireError` on any defect."""
    if len(blob) < _RID.size + _FRAME.size:
        raise ShardWireError(
            f"frame too short ({len(blob)} bytes) for rid + header"
        )
    rid = int(_RID.unpack_from(blob)[0])
    magic, version, crc = _FRAME.unpack_from(blob, _RID.size)
    if magic != WIRE_MAGIC:
        raise ShardWireError(f"bad magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != SCHEMA_VERSION:
        raise ShardWireError(
            f"unsupported schema version {version} "
            f"(this receiver speaks {SCHEMA_VERSION})"
        )
    payload = blob[_RID.size + _FRAME.size:]
    if zlib.crc32(payload) != crc:
        raise ShardWireError("checksum mismatch (frame corrupt)")
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ShardWireError(f"unparseable body: {error}") from error
    if not isinstance(body, dict) or "type" not in body:
        raise ShardWireError("body is not a typed message object")
    if body["type"] not in MESSAGE_TYPES:
        raise ShardWireError(f"unknown message type {body['type']!r}")
    return rid, body


# ----------------------------------------------------------------------
# Floats (JSON has no inf/nan literals; deadlines and budgets must
# survive the wire exactly)
# ----------------------------------------------------------------------

def _num(value: float | None) -> float | str | None:
    if value is None:
        return None
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _denum(value: Any) -> float | None:
    if value is None:
        return None
    return float(value)


def sanitize(value: Any, depth: int = 0) -> Any:
    """JSON-safe copy of ``value`` for stats payloads (heartbeats).

    Non-finite floats become strings, non-string keys and exotic
    objects become their ``str`` form — heartbeats are telemetry, not
    round-trip data, so lossy-but-honest is the right trade.
    """
    if depth > 8:
        return "..."
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return _num(value)
    if isinstance(value, dict):
        return {
            str(key): sanitize(item, depth + 1)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [sanitize(item, depth + 1) for item in value]
    return str(value)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WireRequest:
    """A request as decoded on the shard side of the pipe.

    ``deadline_s`` is *remaining* seconds at dispatch time — absolute
    monotonic deadlines are meaningless across processes, so the hub
    converts before sending and the shard re-anchors on its own clock.
    """

    query: "Query"
    algorithm: str
    priority: int = 1
    deadline_s: float | None = None
    catalog_version: int = 0
    #: Serialized :func:`repro.obs.serialize_context` dict, or ``None``
    #: when the hub's request was untraced/unsampled.
    trace: dict[str, str] | None = None


def encode_request(
    rid: int,
    query: "Query",
    algorithm: str,
    *,
    priority: int = 1,
    deadline_s: float | None = None,
    catalog_version: int = 0,
    trace: dict[str, str] | None = None,
) -> bytes:
    """Frame one optimization request for the hub → shard direction."""
    body = {
        "type": "request",
        "query": query_to_dict(query),
        "algorithm": str(algorithm),
        "priority": int(priority),
        "deadline_s": _num(deadline_s),
        "catalog_version": int(catalog_version),
        "trace": dict(trace) if trace else None,
    }
    return encode_message(rid, body)


def request_from_body(body: dict[str, Any]) -> WireRequest:
    """Validated :class:`WireRequest` from a decoded ``request`` body."""
    try:
        query = query_from_dict(body["query"])
        trace = body.get("trace")
        if trace is not None and not isinstance(trace, dict):
            raise ShardWireError("trace context is not a dict")
        return WireRequest(
            query=query,
            algorithm=str(body["algorithm"]),
            priority=int(body["priority"]),
            deadline_s=_denum(body["deadline_s"]),
            catalog_version=int(body["catalog_version"]),
            trace=trace,
        )
    except ShardWireError:
        raise
    except Exception as error:  # noqa: BLE001 - malformed body
        raise ShardWireError(
            f"malformed request body: {type(error).__name__}: {error}"
        ) from error


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

def encode_result(rid: int, outcome: ServeResult) -> bytes:
    """Frame one :class:`ServeResult` for the shard → hub direction.

    A completed plan rides as the exact :mod:`repro.store.serde`
    plan-record bytes (checksummed twice: once by the record frame,
    once by the wire frame), so diagnostics — degradation records,
    trace ids, dropped-key markers — survive verbatim.
    """
    record: str | None = None
    if outcome.result is not None:
        record = base64.b64encode(
            store_serde.encode_plan_record(outcome.result, {})
        ).decode("ascii")
    body = {
        "type": "result",
        "status": outcome.status.value,
        "algorithm": str(outcome.algorithm),
        "error": outcome.error,
        "coalesced": bool(outcome.coalesced),
        "degraded_budget": _num(outcome.degraded_budget),
        "wait_seconds": _num(outcome.wait_seconds),
        "service_seconds": _num(outcome.service_seconds),
        "total_seconds": _num(outcome.total_seconds),
        "trace_id": outcome.trace_id,
        "plan_record": record,
    }
    return encode_message(rid, body)


def result_from_body(body: dict[str, Any]) -> ServeResult:
    """Validated :class:`ServeResult` from a decoded ``result`` body."""
    try:
        status = RequestStatus(body["status"])
        record = body.get("plan_record")
        result = None
        if record is not None:
            try:
                blob = base64.b64decode(
                    record.encode("ascii"), validate=True
                )
            except (binascii.Error, UnicodeEncodeError, AttributeError) as e:
                raise ShardWireError(f"undecodable plan record: {e}") from e
            result, _ = store_serde.decode_plan_record(blob)
        error = body.get("error")
        return ServeResult(
            status=status,
            algorithm=str(body["algorithm"]),
            result=result,
            error=None if error is None else str(error),
            coalesced=bool(body.get("coalesced", False)),
            degraded_budget=_denum(body.get("degraded_budget")),
            wait_seconds=_denum(body.get("wait_seconds")) or 0.0,
            service_seconds=_denum(body.get("service_seconds")) or 0.0,
            total_seconds=_denum(body.get("total_seconds")) or 0.0,
            trace_id=body.get("trace_id"),
        )
    except ShardWireError:
        raise
    except store_serde.StoreCorruptionError as error:
        raise ShardWireError(f"corrupt plan record: {error}") from error
    except Exception as error:  # noqa: BLE001 - malformed body
        raise ShardWireError(
            f"malformed result body: {type(error).__name__}: {error}"
        ) from error


# ----------------------------------------------------------------------
# Lifecycle messages (all rid=0)
# ----------------------------------------------------------------------

def encode_heartbeat(
    shard: int, seq: int, stats: dict[str, Any] | None = None
) -> bytes:
    """Liveness beat with the shard's sanitized metrics snapshot."""
    return encode_message(0, {
        "type": "heartbeat",
        "shard": int(shard),
        "seq": int(seq),
        "stats": sanitize(stats or {}),
    })


def encode_ready(
    shard: int, *, pid: int, replayed_plans: int = 0, replayed_bases: int = 0
) -> bytes:
    """Shard start-up complete (warm replay done); safe to join the ring."""
    return encode_message(0, {
        "type": "ready",
        "shard": int(shard),
        "pid": int(pid),
        "replayed_plans": int(replayed_plans),
        "replayed_bases": int(replayed_bases),
    })


def encode_control(op: str, **extra: Any) -> bytes:
    """Hub → shard control message (``drain``/``stop``/``cancel``/``bump``)."""
    body: dict[str, Any] = {"type": "control", "op": str(op)}
    body.update(sanitize(extra))
    return encode_message(0, body)


def encode_bye(shard: int) -> bytes:
    """Shard's clean goodbye after a drain/stop completes."""
    return encode_message(0, {"type": "bye", "shard": int(shard)})
