"""Counter/gauge/histogram registry for the optimization server.

Deliberately tiny and stdlib-only: the server needs queue depth,
latency percentiles, coalesce/cache/warm ratios — not a metrics vendor.
The text exposition follows the Prometheus conventions loosely (``# HELP``
/ ``# TYPE`` headers, ``name{quantile="..."}`` samples) so the output of
``GET /metrics`` drops into existing scrape tooling, without promising
protocol compliance.

All types are thread-safe; workers record into them concurrently.
"""

from __future__ import annotations

import bisect
import threading
from typing import TypeVar

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "KNOWN_METRICS",
    "MetricsRegistry",
    "render_labeled",
]

#: Every metric name the serving layer may mint, with its type.
#:
#: This is the closed registry dashboards and the chaos harness key on:
#: ``repro analyze`` (rule REG-002) fails if code in ``repro.serve``
#: creates a metric whose name is missing here, so a typo becomes a CI
#: failure instead of a fresh, never-watched series.  Add a row when
#: adding a metric.
KNOWN_METRICS: dict[str, str] = {
    # admission / outcome counters (server.py)
    "serve_requests_total": "counter",
    "serve_completed_total": "counter",
    "serve_rejected_total": "counter",
    "serve_timed_out_total": "counter",
    "serve_failed_total": "counter",
    "serve_cancelled_total": "counter",
    "serve_coalesced_total": "counter",
    "serve_optimizations_total": "counter",
    "serve_degraded_total": "counter",
    "serve_retries_total": "counter",
    "serve_ladder_descents_total": "counter",
    "serve_workers_replaced_total": "counter",
    # tracing (server.py; see repro.obs)
    "serve_slow_requests_total": "counter",
    # error breakdown by kind (server.py, http.py)
    "errors_total": "counter_family",
    # load gauges
    "serve_queue_depth": "gauge",
    "serve_busy_workers": "gauge",
    # latency histograms
    "serve_wait_seconds": "histogram",
    "serve_service_seconds": "histogram",
    "serve_total_seconds": "histogram",
    # persistent-store integration (server.py)
    "store_hits_total": "counter",
    "store_writes_total": "counter",
    "store_replay_seconds": "gauge",
    "store_replayed_plans": "gauge",
    "store_replayed_bases": "gauge",
    # sharded serving (sharded.py / supervisor.py)
    "serve_dispatched_total": "counter",
    "serve_shard_kills_total": "counter",
    "serve_shard_respawns_total": "counter",
    "serve_shard_retries_total": "counter",
    "serve_wire_corrupt_total": "counter",
    "serve_healthy_shards": "gauge",
    "serve_shard_inflight": "gauge",
}

#: Default histogram buckets: request latencies in seconds, log-spaced
#: from 1 ms to 60 s (the anytime MILP budget ceiling in the paper).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def expose(self) -> str:
        return (
            f"# HELP {self.name} {self.help}\n"
            f"# TYPE {self.name} counter\n"
            f"{self.name} {self.value}\n"
        )


class CounterFamily:
    """A labelled counter family, e.g. ``errors_total{type="..."}``.

    ``labels(type="solver")`` returns the child :class:`Counter` for
    that label set, creating it on first use.  Children share one
    ``# HELP`` / ``# TYPE`` header in the exposition and each emits a
    ``name{k="v"} value`` sample line.  Label values are escaped per
    the Prometheus text format (backslash, quote, newline).
    """

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._children: dict[tuple[tuple[str, str], ...], Counter] = {}

    def labels(self, **labels: str) -> Counter:
        if not labels:
            raise ValueError("a CounterFamily child needs at least one label")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Counter(self.name, self.help)
                self._children[key] = child
            return child

    @staticmethod
    def _escape(value: str) -> str:
        return (
            value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )

    @property
    def value(self) -> int:
        """Sum over every child (the unlabelled total)."""
        with self._lock:
            children = list(self._children.values())
        return sum(child.value for child in children)

    def as_dict(self) -> dict[str, int]:
        """``{"k=v,..." : count}`` snapshot, children in sorted order."""
        with self._lock:
            children = sorted(self._children.items())
        return {
            ",".join(f"{k}={v}" for k, v in key): child.value
            for key, child in children
        }

    def expose(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
        ]
        with self._lock:
            children = sorted(self._children.items())
        for key, child in children:
            rendered = ",".join(
                f'{k}="{self._escape(v)}"' for k, v in key
            )
            lines.append(f"{self.name}{{{rendered}}} {child.value}")
        return "\n".join(lines) + "\n"


class Gauge:
    """A value that goes up and down (queue depth, in-flight workers)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def expose(self) -> str:
        return (
            f"# HELP {self.name} {self.help}\n"
            f"# TYPE {self.name} gauge\n"
            f"{self.name} {self.value}\n"
        )


class Histogram:
    """Bucketed distribution with interpolated percentiles.

    Observations land in fixed buckets (O(log buckets) per observe, O(1)
    memory regardless of traffic), so percentiles are estimates: linear
    interpolation inside the winning bucket, exact at the recorded
    min/max.  That is the right trade for a serving loop — a p99 read
    must not require storing a million samples.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty tuple")
        self.name = name
        self.help = help_text
        self._bounds = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self._bounds) + 1)  # +inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (``p`` in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        with self._lock:
            if not self._count:
                return 0.0
            rank = p / 100.0 * self._count
            seen = 0
            for index, count in enumerate(self._counts):
                if not count:
                    continue
                if seen + count >= rank:
                    lower = (
                        self._bounds[index - 1] if index > 0 else
                        min(self._min, self._bounds[0])
                    )
                    upper = (
                        self._bounds[index]
                        if index < len(self._bounds)
                        else self._max
                    )
                    lower = max(lower, self._min)
                    upper = min(upper, self._max)
                    if upper <= lower:
                        return lower
                    fraction = (rank - seen) / count
                    return lower + fraction * (upper - lower)
                seen += count
            return self._max

    def expose(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        with self._lock:
            cumulative = 0
            for bound, count in zip(self._bounds, self._counts):
                cumulative += count
                lines.append(
                    f'{self.name}_bucket{{le="{bound}"}} {cumulative}'
                )
            cumulative += self._counts[-1]
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{self.name}_sum {self._sum}")
            lines.append(f"{self.name}_count {self._count}")
        for quantile in (50, 95, 99):
            lines.append(
                f'{self.name}{{quantile="0.{quantile}"}} '
                f"{self.percentile(quantile)}"
            )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, float]:
        """JSON-friendly summary (used by ``BENCH_serve.json``)."""
        with self._lock:
            count, total = self._count, self._sum
            low, high = self._min, self._max
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": low if count else 0.0,
            "max": high if count else 0.0,
        }


#: Anything the registry can hold.
Metric = Counter | CounterFamily | Gauge | Histogram

_M = TypeVar("_M", Counter, CounterFamily, Gauge)


class MetricsRegistry:
    """Named metric store with one text exposition for ``GET /metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, help_text, Counter)

    def counter_family(self, name: str, help_text: str = "") -> CounterFamily:
        return self._get_or_create(name, help_text, CounterFamily)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, help_text, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help_text, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def _get_or_create(self, name: str, help_text: str, cls: type[_M]) -> _M:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text)
                self._metrics[name] = metric
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def get(self, name: str) -> Metric | None:
        """Registered metric by name (``None`` when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def expose(self) -> str:
        """Full text exposition, metrics in registration order."""
        with self._lock:
            metrics = list(self._metrics.values())
        return "".join(metric.expose() for metric in metrics)

    def snapshot(self) -> dict[str, object]:
        """JSON-friendly dump of every metric's current value."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, object] = {}
        for name, metric in metrics.items():
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            elif isinstance(metric, CounterFamily):
                out[name] = metric.as_dict()
            else:
                out[name] = metric.value
        return out


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_labeled(
    snapshot: dict[str, object], labels: dict[str, str]
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text samples
    with ``labels`` attached to every sample.

    This is how the sharded front end merges per-shard registries into
    one ``GET /metrics`` page: each shard ships its registry snapshot
    (plain JSON — metric objects do not cross the process boundary) in
    its heartbeats, and the hub renders each under ``shard="N"``.
    Histogram snapshots emit their summary stats as suffixed samples
    (``_count``/``_sum``/``_p50``/...); counter-family dicts (keys of
    ``k=v`` form) merge their labels with the supplied ones.  Values
    that arrived sanitized into strings (``"nan"``/``"inf"``) are
    skipped — a scrape page must stay numeric.
    """
    rendered_labels = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    lines: list[str] = []

    def emit(name: str, extra: str | None, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        label_str = (
            f"{rendered_labels},{extra}" if extra else rendered_labels
        )
        lines.append(f"{name}{{{label_str}}} {value}")

    for name, value in sorted(snapshot.items()):
        if isinstance(value, dict):
            if value and all("=" in str(key) for key in value):
                # Counter family: per-child label sets ride in the key.
                for key, count in sorted(value.items()):
                    extra = ",".join(
                        f'{part.split("=", 1)[0]}='
                        f'"{_escape_label(part.split("=", 1)[1])}"'
                        for part in str(key).split(",")
                        if "=" in part
                    )
                    emit(name, extra, count)
            else:
                # Histogram snapshot: summary stats as suffixed samples.
                for stat in ("count", "sum", "mean", "p50", "p95", "p99"):
                    if stat in value:
                        emit(f"{name}_{stat}", None, value[stat])
        else:
            emit(name, None, value)
    return "\n".join(lines) + "\n" if lines else ""
