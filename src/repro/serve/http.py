"""Stdlib-only JSON-over-HTTP front end for the optimization server.

Three endpoints, no framework:

* ``POST /optimize`` — body ``{"query": <catalog.serde query dict>,
  "algorithm": "auto", "priority": "normal", "deadline_ms": 500}``;
  responds with the plan (``catalog.serde`` wire format), objective,
  bound, and serving-side accounting.  Admission-control outcomes map
  onto HTTP status codes: ``REJECTED`` → 503 (shed, retry elsewhere /
  later), ``TIMED_OUT`` → 504, ``FAILED`` → 500.
* ``GET /metrics`` — Prometheus-style text exposition.
* ``GET /healthz`` — liveness plus queue depth, for load balancers.
* ``GET /debug/traces`` — the installed :mod:`repro.obs` tracer's ring
  buffer as Chrome trace-event JSON (drop into ``ui.perfetto.dev``);
  ``?format=jsonl`` returns one trace per line instead.  404 when no
  tracer is installed.

Every ``POST /optimize`` request is access-logged on the
``repro.serve.http`` logger: one structured line with the trace id (or
``-`` when untraced), disposition, priority, queue-wait and total
milliseconds.

``ThreadingHTTPServer`` gives one thread per connection; actual
optimization concurrency stays governed by the
:class:`~repro.serve.server.OptimizationServer` worker pool — a
connection thread only parses, submits and blocks on the ticket.
"""

from __future__ import annotations

import json
import logging
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.catalog.serde import plan_to_dict, query_from_dict

from repro.serve.server import RequestStatus

__all__ = ["OptimizationHTTPServer", "make_http_server"]

logger = logging.getLogger("repro.serve.http")

#: HTTP status per request disposition.  ``CANCELLED`` uses nginx's 499
#: convention (client closed/abandoned the request).
_STATUS_CODES = {
    RequestStatus.COMPLETED: 200,
    RequestStatus.REJECTED: 503,
    RequestStatus.TIMED_OUT: 504,
    RequestStatus.FAILED: 500,
    RequestStatus.CANCELLED: 499,
}

#: Hard ceiling on how long one connection blocks on a ticket
#: (requests with deadlines resolve much sooner).
_RESULT_TIMEOUT = 300.0


def _parse_priority(value):
    """Validate the wire priority (client errors must be 400, not 500)."""
    from repro.serve.server import _priority

    return _priority(value)


def _parse_deadline(deadline_ms) -> float | None:
    """Validate ``deadline_ms`` (positive finite number) into seconds.

    ``json.loads`` happily produces ``NaN``/``Infinity``, either of
    which would sail through a ``<= 0`` check and poison the EDF heap
    and the solver's time-limit comparisons downstream.
    """
    if deadline_ms is None:
        return None
    deadline = float(deadline_ms) / 1000.0
    if not (math.isfinite(deadline) and deadline > 0):
        raise ValueError("deadline_ms must be a positive finite number")
    return deadline


class _Handler(BaseHTTPRequestHandler):
    server: "OptimizationHTTPServer"

    # Silence per-request stderr logging; the metrics registry is the
    # observable surface.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _count_error(self, error_type: str) -> None:
        self.server.optimizer.metrics.counter_family(
            "errors_total", "errors by exception type"
        ).labels(type=error_type).inc()

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        backend = self.server.optimizer
        parts = urlsplit(self.path)
        path = parts.path
        if path == "/metrics":
            self._send_text(200, backend.metrics_text())
        elif path == "/healthz":
            self._send_healthz(backend)
        elif path == "/stats":
            # Both server types expose stats(); metrics_snapshot() kept
            # as the fallback for pre-stats() backends in tests.
            stats = getattr(backend, "stats", backend.metrics_snapshot)
            self._send_json(200, stats())
        elif path == "/debug/traces":
            self._send_traces(parse_qs(parts.query))
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def _send_healthz(self, backend) -> None:
        """Liveness for load balancers.

        Single-process backend: ``ok``/``draining`` plus queue depth.
        Sharded backend (duck-typed on ``shard_health``): per-shard
        liveness rows; **503 only when no healthy shard remains** — a
        degraded-but-serving ring must keep receiving traffic, or one
        shard crash would take the whole tier out of rotation.
        """
        shard_health = getattr(backend, "shard_health", None)
        if shard_health is None:
            self._send_json(200, {
                "status": "ok" if not backend.scheduler.closed
                else "draining",
                "queue_depth": len(backend.scheduler),
                "queue_capacity": backend.scheduler.capacity,
            })
            return
        health = shard_health()
        healthy = int(health.get("healthy_shards", 0))
        if health.get("draining"):
            status = "draining"
        elif healthy == 0:
            status = "unavailable"
        elif healthy < int(health.get("total_shards", 0)):
            status = "degraded"
        else:
            status = "ok"
        self._send_json(200 if healthy > 0 else 503, {
            "status": status,
            **health,
        })

    def _send_traces(self, params: dict) -> None:
        """Dump the tracer's ring buffer (``GET /debug/traces``)."""
        from repro.obs import export as obs_export

        tracer = obs.active()
        if tracer is None:
            self._send_json(404, {
                "error": "tracing disabled; install a tracer "
                "(REPRO_TRACE=all|head|slow) and retry"
            })
            return
        traces = tracer.traces()
        fmt = (params.get("format") or ["chrome"])[0].strip().lower()
        if fmt == "jsonl":
            self._send_text(200, obs_export.render_jsonl(traces))
        elif fmt == "chrome":
            body = obs_export.render_chrome(traces).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(400, {
                "error": f"unknown format {fmt!r}; use chrome or jsonl"
            })

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/optimize":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            query = query_from_dict(payload["query"])
            algorithm = payload.get("algorithm", "auto")
            priority = _parse_priority(payload.get("priority", "normal"))
            deadline = _parse_deadline(payload.get("deadline_ms"))
        except Exception as error:  # noqa: BLE001 - wire validation
            logger.info(
                "rejected malformed /optimize request: %s: %s",
                type(error).__name__, error,
            )
            self._count_error(type(error).__name__)
            self._send_json(400, {
                "error": f"bad request: {type(error).__name__}: {error}"
            })
            return
        try:
            ticket = self.server.optimizer.submit(
                query, algorithm, priority=priority, deadline=deadline
            )
            outcome = ticket.result(timeout=_RESULT_TIMEOUT)
        except Exception as error:  # noqa: BLE001 - serve must answer
            # submit() validates its inputs and every ticket resolves;
            # reaching this means a serving-stack bug or a result()
            # timeout — log the traceback, don't just 500 silently.
            logger.exception("error serving /optimize request")
            self._count_error(type(error).__name__)
            self._send_json(500, {
                "error": f"{type(error).__name__}: {error}"
            })
            return
        body: dict = {
            "status": outcome.status.value,
            "algorithm": outcome.algorithm,
            "coalesced": outcome.coalesced,
            "wait_ms": round(outcome.wait_seconds * 1000.0, 3),
            "service_ms": round(outcome.service_seconds * 1000.0, 3),
            "total_ms": round(outcome.total_seconds * 1000.0, 3),
        }
        if outcome.trace_id is not None:
            body["trace_id"] = outcome.trace_id
        if outcome.error is not None:
            body["error"] = outcome.error
        if outcome.degraded_budget is not None:
            body["degraded_budget_s"] = outcome.degraded_budget
        result = outcome.result
        if result is not None:
            body.update(
                solve_status=result.status.value,
                objective=result.objective,
                best_bound=result.best_bound,
                true_cost=result.true_cost,
                solve_time_s=result.solve_time,
                plan=(
                    plan_to_dict(result.plan)
                    if result.plan is not None else None
                ),
            )
        code = _STATUS_CODES[outcome.status]
        # Structured per-request access log: grep-able key=value pairs,
        # one line per request, correlated with traces via trace_id.
        logger.info(
            "access path=/optimize status=%s code=%d priority=%s "
            "trace_id=%s wait_ms=%.1f total_ms=%.1f",
            outcome.status.value, code, priority.name.lower(),
            outcome.trace_id or "-",
            outcome.wait_seconds * 1000.0,
            outcome.total_seconds * 1000.0,
        )
        self._send_json(code, body)


class OptimizationHTTPServer(ThreadingHTTPServer):
    """HTTP front holding a reference to its optimization backend.

    The backend is duck-typed: either the single-process
    :class:`OptimizationServer` or the multi-process
    :class:`~repro.serve.sharded.ShardedOptimizationServer` — both
    expose ``submit``/``stats``/``metrics_text``/``scheduler``, and the
    sharded one additionally ``shard_health`` (which switches
    ``/healthz`` to per-shard reporting).
    """

    daemon_threads = True

    def __init__(self, address, optimizer) -> None:
        super().__init__(address, _Handler)
        self.optimizer = optimizer


def make_http_server(
    optimizer,
    host: str = "127.0.0.1",
    port: int = 8080,
) -> OptimizationHTTPServer:
    """Bind an HTTP front end to ``optimizer`` (``port=0`` picks one).

    The caller drives ``serve_forever()``/``shutdown()``; the
    optimization workers are started here so the first request does not
    pay the spawn.
    """
    optimizer.start()
    return OptimizationHTTPServer((host, port), optimizer)
