"""Consistent-hash routing ring for sharded serving.

Routing keeps ``(catalog_version, query_signature)`` sticky to one
shard so the shard-local plan cache and
:class:`~repro.milp.lp_backend.BasisExchangePool` stay hot: the same
query always lands where its plan and warm bases already live.

A plain ``hash(key) % shards`` would remap nearly every key whenever a
shard dies or rejoins, dumping every shard's cache at once.  The
classic consistent-hashing construction (Karger et al.) bounds the
blast radius instead: each shard owns ``vnodes`` pseudo-random points
on a ring, a key routes to the first point at or after its own hash,
and when a shard is unavailable the walk simply continues to the next
point owned by a *healthy* shard.  Killing one shard of N therefore
remaps only that shard's ~1/N of the keyspace — and maps it *back*
automatically when the supervisor respawns the shard, because the ring
itself never changes, only the healthy set does.

Hashes come from SHA-256, not ``hash()``: routing must be identical
across processes and runs (``PYTHONHASHSEED`` randomizes ``hash``),
because the benchmark and chaos suites assert stable placement.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Collection, Iterator

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """64-bit ring position of ``key`` (stable across processes)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable ring of ``shards`` members with virtual nodes.

    Immutability is deliberate: membership *churn* (a dead shard) is a
    health predicate evaluated at lookup time, not a ring rebuild — so
    a respawned shard reclaims exactly its old keys.
    """

    def __init__(self, shards: int, vnodes: int = 32) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards = shards
        self.vnodes = vnodes
        points = sorted(
            (_point(f"shard{shard}#vnode{vnode}"), shard)
            for shard in range(shards)
            for vnode in range(vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def preference(self, key: str) -> Iterator[int]:
        """Shard indexes in ring-walk order from ``key``'s position.

        The first yielded shard is the key's home; each further one is
        the next-closest distinct owner — the failover order.  Every
        shard appears exactly once.
        """
        start = bisect.bisect_left(self._hashes, _point(key))
        seen: set[int] = set()
        total = len(self._owners)
        for offset in range(total):
            owner = self._owners[(start + offset) % total]
            if owner not in seen:
                seen.add(owner)
                yield owner

    def route(self, key: str, healthy: Collection[int]) -> int | None:
        """The first healthy shard on the walk from ``key``'s position,
        or ``None`` when no healthy shard exists."""
        for shard in self.preference(key):
            if shard in healthy:
                return shard
        return None

    def distribution(self, keys: Collection[str]) -> dict[int, int]:
        """Home-shard histogram of ``keys`` (balance diagnostics)."""
        counts = dict.fromkeys(range(self.shards), 0)
        for key in keys:
            counts[next(self.preference(key))] += 1
        return counts
