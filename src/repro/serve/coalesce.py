"""In-flight request coalescing (single-flight) for identical queries.

Duplicate traffic is the norm on a query surface: dashboards refresh the
same report, retry storms re-send the query that just timed out, N
microservice replicas warm up with the same prepared statements.  The
plan cache already collapses *sequential* duplicates; this module
collapses *concurrent* ones — N in-flight requests for the same
``(catalog version, algorithm, query signature)`` become one
optimization and N resolved futures.

The composition with the cache is deliberate: the leader's optimization
populates the plan cache through ``OptimizerService.optimize``, so by
the time followers from a *later* burst arrive they hit the cache
instead of the coalescer.  Coalescing covers exactly the window the
cache cannot: between the first miss and its store.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

from repro.serve.scheduler import ServeRequest

__all__ = ["RequestCoalescer"]


class _InFlight:
    """One leader plus the followers awaiting its outcome."""

    __slots__ = ("leader", "followers")

    def __init__(self, leader: ServeRequest) -> None:
        self.leader = leader
        self.followers: list[ServeRequest] = []


class RequestCoalescer:
    """Tracks in-flight optimization keys and attaches followers.

    Lifecycle: the server calls :meth:`lead_or_follow` at admission.
    The first request for a key becomes the *leader* and is enqueued
    normally; subsequent requests for the same key are recorded as
    *followers* and never enter the scheduler at all — they consume no
    queue capacity and no worker.  When the leader's outcome is known
    the server calls :meth:`complete`, which hands back the followers
    so their futures can be resolved with the shared result.

    A leader that never runs (shed on a full queue, shutdown) must be
    withdrawn with :meth:`complete` too, so followers fail with it
    rather than hang.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight: dict[Hashable, _InFlight] = {}
        self.coalesced = 0

    def lead_or_follow(
        self, key: Hashable, request: ServeRequest
    ) -> bool:
        """Register ``request`` under ``key``; ``True`` if it leads.

        Traced followers are linked to their leader: the follower's
        root span records ``coalesced_into`` (the leader's trace id)
        and the leader's root records a ``coalesce.follower`` event, so
        either trace leads to the other in the trace viewer.
        """
        with self._lock:
            entry = self._in_flight.get(key)
            if entry is None:
                self._in_flight[key] = _InFlight(request)
                return True
            entry.followers.append(request)
            self.coalesced += 1
            leader_trace = entry.leader.trace
            if request.trace:
                request.trace.annotate(
                    coalesced_into=(
                        leader_trace.trace_id if leader_trace else None
                    )
                )
            if leader_trace:
                leader_trace.event(
                    "coalesce.follower",
                    trace_id=(
                        request.trace.trace_id if request.trace else None
                    ),
                )
            return False

    def withdraw(self, key: Hashable) -> list[ServeRequest]:
        """Remove ``key`` without an outcome; returns orphaned followers.

        Used when the leader was shed before running: callers resolve
        the followers the same way they resolve the leader (followers
        coalesced onto a rejected leader are rejected with it).
        """
        return self.complete(key)

    def complete(self, key: Hashable) -> list[ServeRequest]:
        """Close out ``key``; returns the followers to resolve."""
        with self._lock:
            entry = self._in_flight.pop(key, None)
            return entry.followers if entry is not None else []

    def in_flight(self) -> int:
        """Number of distinct keys currently in flight."""
        with self._lock:
            return len(self._in_flight)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "coalesced": self.coalesced,
                "in_flight": len(self._in_flight),
            }
