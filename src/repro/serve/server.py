"""The long-lived optimization server: workers over a deadline queue.

:class:`OptimizationServer` is the deployable front of the stack,
layered strictly on :class:`repro.api.OptimizerService` (no new
per-algorithm code paths):

* admission goes through a :class:`~repro.serve.scheduler.DeadlineScheduler`
  — bounded queue, strict-priority + earliest-deadline ordering,
  explicit ``REJECTED`` shedding under overload;
* duplicate in-flight queries collapse through a
  :class:`~repro.serve.coalesce.RequestCoalescer` (N identical requests
  → one optimization, N futures), composing with the service's plan
  cache, which covers sequential duplicates;
* a shared :class:`~repro.milp.lp_backend.BasisExchangePool` is wired
  into every MILP solve via ``SolverOptions.basis_pool``, so
  equal-shaped formulations from *different* queries warm-start each
  other's root LPs across requests (the keyed-fetch pool);
* per-request deadlines are converted into optimization budgets
  (:func:`~repro.serve.scheduler.degraded_budget`) threaded into the
  service's ``time_limit`` — a late-admitted anytime MILP request
  returns its best-so-far plan on time instead of blowing the deadline;
* every stage records into a :class:`~repro.serve.metrics.MetricsRegistry`
  (queue depth, wait/service/total latency histograms, coalesce and
  cache and LP-warm ratios) exposed as a dict snapshot and as a text
  page via :mod:`repro.serve.http`.
"""

from __future__ import annotations

import enum
import logging
import math
import threading
import time
from concurrent.futures import InvalidStateError
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro import obs
from repro.api import OptimizerService, OptimizerSettings, query_signature
from repro.api.result import PlanResult
from repro.cancel import CancelToken
from repro.milp.branch_and_bound import SolverOptions
from repro.milp.lp_backend import BasisExchangePool
from repro.store import basis_key, store_flush_interval, store_replay_budget
from repro.store import serde as store_serde

from repro.serve.coalesce import RequestCoalescer
from repro.serve.metrics import MetricsRegistry
from repro.serve.resilience import (
    BreakerBoard,
    ResilientExecutor,
    RetryPolicy,
)
from repro.serve.scheduler import (
    DeadlineScheduler,
    Priority,
    ServeRequest,
    degraded_budget,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

    from repro.catalog.query import Query

__all__ = [
    "OptimizationServer",
    "RequestStatus",
    "ServeResult",
    "ServeTicket",
]

logger = logging.getLogger("repro.serve")


class RequestStatus(enum.Enum):
    """Final disposition of one request."""

    COMPLETED = "completed"
    REJECTED = "rejected"
    TIMED_OUT = "timed_out"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class ServeResult:
    """What one request got back, with serving-side accounting.

    ``result`` is the unified :class:`~repro.api.PlanResult` (``None``
    unless ``status`` is ``COMPLETED``).  ``coalesced`` marks followers
    that were answered by another request's optimization;
    ``degraded_budget`` is the reduced time budget a deadline imposed
    (``None`` when the default budget applied).
    """

    status: RequestStatus
    algorithm: str
    result: PlanResult | None = None
    error: str | None = None
    coalesced: bool = False
    degraded_budget: float | None = None
    wait_seconds: float = 0.0
    service_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Trace id of this request's :mod:`repro.obs` trace (``None`` when
    #: tracing was off or the request was not sampled).  Also echoed in
    #: ``result.diagnostics["trace_id"]`` for completed requests.
    trace_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.COMPLETED


class ServeTicket:
    """Handle on a submitted request: block on :meth:`result`."""

    def __init__(self, request: ServeRequest) -> None:
        self._request = request

    @property
    def future(self) -> "Future[ServeResult]":
        return self._request.future

    def result(self, timeout: float | None = None) -> ServeResult:
        """The request's :class:`ServeResult` (blocks until resolved)."""
        return self._request.future.result(timeout)

    def done(self) -> bool:
        return self._request.future.done()

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Cooperatively cancel this request.

        Queued requests resolve ``CANCELLED`` when a worker picks them
        up; in-flight solves stop at their next cancellation poll (the
        MILP checks between pivots) and resolve with their best-so-far
        plan (``COMPLETED``) or ``CANCELLED`` when nothing was found.
        Already-resolved requests are unaffected.
        """
        if self._request.cancel_token is not None:
            self._request.cancel_token.cancel(reason)


def _priority(value: "Priority | str | int") -> Priority:
    if isinstance(value, Priority):
        return value
    if isinstance(value, str):
        try:
            return Priority[value.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown priority {value!r}; expected one of "
                f"{[p.name.lower() for p in Priority]}"
            ) from None
    return Priority(value)


class OptimizationServer:
    """Async optimization server over an :class:`OptimizerService`.

    Parameters
    ----------
    settings:
        Base :class:`OptimizerSettings`.  The server copies them and
        wires the shared basis pool into ``extra["solver_options"]``
        (an existing ``solver_options`` entry is preserved, only its
        ``basis_pool`` is filled in).
    workers:
        Worker-thread count — concurrent optimizations in flight.
    queue_capacity:
        Bound on queued (not yet running) requests; beyond it
        submissions are ``REJECTED`` (load shedding).
    default_deadline:
        Deadline in seconds applied to requests submitted without one
        (``None`` = no implicit deadline).
    coalesce:
        Collapse concurrent identical requests into one optimization.
    share_bases:
        Wire the cross-query :class:`BasisExchangePool` through
        ``SolverOptions.basis_pool``.
    service:
        Pre-built :class:`OptimizerService` to serve from (tests,
        custom registries).  When given, ``settings`` is ignored and
        basis-pool wiring is skipped — the caller owns the service
        configuration.
    cache_entries:
        Plan-cache capacity of the internally built service.
    store:
        Optional :class:`repro.store.PlanStore`.  The service serves
        write-through/read-through from it, and the server adds the
        lifecycle around it: warm-up replay on :meth:`start` (hot plans
        into the plan cache, basis snapshots into the exchange pool,
        bounded by ``replay_budget``, before any worker accepts
        traffic), periodic flush from the watchdog, and a final flush
        on ``stop(drain=True)``.  Store failures never fail requests.
    replay_budget:
        Maximum plans (and basis snapshots) replayed at start; defaults
        to ``REPRO_STORE_REPLAY_BUDGET``.
    flush_interval:
        Seconds between periodic store flushes; defaults to
        ``REPRO_STORE_FLUSH_INTERVAL``.

    Examples
    --------
    >>> from repro.workloads import QueryGenerator
    >>> queries = [QueryGenerator(seed=s).generate("star", 5) for s in range(3)]
    >>> with OptimizationServer(workers=2) as server:
    ...     tickets = [server.submit(q, "greedy") for q in queries]
    ...     all(t.result(30).ok for t in tickets)
    True
    """

    def __init__(
        self,
        settings: OptimizerSettings | None = None,
        *,
        workers: int = 4,
        queue_capacity: int = 64,
        default_deadline: float | None = None,
        coalesce: bool = True,
        share_bases: bool = True,
        service: OptimizerService | None = None,
        cache_entries: int = 1024,
        store=None,
        replay_budget: int | None = None,
        flush_interval: float | None = None,
        budget_safety: float = 0.9,
        min_budget: float = 0.05,
        retry_policy: RetryPolicy | None = None,
        breakers: BreakerBoard | None = None,
        enable_ladder: bool = True,
        watchdog_interval: float = 0.1,
        wedge_grace: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be positive")
        if wedge_grace <= 0:
            raise ValueError("wedge_grace must be positive")
        self.basis_pool: BasisExchangePool | None = None
        if service is not None:
            self.service = service
            if store is not None and self.service.store is None:
                # Attach the store to a caller-built service so the
                # read/write-through path exists for the replay to feed.
                self.service.store = store
            elif store is None:
                store = self.service.store
        else:
            settings = settings or OptimizerSettings()
            if share_bases:
                self.basis_pool = BasisExchangePool()
                settings = self._wire_basis_pool(settings, self.basis_pool)
            self.service = OptimizerService(
                settings=settings,
                max_workers=workers,
                max_entries=cache_entries,
                store=store,
            )
        self.store = store
        self.replay_budget = (
            int(replay_budget) if replay_budget is not None
            else store_replay_budget()
        )
        self.flush_interval = (
            float(flush_interval) if flush_interval is not None
            else store_flush_interval()
        )
        self._last_flush = time.monotonic()
        #: store.stats values already folded into the metrics counters
        #: (the counters are monotonic; the sync applies deltas).
        self._store_synced = {"hits": 0, "writes": 0}
        self.scheduler = DeadlineScheduler(queue_capacity)
        self.coalescer = RequestCoalescer() if coalesce else None
        self.default_deadline = default_deadline
        self.budget_safety = budget_safety
        self.min_budget = min_budget
        self.resilience = ResilientExecutor(
            self.service,
            retry=retry_policy,
            breakers=breakers,
            enable_ladder=enable_ladder,
        )
        self.watchdog_interval = watchdog_interval
        self.wedge_grace = wedge_grace
        self.metrics = MetricsRegistry()
        self._workers: list[threading.Thread] = []
        self._num_workers = workers
        self._started = False
        self._lock = threading.Lock()
        #: What each live worker thread is optimizing right now; the
        #: watchdog walks this to fire deadline cancellations and to
        #: detect wedged workers.
        self._inflight: dict[threading.Thread, ServeRequest] = {}
        #: When the watchdog first saw each in-flight request overdue
        #: (cancelled token but still running), keyed by id(request).
        self._overdue_since: dict[int, float] = {}
        #: Threads written off as wedged; never joined, never reused.
        self._wedged: set[threading.Thread] = set()
        self._watchdog_thread: threading.Thread | None = None
        self._watchdog_stop = threading.Event()
        self._worker_seq = 0

        m = self.metrics
        self._requests_total = m.counter(
            "serve_requests_total", "requests submitted")
        self._completed = m.counter(
            "serve_completed_total", "requests answered with a result")
        self._rejected = m.counter(
            "serve_rejected_total", "requests shed by admission control")
        self._timed_out = m.counter(
            "serve_timed_out_total", "requests whose deadline expired")
        self._failed = m.counter(
            "serve_failed_total", "requests that raised")
        self._coalesced = m.counter(
            "serve_coalesced_total", "requests answered by another's solve")
        self._optimizations = m.counter(
            "serve_optimizations_total",
            "optimizer invocations (cache hits included, followers not)")
        self._degraded = m.counter(
            "serve_degraded_total", "requests run under a reduced budget")
        self._cancelled = m.counter(
            "serve_cancelled_total", "requests cancelled cooperatively")
        self._retries = m.counter(
            "serve_retries_total", "transient-failure retries")
        self._ladder_descents = m.counter(
            "serve_ladder_descents_total",
            "requests answered below their requested rung")
        self._workers_replaced = m.counter(
            "serve_workers_replaced_total",
            "wedged workers written off and replaced")
        self._slow_requests = m.counter(
            "serve_slow_requests_total",
            "traced requests slower than the tracer's slow threshold")
        self._errors = m.counter_family(
            "errors_total", "errors by exception type")
        self._queue_depth = m.gauge(
            "serve_queue_depth", "requests waiting in the scheduler")
        self._busy_workers = m.gauge(
            "serve_busy_workers", "workers currently optimizing")
        self._wait_hist = m.histogram(
            "serve_wait_seconds", "queue wait time")
        self._service_hist = m.histogram(
            "serve_service_seconds", "optimization time")
        self._total_hist = m.histogram(
            "serve_total_seconds", "submit-to-resolve latency")
        self._store_hits = m.counter(
            "store_hits_total", "plan-store reads answered from disk")
        self._store_writes = m.counter(
            "store_writes_total", "plan-store records written")
        self._store_replay_seconds = m.gauge(
            "store_replay_seconds", "duration of the start-up warm replay")
        self._store_replayed_plans = m.gauge(
            "store_replayed_plans", "plans preloaded by the warm replay")
        self._store_replayed_bases = m.gauge(
            "store_replayed_bases", "bases preloaded by the warm replay")

    @staticmethod
    def _wire_basis_pool(
        settings: OptimizerSettings, pool: BasisExchangePool
    ) -> OptimizerSettings:
        """Copy ``settings`` with ``extra["solver_options"].basis_pool``
        pointing at the shared pool (existing options preserved)."""
        extra = dict(settings.extra)
        base = extra.get("solver_options")
        if base is None:
            options = SolverOptions(time_limit=settings.time_limit)
        else:
            options = replace(base)
        if options.basis_pool is None:
            options.basis_pool = pool
        extra["solver_options"] = options
        return replace(settings, extra=extra)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "OptimizationServer":
        """Spawn the worker pool and the deadline watchdog (idempotent).

        With a store attached, the warm-up replay runs *before* the
        first worker exists: the plan cache and the basis pool are
        seeded from the last durable state, so the very first admitted
        request can hit a warm cache instead of racing the replay.
        """
        with self._lock:
            if self._started:
                return self
            self._started = True
        if self.store is not None:
            self._warm_replay()
        with self._lock:
            if not self._started:  # stopped during replay
                return self
            for _ in range(self._num_workers):
                self._spawn_worker_locked()
            self._watchdog_stop.clear()
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop,
                name="serve-watchdog",
                daemon=True,
            )
            self._watchdog_thread.start()
        return self

    def _spawn_worker_locked(self) -> threading.Thread:
        """Start one worker thread; caller holds ``self._lock``."""
        thread = threading.Thread(
            target=self._worker_loop,
            name=f"serve-worker-{self._worker_seq}",
            daemon=True,
        )
        self._worker_seq += 1
        thread.start()
        self._workers.append(thread)
        return thread

    def _warm_replay(self) -> None:
        """Seed the plan cache and basis pool from the store.

        Bounded by :attr:`replay_budget` on each keyspace and entirely
        best-effort: a throwing or corrupt store leaves the server
        starting cold, exactly as if no store were attached.  Duration
        and counts land in the ``store_replay_*`` metrics.
        """
        started = time.monotonic()
        plans = 0
        bases = 0
        try:
            plans = self.service.replay_from_store(self.replay_budget)
        except Exception as error:  # noqa: BLE001 - replay is best-effort
            logger.warning("plan replay failed; starting cold: %s", error)
        if self.basis_pool is not None:
            try:
                rows = self.store.bases(self.replay_budget)
            except Exception as error:  # noqa: BLE001
                logger.warning(
                    "basis replay failed; starting cold: %s", error
                )
                rows = []
            for _signature, payload in rows:
                try:
                    self.basis_pool.publish(store_serde.decode_basis(payload))
                    bases += 1
                except store_serde.StoreCorruptionError:
                    continue
        duration = time.monotonic() - started
        self._store_replay_seconds.set(duration)
        self._store_replayed_plans.set(plans)
        self._store_replayed_bases.set(bases)
        if plans or bases:
            logger.info(
                "warm replay: %d plans, %d bases in %.3fs",
                plans, bases, duration,
            )

    def _flush_store(self) -> None:
        """Persist the basis pool and flush the store (best-effort)."""
        if self.store is None:
            return
        if self.basis_pool is not None:
            for signature, basis in self.basis_pool.entries():
                try:
                    self.store.put_basis(
                        basis_key(signature), store_serde.encode_basis(basis)
                    )
                except Exception:  # noqa: BLE001 - flush is best-effort
                    logger.debug(
                        "basis flush failed for %s", signature, exc_info=True
                    )
        try:
            self.store.flush()
        except Exception as error:  # noqa: BLE001
            logger.warning("store flush failed: %s", error)
        self._last_flush = time.monotonic()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut the server down; every outstanding future still resolves.

        ``drain=True`` (graceful): stop admitting, let the workers
        finish everything already queued, then exit.  ``drain=False``:
        stop admitting, ``REJECTED``-resolve everything still queued
        (and its followers), cancel in-flight solves cooperatively, and
        exit as soon as they stop.  Worker threads are joined up to
        ``timeout`` seconds total — except threads the watchdog already
        wrote off as wedged, which are skipped rather than waited on.
        Whatever is still unresolved when the join budget runs out
        (requests held by wedged workers, stragglers in the queue) is
        force-resolved — ``TIMED_OUT`` for in-flight work, ``REJECTED``
        for never-started queue leftovers — so no client blocks forever
        on a future the server can no longer honor.
        """
        self.scheduler.close()
        if not drain:
            for request in self.scheduler.drain():
                # Followers coalesced onto this leader would otherwise
                # wait forever on an outcome that never comes.
                if request.leads:
                    for follower in self.coalescer.withdraw(request.key):
                        self._resolve_rejection(
                            follower, "server shutting down"
                        )
                self._resolve_rejection(request, "server shutting down")
            with self._lock:
                inflight = list(self._inflight.values())
            for request in inflight:
                if request.cancel_token is not None:
                    request.cancel_token.cancel("server shutting down")
        deadline = time.monotonic() + timeout
        for thread in list(self._workers):
            if thread in self._wedged:
                continue  # provably stuck; waiting only burns the budget
            thread.join(max(0.0, deadline - time.monotonic()))
        self._watchdog_stop.set()
        with self._lock:
            watchdog = self._watchdog_thread
        if watchdog is not None:
            watchdog.join(max(0.1, deadline - time.monotonic()))
        # Leftover resolution: nothing a dead server holds may dangle.
        with self._lock:
            stuck = list(self._inflight.items())
        for thread, request in stuck:
            if thread.is_alive():
                logger.error(
                    "worker %s still wedged at shutdown; "
                    "force-resolving its request", thread.name,
                )
                self._force_resolve(
                    request,
                    RequestStatus.TIMED_OUT,
                    "server stopped while request was wedged in flight",
                )
        for request in self.scheduler.drain():
            if request.leads and self.coalescer is not None:
                for follower in self.coalescer.withdraw(request.key):
                    self._resolve_rejection(follower, "server shutting down")
            self._resolve_rejection(request, "server shutting down")
        if drain:
            # Graceful exit persists the working set (plans were written
            # through as they were solved; bases live only in the pool
            # until here).  A non-drain stop deliberately skips this —
            # it is the kill-9 rehearsal, and recovery must work from
            # the last periodic flush alone.
            self._flush_store()
        with self._lock:
            self._workers.clear()
            self._watchdog_thread = None
            self._started = False

    def __enter__(self) -> "OptimizationServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=True)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: "Query",
        algorithm: str = "auto",
        *,
        priority: "Priority | str | int" = Priority.NORMAL,
        deadline: float | None = None,
        trace_context: dict | None = None,
    ) -> ServeTicket:
        """Submit ``query`` for optimization; returns immediately.

        ``deadline`` is relative seconds from now; it both schedules the
        request (earliest deadline first within its priority class) and
        caps its optimization budget.  The ticket's future always
        resolves — ``REJECTED`` synchronously when admission sheds the
        request, ``TIMED_OUT``/``FAILED``/``COMPLETED`` from a worker.

        ``trace_context`` is a serialized :func:`repro.obs.serialize_context`
        dict from an upstream process (the sharded hub): the request's
        trace then *continues* the upstream trace under the same id
        instead of starting a fresh one, so one request that crossed
        the shard wire reads as one trace.
        """
        # Validate before counting, so a raised ValueError leaves the
        # submitted/resolved counters balanced.  NaN would sail through
        # an `<= 0` check and then poison the EDF heap and the solver's
        # time-limit comparisons.
        resolved_priority = _priority(priority)
        effective = (
            deadline if deadline is not None else self.default_deadline
        )
        if effective is not None and not (
            math.isfinite(effective) and effective > 0
        ):
            raise ValueError(
                "deadline must be a positive finite number of seconds"
            )
        self._requests_total.inc()
        request = ServeRequest(
            query=query,
            algorithm=algorithm,
            priority=resolved_priority,
        )
        if effective is not None:
            request.deadline = request.submitted + effective
        request.cancel_token = CancelToken(deadline=request.deadline)
        trace = obs.continue_trace(
            "request",
            trace_context,
            algorithm=algorithm,
            priority=resolved_priority.name.lower(),
            query=getattr(query, "name", "?"),
        )
        if trace:
            request.trace = trace
        if self.scheduler.closed:
            # A stopped server stays stopped: the scheduler cannot
            # reopen, so restarting workers would only dress the
            # rejection up as a transient "queue full".
            self._resolve_rejection(request, "server stopped")
            return ServeTicket(request)
        # Benign double-checked fast path: start() re-checks under the
        # lock, so the worst case is one redundant call.
        # repro: allow[LOCK-001] racy fast-path read; start() re-checks under the lock
        if not self._started:
            self.start()
        if algorithm not in self.service.algorithms():
            self._failed.inc()
            request.future.set_result(ServeResult(
                status=RequestStatus.FAILED,
                algorithm=algorithm,
                error=(
                    f"unknown algorithm {algorithm!r}; registered: "
                    f"{', '.join(self.service.algorithms())}"
                ),
            ))
            return ServeTicket(request)
        request.key = (
            self.service.catalog_version,
            algorithm,
            query_signature(query),
        )
        # Only deadline-free requests coalesce: a deadline carrier must
        # get its own (possibly degraded) budget and its own timeout
        # disposition, and conversely a deadline-free request must never
        # inherit a leader's deadline-truncated plan or TIMED_OUT — the
        # same quality invariant that keeps degraded solves out of the
        # plan cache.
        if self.coalescer is not None and request.deadline is None:
            if not self.coalescer.lead_or_follow(request.key, request):
                # Follower: answered by the leader, consumes nothing.
                self._coalesced.inc()
                return ServeTicket(request)
            request.leads = True
        # The admission span nests under the request root: attach the
        # root to the submitting thread for the duration of the offer.
        with obs.attach(request.trace):
            admitted = self.scheduler.offer(request)
        if not admitted:
            if request.leads:
                for follower in self.coalescer.withdraw(request.key):
                    self._resolve_rejection(follower, "queue full")
            self._resolve_rejection(request, "queue full")
            return ServeTicket(request)
        self._queue_depth.set(len(self.scheduler))
        return ServeTicket(request)

    def optimize(
        self,
        query: "Query",
        algorithm: str = "auto",
        *,
        priority: "Priority | str | int" = Priority.NORMAL,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> ServeResult:
        """Synchronous convenience: submit and block for the result."""
        ticket = self.submit(
            query, algorithm, priority=priority, deadline=deadline
        )
        return ticket.result(timeout)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        me = threading.current_thread()
        while True:
            if me in self._wedged:
                # The watchdog wrote this thread off and already
                # resolved its request; a replacement carries the queue.
                return
            request = self.scheduler.take(timeout=0.2)
            self._queue_depth.set(len(self.scheduler))
            if request is None:
                if self.scheduler.closed and not len(self.scheduler):
                    return
                continue
            self._busy_workers.inc()
            with self._lock:
                self._inflight[me] = request
            try:
                self._process(request)
            finally:
                with self._lock:
                    self._inflight.pop(me, None)
                    self._overdue_since.pop(id(request), None)
                self._busy_workers.dec()

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        """Fire deadline cancellations; write off wedged workers.

        Two escalation steps per in-flight request: first the request's
        token is cancelled the moment its deadline passes (the solver
        polls it between pivots and stops within milliseconds); if a
        worker *still* has not returned ``wedge_grace`` seconds after
        its token fired — a backend stuck in native code where no poll
        can reach — the request is force-resolved ``TIMED_OUT``, the
        thread is written off, and a replacement worker is spawned so
        pool capacity survives the loss.
        """
        while not self._watchdog_stop.wait(self.watchdog_interval):
            now = time.monotonic()
            if (
                self.store is not None
                and now - self._last_flush >= self.flush_interval
            ):
                self._flush_store()
            with self._lock:
                inflight = list(self._inflight.items())
            for thread, request in inflight:
                token = request.cancel_token
                if token is None:
                    continue
                if not token.cancelled:
                    continue  # deadline not reached, nobody cancelled
                key = id(request)
                with self._lock:
                    first = self._overdue_since.setdefault(key, now)
                if now - first < self.wedge_grace:
                    continue
                self._write_off_wedged(thread, request)

    def _write_off_wedged(
        self, thread: threading.Thread, request: ServeRequest
    ) -> None:
        """Give up on a worker that ignored cancellation past the grace
        period: resolve its request honestly, replace the thread."""
        with self._lock:
            # Re-check under the lock: the worker may have finished
            # between the watchdog's snapshot and now.
            if self._inflight.get(thread) is not request:
                return
            del self._inflight[thread]
            self._overdue_since.pop(id(request), None)
            self._wedged.add(thread)
            if thread in self._workers:
                self._workers.remove(thread)
            replace_worker = self._started and not self.scheduler.closed
            if replace_worker:
                self._spawn_worker_locked()
        logger.error(
            "worker %s wedged (no response %.1fs after cancellation); "
            "request resolved TIMED_OUT%s",
            thread.name, self.wedge_grace,
            ", replacement spawned" if replace_worker else "",
        )
        self._workers_replaced.inc()
        self._errors.labels(type="WedgedWorker").inc()
        self._force_resolve(
            request,
            RequestStatus.TIMED_OUT,
            "worker wedged past deadline; written off",
        )

    def _process(self, request: ServeRequest) -> None:
        """Worker-side entry: adopt the request's trace context (the
        explicit cross-thread handoff), close its queue-wait span, and
        run the pipeline under the root span."""
        if request.queue_span is not None:
            request.queue_span.finish()
        with obs.attach(request.trace):
            self._process_attached(request)

    def _process_attached(self, request: ServeRequest) -> None:
        now = time.monotonic()
        request.started = now
        wait = now - request.submitted
        self._wait_hist.observe(wait)

        token = request.cancel_token
        if token is not None and token.cancel_requested:
            # Cancelled while still queued: never start the solve.
            self._finish(
                request,
                ServeResult(
                    status=RequestStatus.CANCELLED,
                    algorithm=request.algorithm,
                    error=f"cancelled: {token.reason}",
                    wait_seconds=wait,
                ),
            )
            return

        remaining = request.remaining(now)
        budget = degraded_budget(
            request,
            self.service.settings.time_limit,
            safety=self.budget_safety,
            min_budget=self.min_budget,
            now=now,
        )
        if (remaining is not None and remaining <= 0) or budget == 0.0:
            self._finish(
                request,
                ServeResult(
                    status=RequestStatus.TIMED_OUT,
                    algorithm=request.algorithm,
                    error="deadline expired before optimization started",
                    wait_seconds=wait,
                ),
            )
            return

        if budget is not None:
            # A full-budget plan already cached for this query beats any
            # degraded fresh solve: instant (meets every deadline) and
            # higher quality.
            cached = self.service.cached_result(
                request.query, request.algorithm
            )
            if cached is not None:
                self._finish(request, ServeResult(
                    status=RequestStatus.COMPLETED,
                    algorithm=cached.algorithm,
                    result=cached,
                    wait_seconds=wait,
                ))
                return
            self._degraded.inc()
        started_solve = time.monotonic()
        try:
            self._optimizations.inc()
            # Degraded budgets are near-unique floats (derived from the
            # remaining deadline) and budget is part of the plan-cache
            # key: storing those results would fill the LRU with
            # entries no later request can ever match — and serving
            # them to full-budget requests would hand out deadline-
            # truncated (lower-quality) plans.  Degraded solves are
            # answered from the full-budget cache above when possible
            # and otherwise solved fresh without touching the cache.
            outcome = self.resilience.execute(
                request.query,
                request.algorithm,
                budget=budget,
                use_cache=budget is None,
                cancel_token=request.cancel_token,
            )
        except Exception as error:  # noqa: BLE001 - server must not die
            # The resilience executor absorbs optimizer failures; only
            # a bug in the serving stack itself lands here.  Log it
            # with the traceback — a bare FAILED result hides exactly
            # the kind of defect this path exists to surface.
            logger.exception(
                "unhandled error serving %s request for %r",
                request.algorithm, getattr(request.query, "name", "?"),
            )
            self._errors.labels(type=type(error).__name__).inc()
            self._finish(
                request,
                ServeResult(
                    status=RequestStatus.FAILED,
                    algorithm=request.algorithm,
                    error=f"{type(error).__name__}: {error}",
                    wait_seconds=wait,
                    service_seconds=time.monotonic() - started_solve,
                ),
            )
            return
        service_seconds = time.monotonic() - started_solve
        self._service_hist.observe(service_seconds)
        if outcome.retries:
            self._retries.inc(outcome.retries)
        if outcome.degraded:
            self._ladder_descents.inc()
        if outcome.result is not None:
            self._finish(
                request,
                ServeResult(
                    status=RequestStatus.COMPLETED,
                    algorithm=outcome.result.algorithm,
                    result=outcome.result,
                    degraded_budget=budget,
                    wait_seconds=wait,
                    service_seconds=service_seconds,
                ),
            )
            return
        if outcome.cancelled is not None:
            status = (
                RequestStatus.TIMED_OUT
                if outcome.cancelled == "deadline expired"
                else RequestStatus.CANCELLED
            )
            self._finish(
                request,
                ServeResult(
                    status=status,
                    algorithm=request.algorithm,
                    error=f"cancelled: {outcome.cancelled}",
                    wait_seconds=wait,
                    service_seconds=service_seconds,
                ),
            )
            return
        error = outcome.error or "optimization failed"
        logger.warning(
            "%s request for %r failed every rung: %s",
            request.algorithm, getattr(request.query, "name", "?"), error,
        )
        self._errors.labels(type=error.split(":", 1)[0]).inc()
        self._finish(
            request,
            ServeResult(
                status=RequestStatus.FAILED,
                algorithm=request.algorithm,
                error=error,
                wait_seconds=wait,
                service_seconds=service_seconds,
            ),
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def _finish(self, request: ServeRequest, outcome: ServeResult) -> None:
        # Only deadline-free requests coalesce (see submit), so every
        # follower here was willing to wait for the full-budget answer
        # it is handed — no late-delivery or quality mismatch to check.
        followers = (
            self.coalescer.complete(request.key) if request.leads else []
        )
        self._resolve(request, outcome)
        for follower in followers:
            self._resolve(follower, replace(
                outcome,
                coalesced=True,
                wait_seconds=0.0,
                service_seconds=0.0,
            ))

    def _resolve(self, request: ServeRequest, outcome: ServeResult) -> None:
        total = time.monotonic() - request.submitted
        outcome.total_seconds = total
        trace = request.trace
        if trace:
            outcome.trace_id = trace.trace_id
            if outcome.result is not None and "trace_id" not in (
                outcome.result.diagnostics
            ):
                # Never mutate a possibly-cached PlanResult shared with
                # other requests: echo the trace id on a copy (the same
                # discipline the resilience ladder uses for its
                # degradation record).
                outcome.result = replace(
                    outcome.result,
                    diagnostics={
                        **outcome.result.diagnostics,
                        "trace_id": trace.trace_id,
                    },
                )
        # set_result-first makes resolution idempotent and atomic: both
        # a wedged worker limping home and the watchdog that already
        # wrote it off may call this, and exactly one may count.
        try:
            request.future.set_result(outcome)
        # repro: allow[NUM-004] the documented idempotent-resolve site: worker and watchdog may race, exactly one counts
        except InvalidStateError:
            return
        if trace:
            self._finish_trace(request, trace, outcome)
        self._total_hist.observe(total)
        counter = {
            RequestStatus.COMPLETED: self._completed,
            RequestStatus.REJECTED: self._rejected,
            RequestStatus.TIMED_OUT: self._timed_out,
            RequestStatus.FAILED: self._failed,
            RequestStatus.CANCELLED: self._cancelled,
        }[outcome.status]
        counter.inc()

    def _finish_trace(
        self, request: ServeRequest, trace: "obs.Span", outcome: ServeResult
    ) -> None:
        """Close the request's root span (publishing the trace through
        the tracer's sampling verdict) and emit the structured
        slow-request log line with the span breakdown."""
        if request.queue_span is not None:
            request.queue_span.finish()
        trace.annotate(status=outcome.status.value)
        if outcome.coalesced:
            trace.annotate(coalesced=True)
        trace.finish()
        duration_ms = trace.trace.duration_ms()
        tracer = obs.active()
        if tracer is not None and duration_ms >= tracer.slow_ms:
            self._slow_requests.inc()
            logger.warning(
                "slow request trace_id=%s status=%s algorithm=%s "
                "total_ms=%.1f wait_ms=%.1f breakdown=%s",
                trace.trace_id, outcome.status.value, outcome.algorithm,
                duration_ms, outcome.wait_seconds * 1000.0,
                trace.trace.breakdown(),
            )

    def _force_resolve(
        self,
        request: ServeRequest,
        status: RequestStatus,
        reason: str,
    ) -> None:
        """Resolve a request (and any coalesced followers) from outside
        its worker — watchdog write-off or shutdown leftovers."""
        outcome = ServeResult(
            status=status,
            algorithm=request.algorithm,
            error=reason,
        )
        followers = (
            self.coalescer.complete(request.key)
            if request.leads and self.coalescer is not None else []
        )
        self._resolve(request, outcome)
        for follower in followers:
            self._resolve(follower, replace(outcome, coalesced=True))

    def _resolve_rejection(self, request: ServeRequest, reason: str) -> None:
        self._resolve(request, ServeResult(
            status=RequestStatus.REJECTED,
            algorithm=request.algorithm,
            error=reason,
        ))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        with self._lock:
            return self._started

    def _sync_store_metrics(self) -> None:
        """Fold the store's own counters into the metrics registry.

        The store counts internally (it is shared with non-serving
        callers); the registry counters are monotonic, so the sync
        applies deltas since the last exposition.
        """
        if self.store is None:
            return
        stats = self.store.stats
        for name, counter in (
            ("hits", self._store_hits),
            ("writes", self._store_writes),
        ):
            current = getattr(stats, name)
            delta = current - self._store_synced[name]
            if delta > 0:
                counter.inc(delta)
                self._store_synced[name] = current

    def metrics_snapshot(self) -> dict:
        """One JSON-friendly view across server, cache, LP and pool."""
        self._sync_store_metrics()
        requests = self._requests_total.value
        completed = self._completed.value
        coalesced = self._coalesced.value
        with self._lock:
            wedged = len(self._wedged)
        snapshot = {
            "requests": {
                "submitted": requests,
                "completed": completed,
                "rejected": self._rejected.value,
                "timed_out": self._timed_out.value,
                "failed": self._failed.value,
                "cancelled": self._cancelled.value,
                "degraded": self._degraded.value,
            },
            "optimizations": self._optimizations.value,
            "coalesce": {
                "coalesced": coalesced,
                "rate": coalesced / requests if requests else 0.0,
                "in_flight": (
                    self.coalescer.in_flight()
                    if self.coalescer is not None else 0
                ),
            },
            "latency": {
                "wait": self._wait_hist.snapshot(),
                "service": self._service_hist.snapshot(),
                "total": self._total_hist.snapshot(),
            },
            "queue": {
                "depth": len(self.scheduler),
                "capacity": self.scheduler.capacity,
                "offered": self.scheduler.offered,
                "shed": self.scheduler.shed,
            },
            "cache": {
                "hits": self.service.stats.hits,
                "misses": self.service.stats.misses,
                "hit_rate": self.service.stats.hit_rate,
                "evictions": self.service.stats.evictions,
                "size": self.service.cache_size(),
            },
            "lp": self.service.lp_stats.as_dict(),
            "resilience": {
                "retries": self._retries.value,
                "ladder_descents": self._ladder_descents.value,
                "workers_replaced": self._workers_replaced.value,
                "breakers": self.resilience.breakers.as_dict(),
            },
            # One place for every "the serving tier replaced a broken
            # part" counter — thread-level here, process-level (shard
            # respawns/kills/retries) added by the sharded front end.
            # Before this section, serve_workers_replaced_total was
            # metrics-text-only and invisible in /stats.
            "supervision": {
                "workers_replaced": self._workers_replaced.value,
                "wedged_workers": wedged,
                "shard_respawns": 0,
                "shard_kills": 0,
                "shard_retries": 0,
            },
            "errors": self._errors.as_dict(),
        }
        if self.basis_pool is not None:
            snapshot["basis_pool"] = self.basis_pool.as_dict()
        if self.store is not None:
            try:
                summary = self.store.summary()
            except Exception as error:  # noqa: BLE001 - stats must not fail
                summary = {"error": f"{type(error).__name__}: {error}"}
            summary["replay"] = {
                "seconds": self._store_replay_seconds.value,
                "plans": self._store_replayed_plans.value,
                "bases": self._store_replayed_bases.value,
                "budget": self.replay_budget,
            }
            snapshot["store"] = summary
        return snapshot

    def stats(self) -> dict:
        """The ``GET /stats`` payload.

        Today this is :meth:`metrics_snapshot` (including the
        ``supervision`` section); the named method exists so the HTTP
        layer and the sharded front end expose the same duck-typed
        surface.
        """
        return self.metrics_snapshot()

    def metrics_text(self) -> str:
        """Prometheus-style text exposition (``GET /metrics``)."""
        self._sync_store_metrics()
        return self.metrics.expose()
