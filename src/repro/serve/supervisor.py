"""Shard supervision: heartbeat health, crash/hang detection, respawn.

The supervisor owns the shard *processes* so the front end
(:class:`~repro.serve.sharded.ShardedOptimizationServer`) can own the
*requests*.  Its contract, in failure-first order:

* **Detection.**  A shard is declared dead when its process exited,
  its pipe hit EOF, its heartbeats went silent past the timeout (a
  wedged-but-alive shard counts as dead — the caller cannot tell the
  difference and must not wait to find out), or it never finished
  starting within the spawn timeout.  All timing runs on an injectable
  clock, so the unit suite drives hang detection without sleeping.
* **Honest disposition.**  Declaring a shard dead atomically takes its
  in-flight request table and hands it to the front end's
  ``on_failure`` callback.  Nothing is ever dropped on the floor: the
  front end retries each request on a healthy shard when its deadline
  allows, else resolves it ``TIMED_OUT``/``FAILED`` — the never-
  silent-loss invariant the chaos suite pins.
* **Respawn.**  Dead shards respawn automatically with exponential
  backoff (reset on a successful start).  The child re-runs its
  store-backed warm replay before sending ``ready``, and only the
  ``ready`` transition rejoins it to the routing ring — a recovering
  shard never receives traffic cold.
* **Breakers.**  Each shard carries a
  :class:`~repro.serve.resilience.CircuitBreaker`; the front end
  consults it when routing, so a flapping shard sheds to its ring
  neighbors even between supervisor ticks.

Everything process-shaped (``Process``/``Connection``) is duck-typed:
the unit suite substitutes fakes and drives ``tick()`` by hand.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import threading
import time
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable

from repro.serve import shardwire
from repro.serve.resilience import CircuitBreaker
from repro.serve.shard import ShardConfig, shard_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.scheduler import ServeRequest

__all__ = ["ShardHandle", "ShardState", "ShardSupervisor"]

logger = logging.getLogger("repro.serve.shard")


class ShardState(Enum):
    """Lifecycle of one shard slot (see docs/operations.md runbook)."""

    #: Process launched; waiting for warm replay + ``ready``.
    STARTING = "starting"
    #: Healthy member of the routing ring.
    READY = "ready"
    #: Told to drain; finishing in-flight work, receiving no new.
    DRAINING = "draining"
    #: Declared dead; in-flight disposed; awaiting respawn (or final).
    DEAD = "dead"


class ShardHandle:
    """One shard slot: current process, pipe, state and request table.

    The slot outlives any single incarnation — ``index`` and the
    accumulated counters are stable across respawns.  All mutable state
    is guarded by the handle's own lock; the supervisor, the reader
    thread and the front end's dispatcher all touch it.
    """

    def __init__(self, config: ShardConfig, breaker: CircuitBreaker) -> None:
        self.index = config.index
        self.config = config
        self.breaker = breaker
        self._lock = threading.Lock()
        self._state = ShardState.DEAD
        self._process: Any = None
        self._conn: Any = None
        self._send_lock = threading.Lock()
        self._last_heartbeat = 0.0
        self._spawned_at = 0.0
        self._link_down = False
        self._said_bye = False
        self._stats: dict[str, Any] = {}
        self._registry: dict[str, Any] = {}
        self._inflight: dict[int, "ServeRequest"] = {}
        self._consecutive_failures = 0
        self._next_respawn_at: float | None = None
        self.pid: int | None = None
        self.respawns = 0
        self.incarnation = 0
        self.replayed_plans = 0
        self.replayed_bases = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> ShardState:
        with self._lock:
            return self._state

    def is_ready(self) -> bool:
        with self._lock:
            return self._state is ShardState.READY and not self._link_down

    def adopt(self, process: Any, conn: Any, now: float) -> None:
        """Install a freshly spawned incarnation (STARTING)."""
        with self._lock:
            self._process = process
            self._conn = conn
            self._state = ShardState.STARTING
            self._spawned_at = now
            self._last_heartbeat = now
            self._link_down = False
            self._said_bye = False
            self._next_respawn_at = None

    def mark_ready(self, body: dict[str, Any], now: float) -> None:
        with self._lock:
            if self._state is not ShardState.STARTING:
                return
            self._state = ShardState.READY
            self._last_heartbeat = now
            self._consecutive_failures = 0
            self.pid = int(body.get("pid", 0)) or None
            self.replayed_plans = int(body.get("replayed_plans", 0))
            self.replayed_bases = int(body.get("replayed_bases", 0))
        self.breaker.record_success()

    def mark_draining(self) -> None:
        with self._lock:
            if self._state in (ShardState.READY, ShardState.STARTING):
                self._state = ShardState.DRAINING

    def note_heartbeat(self, body: dict[str, Any], now: float) -> None:
        stats = body.get("stats") or {}
        with self._lock:
            self._last_heartbeat = now
            if isinstance(stats, dict):
                self._stats = stats
                registry = stats.get("registry")
                if isinstance(registry, dict):
                    self._registry = registry

    def note_bye(self) -> None:
        with self._lock:
            self._said_bye = True

    def note_link_down(self) -> None:
        with self._lock:
            self._link_down = True

    def stats_snapshot(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._stats)

    def registry_snapshot(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._registry)

    def heartbeat_age(self, now: float) -> float:
        with self._lock:
            return now - self._last_heartbeat

    # -- request table -------------------------------------------------

    def track(self, rid: int, request: "ServeRequest") -> None:
        with self._lock:
            self._inflight[rid] = request

    def untrack(self, rid: int) -> "ServeRequest | None":
        with self._lock:
            return self._inflight.pop(rid, None)

    def take_inflight(self) -> list[tuple[int, "ServeRequest"]]:
        """Atomically claim every in-flight request (death disposition:
        exactly one party may resolve each)."""
        with self._lock:
            items = list(self._inflight.items())
            self._inflight.clear()
            return items

    def inflight_snapshot(self) -> list[tuple[int, "ServeRequest"]]:
        with self._lock:
            return list(self._inflight.items())

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- pipe ----------------------------------------------------------

    def send(self, blob: bytes) -> bool:
        """Ship one frame; ``False`` marks the link down (the next tick
        declares the shard dead and disposes its requests)."""
        with self._lock:
            conn = self._conn
            if conn is None or self._link_down:
                return False
        try:
            with self._send_lock:
                conn.send_bytes(blob)
            return True
        except (BrokenPipeError, OSError):
            self.note_link_down()
            return False

    # -- death ---------------------------------------------------------

    def declare_dead(self, now: float) -> tuple[Any, Any] | None:
        """Transition to DEAD; ``(process, conn)`` to reap, or ``None``
        when already dead (the tick raced another declaration)."""
        with self._lock:
            if self._state is ShardState.DEAD:
                return None
            self._state = ShardState.DEAD
            process, conn = self._process, self._conn
            self._process = None
            self._conn = None
            self._link_down = True
            self._consecutive_failures += 1
            return process, conn

    def schedule_respawn(self, at: float | None) -> None:
        with self._lock:
            self._next_respawn_at = at

    def respawn_due(self, now: float) -> bool:
        with self._lock:
            return (
                self._state is ShardState.DEAD
                and self._next_respawn_at is not None
                and now >= self._next_respawn_at
            )

    def failure_streak(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def health(self, now: float) -> dict[str, Any]:
        """One ``/healthz`` row for this shard."""
        with self._lock:
            return {
                "state": self._state.value,
                "pid": self.pid,
                "heartbeat_age_s": round(now - self._last_heartbeat, 3),
                "inflight": len(self._inflight),
                "respawns": self.respawns,
                "replayed_plans": self.replayed_plans,
                "replayed_bases": self.replayed_bases,
                "breaker": self.breaker.as_dict()["state"],
            }


class ShardSupervisor:
    """Spawns, watches, reaps and respawns the shard processes.

    ``tick()`` is the whole control loop, called periodically by the
    front end (and directly by tests with a fake clock): detect dead or
    silent shards, dispose their in-flight requests through
    ``on_failure``, and respawn when backoff allows.
    """

    def __init__(
        self,
        configs: list[ShardConfig],
        *,
        on_failure: Callable[
            [ShardHandle, list[tuple[int, "ServeRequest"]], str], None
        ],
        on_message: Callable[[ShardHandle, int, dict[str, Any]], None],
        on_ready: Callable[[ShardHandle], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        heartbeat_timeout: float = 2.0,
        spawn_timeout: float = 60.0,
        respawn: bool = True,
        respawn_backoff: float = 0.5,
        respawn_backoff_max: float = 10.0,
        breaker_threshold: int = 5,
        breaker_reset: float = 5.0,
        start_method: str = "fork",
        start_readers: bool = True,
    ) -> None:
        self.clock = clock
        self.heartbeat_timeout = heartbeat_timeout
        self.spawn_timeout = spawn_timeout
        self.respawn = respawn
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_max = respawn_backoff_max
        self.start_method = start_method
        self.start_readers = start_readers
        self._on_failure = on_failure
        self._on_message = on_message
        self._on_ready = on_ready
        self._stopping = False
        self._lock = threading.Lock()
        self.kills = 0
        self.respawns_total = 0
        self.handles = [
            ShardHandle(
                config,
                CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    reset_timeout=breaker_reset,
                    clock=clock,
                ),
            )
            for config in configs
        ]

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        for handle in self.handles:
            self.spawn(handle)

    def stop(self) -> None:
        """Hard-stop every process (the front end drains first when it
        wants grace); no respawns after this."""
        with self._lock:
            self._stopping = True
        for handle in self.handles:
            handle.schedule_respawn(None)
            reaped = handle.declare_dead(self.clock())
            if reaped is None:
                continue
            process, conn = reaped
            self._reap(process, conn, kill=True)

    @property
    def stopping(self) -> bool:
        with self._lock:
            return self._stopping

    # -- spawning ------------------------------------------------------

    def _spawn_process(self, config: ShardConfig) -> tuple[Any, Any]:
        """Launch one shard child; ``(process, hub_conn)``.

        Overridable seam: the unit suite substitutes fakes here and
        exercises every supervision path without real processes.
        """
        ctx = multiprocessing.get_context(self.start_method)
        hub_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=shard_main,
            args=(child_conn, config),
            name=f"repro-shard-{config.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, hub_conn

    def spawn(self, handle: ShardHandle) -> None:
        """Start (or restart) ``handle``'s shard process."""
        if self.stopping:
            return
        config = handle.config
        if handle.incarnation > 0:
            # Injected process faults are first-incarnation-only by
            # default, so a deterministic kill-site cannot re-fire
            # forever and livelock recovery.
            config = dataclasses.replace(
                config,
                incarnation=handle.incarnation,
                fault_specs=(
                    config.fault_specs if config.faults_on_respawn else ()
                ),
            )
        try:
            process, conn = self._spawn_process(config)
        except Exception as error:  # noqa: BLE001 - spawn must not kill hub
            logger.error("shard %d spawn failed: %s", handle.index, error)
            handle.schedule_respawn(self.clock() + self.respawn_backoff)
            return
        now = self.clock()
        handle.adopt(process, conn, now)
        handle.incarnation += 1
        if self.start_readers:
            threading.Thread(
                target=self._reader_loop,
                args=(handle, conn),
                name=f"shard-{handle.index}-reader",
                daemon=True,
            ).start()
        logger.info(
            "shard %d: incarnation %d starting", handle.index,
            handle.incarnation,
        )

    # -- reading -------------------------------------------------------

    def _reader_loop(self, handle: ShardHandle, conn: Any) -> None:
        """Drain one incarnation's pipe until EOF.

        Bound to the connection, not the handle: after a respawn the
        old reader sees EOF on the old pipe and exits while the new
        incarnation gets its own thread.
        """
        while True:
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                with handle._lock:  # repro: allow[LOCK-001] conn identity check and link_down write must be one atomic step against adopt()
                    if handle._conn is conn:
                        handle._link_down = True
                return
            self.dispatch_message(handle, blob)

    def dispatch_message(self, handle: ShardHandle, blob: bytes) -> None:
        """Decode and route one shard → hub frame (also the unit-test
        entry for driving fake shards)."""
        now = self.clock()
        try:
            rid, body = shardwire.decode_message(blob)
        except shardwire.ShardWireError as error:
            rid = shardwire.peek_rid(blob)
            self._on_message(handle, rid, {
                "type": "result",
                "_corrupt": f"{error}",
            })
            return
        kind = body["type"]
        if kind == "heartbeat":
            handle.note_heartbeat(body, now)
        elif kind == "ready":
            handle.mark_ready(body, now)
            logger.info(
                "shard %d: ready (pid=%s, %d plans + %d bases replayed)",
                handle.index, handle.pid,
                handle.replayed_plans, handle.replayed_bases,
            )
            if self._on_ready is not None:
                self._on_ready(handle)
        elif kind == "bye":
            handle.note_bye()
        else:
            handle.note_heartbeat({}, now)  # any frame proves liveness
            self._on_message(handle, rid, body)

    # -- the control loop ----------------------------------------------

    def tick(self, now: float | None = None) -> None:
        """One supervision pass: detect, dispose, respawn."""
        if now is None:
            now = self.clock()
        for handle in self.handles:
            state = handle.state
            if state is ShardState.DEAD:
                if self.respawn and not self.stopping and \
                        handle.respawn_due(now):
                    handle.respawns += 1
                    self.respawns_total += 1
                    self.spawn(handle)
                continue
            reason = self._death_reason(handle, state, now)
            if reason is not None:
                self._handle_death(handle, reason, now)

    def _death_reason(
        self, handle: ShardHandle, state: ShardState, now: float
    ) -> str | None:
        with handle._lock:  # repro: allow[LOCK-001] multi-field liveness predicate must read one consistent snapshot
            process = handle._process
            link_down = handle._link_down
            said_bye = handle._said_bye
            beat_age = now - handle._last_heartbeat
            spawn_age = now - handle._spawned_at
        if said_bye and state is ShardState.DRAINING:
            return None  # clean drain exit, reaped by the front end
        if process is not None and not process.is_alive():
            code = getattr(process, "exitcode", None)
            return f"process exited (exitcode={code})"
        if link_down:
            return "pipe closed"
        if state is ShardState.STARTING and spawn_age > self.spawn_timeout:
            return f"no ready within {self.spawn_timeout:.1f}s"
        if (
            state in (ShardState.READY, ShardState.DRAINING)
            and beat_age > self.heartbeat_timeout
        ):
            return (
                f"heartbeat silent {beat_age:.2f}s "
                f"(timeout {self.heartbeat_timeout:.2f}s)"
            )
        return None

    def _handle_death(
        self, handle: ShardHandle, reason: str, now: float
    ) -> None:
        reaped = handle.declare_dead(now)
        if reaped is None:
            return  # another thread already declared it
        process, conn = reaped
        self.kills += 1
        handle.breaker.record_failure()
        self._reap(process, conn, kill=True)
        inflight = handle.take_inflight()
        logger.error(
            "shard %d declared dead: %s (%d in flight)",
            handle.index, reason, len(inflight),
        )
        if not self.stopping and self.respawn:
            streak = max(1, handle.failure_streak())
            backoff = min(
                self.respawn_backoff_max,
                self.respawn_backoff * (2 ** (streak - 1)),
            )
            handle.schedule_respawn(now + backoff)
        # Disposition last: the front end may immediately re-offer onto
        # healthy shards, and the respawn schedule above must already
        # stand so a full ring loss still heals.
        self._on_failure(handle, inflight, reason)

    @staticmethod
    def _reap(process: Any, conn: Any, kill: bool) -> None:
        try:
            if kill and process is not None and process.is_alive():
                process.kill()
            if process is not None:
                process.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass
        try:
            if conn is not None:
                conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # -- introspection -------------------------------------------------

    def healthy(self) -> set[int]:
        return {h.index for h in self.handles if h.is_ready()}

    def handle(self, index: int) -> ShardHandle:
        return self.handles[index]

    def health(self) -> dict[str, Any]:
        now = self.clock()
        per_shard = {
            str(h.index): h.health(now) for h in self.handles
        }
        healthy = sum(
            1 for row in per_shard.values() if row["state"] == "ready"
        )
        return {
            "shards": per_shard,
            "healthy_shards": healthy,
            "total_shards": len(self.handles),
            "kills": self.kills,
            "respawns": self.respawns_total,
        }
