"""Declarative module-layering manifest for the ARCH rule family.

Each :class:`LayerSpec` binds a dotted-module pattern to either a
*forbidden* list (prefixes the layer may never import — ARCH-001) or an
*exhaustive allowlist* (dependency-light leaves that may import nothing
else — ARCH-002; the standard library is always allowed).  Patterns use
``fnmatch`` syntax against dotted names; a spec for ``repro.serve``
matches the package module itself, ``repro.serve.*`` its submodules —
list both to cover a whole package.

The manifest encodes the ROADMAP's architecture invariants:

* engines are published through :mod:`repro.api` only — the serving
  layer, harness and CLI never reach into ``milp.simplex`` or the DP
  engines directly;
* ``repro.serve`` layers on ``repro.api`` plus the two sanctioned
  ``milp`` surfaces (``lp_backend``'s pool/knobs and
  ``branch_and_bound``'s ``SolverOptions``);
* engine code never imports upward into the service/serving layers;
* ``repro.faultinject``, ``repro.cancel``, ``repro.obs``,
  ``repro.store.serde`` and ``repro.devtools`` stay dependency-light so
  every layer can import them without cycles.

Checks are on *direct* imports only (no transitive closure): each
module is accountable for what it names, and the transitive picture is
the union of the per-module ones.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from fnmatch import fnmatchcase

__all__ = ["DEFAULT_MANIFEST", "LayerSpec", "is_stdlib", "matches"]

#: Third-party packages baked into the runtime image; allowed wherever
#: the standard library is (they are this project's numerics floor).
NUMERIC_STACK = ("numpy", "scipy")


def is_stdlib(module: str) -> bool:
    """Whether ``module``'s top-level package ships with CPython."""
    top = module.split(".", 1)[0]
    return top in sys.stdlib_module_names


@dataclass(frozen=True)
class LayerSpec:
    """Import constraints for one layer.

    ``forbidden`` — import-prefix denylist (ARCH-001).
    ``allowed_only`` — exhaustive prefix allowlist on top of the stdlib
    (ARCH-002); ``None`` means unconstrained.
    ``reason`` — one line of why, quoted in findings so a violation
    message teaches the invariant it broke.
    """

    pattern: str
    forbidden: tuple[str, ...] = ()
    allowed_only: tuple[str, ...] | None = None
    reason: str = ""


def matches(module: str, prefix: str) -> bool:
    """Whether ``module`` is ``prefix`` itself or nested under it."""
    return module == prefix or module.startswith(prefix + ".")


def spec_matches(spec: LayerSpec, module: str) -> bool:
    return fnmatchcase(module, spec.pattern)


DEFAULT_MANIFEST: tuple[LayerSpec, ...] = (
    # -- serving layer: repro.api plus two sanctioned milp surfaces ----
    LayerSpec(
        pattern="repro.serve*",
        forbidden=(
            "repro.milp.simplex",
            "repro.milp.branch_and_bound.BranchAndBoundSolver",
            "repro.dp",
            "repro.core",
            "repro.harness",
            "repro.sql",
            "repro.exec",
            "repro.cli",
        ),
        reason=(
            "repro.serve layers strictly on repro.api; engine internals "
            "(milp.simplex, the DP engines, core.optimizer) are reached "
            "only through the registry"
        ),
    ),
    # -- sharded tier: child side never imports hub side ---------------
    LayerSpec(
        pattern="repro.serve.shard",
        forbidden=(
            "repro.serve.sharded",
            "repro.serve.supervisor",
            "repro.serve.ring",
            "repro.serve.http",
        ),
        reason=(
            "the shard child process runs only the inner server; "
            "pulling hub-side modules (supervisor, ring, front end) "
            "across fork/spawn would re-create the hub stack inside "
            "every child and invert the supervision dependency"
        ),
    ),
    LayerSpec(
        pattern="repro.serve.shardwire",
        forbidden=(
            "repro.serve.shard",
            "repro.serve.sharded",
            "repro.serve.supervisor",
            "repro.serve.http",
        ),
        reason=(
            "the wire format sits below both ends of the pipe: it may "
            "reference the result types it frames (serve.server, "
            "store.serde) but never the processes exchanging its "
            "frames, or hub and child could not both import it"
        ),
    ),
    # -- public surface: must not depend on layers above it ------------
    LayerSpec(
        pattern="repro.api*",
        forbidden=("repro.serve", "repro.harness", "repro.cli", "repro.devtools"),
        reason=(
            "repro.api is the one public surface; it may wrap engines "
            "but never the serving/harness layers built on top of it"
        ),
    ),
    # -- engines: never reach up into service/serving/harness ----------
    LayerSpec(
        pattern="repro.milp*",
        forbidden=("repro.serve", "repro.api", "repro.harness", "repro.cli"),
        reason=(
            "engine code is published through repro.api adapters; an "
            "engine importing the service layer inverts the dependency"
        ),
    ),
    LayerSpec(
        pattern="repro.dp*",
        forbidden=("repro.serve", "repro.api", "repro.harness", "repro.cli"),
        reason="DP engines are published through repro.api adapters",
    ),
    # -- data layer: pure, imports no optimizer or serving code --------
    LayerSpec(
        pattern="repro.catalog*",
        forbidden=("repro.serve", "repro.api", "repro.milp", "repro.dp",
                   "repro.harness", "repro.store"),
        reason="the catalog is the shared data layer every engine builds on",
    ),
    LayerSpec(
        pattern="repro.plans*",
        forbidden=("repro.serve", "repro.api", "repro.milp", "repro.dp",
                   "repro.harness", "repro.store"),
        reason="plan objects are the shared vocabulary below every engine",
    ),
    # -- persistence: below serve, beside api ---------------------------
    LayerSpec(
        pattern="repro.store*",
        forbidden=("repro.serve", "repro.harness", "repro.cli",
                   "repro.milp.simplex"),
        reason=(
            "the store is a leaf the server and service call into; it "
            "never calls back up, and bases stay opaque snapshots "
            "(lp_backend surfaces only, no simplex internals)"
        ),
    ),
    # -- dependency-light leaves (ARCH-002) ----------------------------
    LayerSpec(
        pattern="repro.faultinject*",
        allowed_only=NUMERIC_STACK,
        reason=(
            "faultinject is a dependency leaf every layer may import "
            "without creating a cycle (PR 6); stdlib + numpy only"
        ),
    ),
    LayerSpec(
        pattern="repro.cancel",
        allowed_only=("repro.exceptions",),
        reason=(
            "cancel tokens are threaded through every layer; the module "
            "must stay importable from the deepest solver loop"
        ),
    ),
    LayerSpec(
        pattern="repro.store.serde",
        allowed_only=NUMERIC_STACK + (
            # The wire format references the data-model types it
            # round-trips — and nothing heavier (no backends, no
            # serving, no simplex internals).
            "repro.api.result",
            "repro.catalog",
            "repro.exceptions",
            "repro.milp.lp_backend",
            "repro.milp.solution",
            "repro.plans",
        ),
        reason=(
            "store.serde stays dependency-light (PR 7): data-model "
            "types only, so both store backends and the tests can "
            "import it without dragging in the serving stack"
        ),
    ),
    LayerSpec(
        pattern="repro.obs*",
        allowed_only=(),
        reason=(
            "tracing is instrumented from every layer (simplex pivots "
            "to the HTTP front end); like faultinject it must be a "
            "cycle-free leaf — stdlib only, disabled path is one "
            "global read"
        ),
    ),
    LayerSpec(
        pattern="repro.devtools*",
        allowed_only=(),
        reason=(
            "the analyzer must keep working when the code it checks is "
            "broken; stdlib only"
        ),
    ),
    LayerSpec(
        pattern="repro.exceptions",
        allowed_only=(),
        reason="the exception hierarchy is imported by every layer",
    ),
)
