"""Static analysis enforcing the ROADMAP's architecture invariants.

The repository's hard rules — one public surface through
:mod:`repro.api`, simplex work behind ``SimplexSession``, lock
discipline in the ten lock-owning modules, dependency-light leaves,
documented ``REPRO_*`` knobs — existed only as prose until this
package.  ``repro analyze`` derives the dependency/lock/knob structure
from the AST and gates CI on it, so a PR that regresses an invariant
fails mechanically instead of slipping past review.

Four rule families (see ``docs/development.md`` for the catalog):

* **ARCH** — module layering from a declarative manifest
  (:mod:`repro.devtools.manifest`), dependency-light leaf enforcement,
  and no ``SimplexSession`` construction outside ``repro.milp``.
* **LOCK** — per-class lock discipline (attributes written under
  ``with self._lock`` must not be touched off-lock) and a cross-class
  lock-acquisition-order graph that fails on cycles.
* **NUM** — numerics and robustness lint: float ``==``/``!=`` in
  ``milp/``, unseeded global RNG use, silent ``except Exception``
  swallows, undocumented ``InvalidStateError`` swallows.
* **REG** — registry conformance: every ``REPRO_*`` environment knob
  read in code must appear in the ``docs/operations.md`` knob table,
  and every metric name used in ``repro.serve`` must be declared in
  :data:`repro.serve.metrics.KNOWN_METRICS`.

Findings are suppressed in place with a reasoned comment::

    value = self._cache  # repro: allow[LOCK-001] snapshot read; GIL-atomic

A suppression without a reason is itself a finding (``SUP-001``), so
the committed tree can never accumulate unexplained exemptions.

This package is itself a dependency leaf: stdlib ``ast`` only, no
imports from the rest of ``repro`` (the analyzer must keep working
when the code it checks is broken).
"""

from __future__ import annotations

from repro.devtools.engine import (
    AnalysisReport,
    Finding,
    ModuleInfo,
    Suppression,
    load_module,
    parse_suppressions,
    run_analysis,
)
from repro.devtools.manifest import DEFAULT_MANIFEST, LayerSpec
from repro.devtools.report import render_json, render_stats, render_text
from repro.devtools.rules import all_rules, rule_catalog

__all__ = [
    "AnalysisReport",
    "DEFAULT_MANIFEST",
    "Finding",
    "LayerSpec",
    "ModuleInfo",
    "Suppression",
    "all_rules",
    "load_module",
    "parse_suppressions",
    "render_json",
    "render_stats",
    "render_text",
    "rule_catalog",
    "run_analysis",
]
