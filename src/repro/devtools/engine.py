"""Rule engine: module loading, suppression comments, the analysis driver.

The engine is deliberately rule-agnostic.  It knows how to

* walk a repository and turn every ``.py`` file into a
  :class:`ModuleInfo` (dotted module name, source, parsed AST, and the
  file's suppression comments);
* match findings against suppressions (``# repro: allow[RULE-ID]
  reason``, same line or the line directly above);
* run a set of rules — per-module rules see one file at a time,
  project rules see the whole tree (the lock-order graph needs global
  context) — and fold everything into an :class:`AnalysisReport`.

Rules live in :mod:`repro.devtools.rules`; what counts as a violation
is entirely theirs.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleInfo",
    "Rule",
    "ProjectRule",
    "Suppression",
    "load_module",
    "load_tree",
    "parse_suppressions",
    "run_analysis",
]

#: ``# repro: allow[RULE-ID[,RULE-ID...]] reason`` — the reason is
#: mandatory; :data:`SUP_MISSING_REASON` fires when it is absent.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z0-9,\s-]+)\]\s*(?P<reason>.*)$"
)

#: Engine-level rule ids (suppression hygiene is not itself
#: suppressible — an exemption must always carry its reason).
SUP_MISSING_REASON = "SUP-001"
SUP_UNKNOWN_RULE = "SUP-002"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: str | None = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    path: str = ""

    def covers(self, rule: str, line: int) -> bool:
        """Whether this comment exempts ``rule`` at ``line``.

        A suppression applies to findings on its own line or on the
        line directly below it (a standalone comment above a long
        statement).
        """
        return rule in self.rules and line in (self.line, self.line + 1)


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules need about it."""

    path: Path  # absolute
    relpath: str  # repo-relative, forward slashes
    module: str  # dotted name ("repro.serve.server", "tests.conftest")
    source: str
    tree: ast.Module
    suppressions: tuple[Suppression, ...]

    @property
    def in_package(self) -> bool:
        """Whether this module is part of the shipped ``repro`` package."""
        return self.module == "repro" or self.module.startswith("repro.")


def parse_suppressions(source: str, relpath: str = "") -> tuple[Suppression, ...]:
    """Extract every suppression comment from ``source``.

    Tokenization (not line regexes) keeps ``# repro: allow[...]`` inside
    string literals from registering — rule fixtures embed suppression
    examples in strings.
    """
    out: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            out.append(
                Suppression(
                    line=token.start[0],
                    rules=rules,
                    reason=match.group("reason").strip(),
                    path=relpath,
                )
            )
    except tokenize.TokenError:
        # A file the tokenizer rejects still parses via ast in some
        # edge cases; losing its suppressions only makes the analysis
        # stricter, never unsound.
        pass
    return tuple(out)


def load_module(path: Path, root: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    The dotted module name strips a leading ``src/`` so files under
    ``src/repro`` get their import name; ``tests``/``benchmarks`` files
    get path-derived pseudo-names ("tests.serve.test_server").
    """
    relpath = path.relative_to(root).as_posix()
    parts = list(Path(relpath).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    module = ".".join(parts)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=path,
        relpath=relpath,
        module=module,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source, relpath),
    )


#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist", ".eggs"}

#: Default roots (relative to the repo root) the analyzer scans.
DEFAULT_SCAN_ROOTS = ("src", "tests", "benchmarks", "examples")


def load_tree(
    root: Path, scan_roots: Sequence[str] = DEFAULT_SCAN_ROOTS
) -> list[ModuleInfo]:
    """Every parsable ``.py`` module under ``root``'s scan roots."""
    modules: list[ModuleInfo] = []
    for scan_root in scan_roots:
        base = root / scan_root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            try:
                modules.append(load_module(path, root))
            except (SyntaxError, UnicodeDecodeError):
                # Fixture corpora under tests/ may deliberately hold
                # broken snippets; the meta-test keeps src/ parseable.
                continue
    return modules


class Rule:
    """Base class for per-module rules.

    Subclasses set :attr:`rule_id` / :attr:`title` / :attr:`rationale`
    and implement :meth:`check`.  ``applies`` narrows the scope (most
    rules only look at ``repro.*`` modules, not tests).
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def applies(self, module: ModuleInfo) -> bool:
        return module.in_package

    def check(self, module: ModuleInfo, context: "AnalysisContext") -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule needing the whole tree at once (cross-module graphs)."""

    def check_project(
        self, modules: Sequence[ModuleInfo], context: "AnalysisContext"
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def check(self, module: ModuleInfo, context: "AnalysisContext") -> Iterable[Finding]:
        return ()


@dataclass
class AnalysisContext:
    """Shared inputs rules may consult (repo root, manifest, docs)."""

    root: Path
    manifest: tuple = ()
    #: Knob names documented in the operations runbook's table.
    documented_knobs: frozenset[str] = frozenset()
    #: Metric names declared in ``repro.serve.metrics.KNOWN_METRICS``.
    known_metrics: frozenset[str] = frozenset()


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    root: Path
    findings: list[Finding] = field(default_factory=list)
    #: Rule ids that actually ran (fixture tests assert coverage).
    active_rules: tuple[str, ...] = ()
    files_scanned: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def clean(self) -> bool:
        return not self.unsuppressed

    def stats(self) -> dict:
        """Per-rule ``{"findings": n, "suppressed": m}`` counts.

        Every active rule gets a row (zeros included) so the committed
        baseline shows coverage, not just noise.
        """
        rows: dict[str, dict[str, int]] = {
            rule: {"findings": 0, "suppressed": 0} for rule in self.active_rules
        }
        for finding in self.findings:
            row = rows.setdefault(finding.rule, {"findings": 0, "suppressed": 0})
            row["suppressed" if finding.suppressed else "findings"] += 1
        return {rule: rows[rule] for rule in sorted(rows)}


def _apply_suppressions(
    findings: Iterable[Finding],
    module: ModuleInfo,
    known_rules: frozenset[str],
) -> list[Finding]:
    """Mark suppressed findings; emit suppression-hygiene findings."""
    out: list[Finding] = []
    valid = [s for s in module.suppressions if s.reason]
    for finding in findings:
        covering = next(
            (s for s in valid if s.covers(finding.rule, finding.line)), None
        )
        if covering is not None:
            finding = replace(
                finding, suppressed=True, suppression_reason=covering.reason
            )
        out.append(finding)
    for suppression in module.suppressions:
        if not suppression.reason:
            out.append(
                Finding(
                    rule=SUP_MISSING_REASON,
                    path=module.relpath,
                    line=suppression.line,
                    col=0,
                    message=(
                        "suppression without a reason: every "
                        "`# repro: allow[...]` must say why"
                    ),
                )
            )
        for rule in suppression.rules:
            if known_rules and rule not in known_rules:
                out.append(
                    Finding(
                        rule=SUP_UNKNOWN_RULE,
                        path=module.relpath,
                        line=suppression.line,
                        col=0,
                        message=f"suppression names unknown rule {rule!r}",
                    )
                )
    return out


def run_analysis(
    root: Path,
    rules: Sequence[Rule],
    context: AnalysisContext | None = None,
    modules: Sequence[ModuleInfo] | None = None,
) -> AnalysisReport:
    """Run ``rules`` over the tree at ``root``.

    ``modules`` overrides the default tree walk (rule fixtures hand in
    synthetic modules directly).
    """
    if context is None:
        context = AnalysisContext(root=root)
    if modules is None:
        modules = load_tree(root)
    known_rules = frozenset(rule.rule_id for rule in rules) | {
        SUP_MISSING_REASON,
        SUP_UNKNOWN_RULE,
    }
    report = AnalysisReport(
        root=root,
        active_rules=tuple(sorted(rule.rule_id for rule in rules)),
        files_scanned=len(modules),
    )
    per_module: dict[str, list[Finding]] = {m.relpath: [] for m in modules}
    for rule in rules:
        if isinstance(rule, ProjectRule):
            scoped = [m for m in modules if rule.applies(m)]
            for finding in rule.check_project(scoped, context):
                per_module.setdefault(finding.path, []).append(finding)
        else:
            for module in modules:
                if not rule.applies(module):
                    continue
                for finding in rule.check(module, context):
                    per_module.setdefault(module.relpath, []).append(finding)
    by_relpath = {m.relpath: m for m in modules}
    for relpath, found in per_module.items():
        module = by_relpath.get(relpath)
        if module is None:
            report.findings.extend(found)
            continue
        report.findings.extend(
            _apply_suppressions(found, module, known_rules)
        )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
