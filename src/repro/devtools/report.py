"""Reporters: text for humans, JSON for CI, stats for the baseline.

The JSON shape is a stable contract (tests pin it):

.. code-block:: json

    {
      "version": 1,
      "clean": true,
      "files_scanned": 63,
      "rules": ["ARCH-001", "..."],
      "findings": [
        {"rule": "...", "path": "...", "line": 1, "col": 0,
         "message": "...", "suppressed": false,
         "suppression_reason": null}
      ],
      "stats": {"ARCH-001": {"findings": 0, "suppressed": 0}}
    }

``render_stats`` is the same ``stats`` object alone — committed as
``BENCH_analyze.json`` so a PR that adds findings or suppressions shows
up in the diff.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.devtools.engine import AnalysisReport, Finding

__all__ = ["render_json", "render_stats", "render_text"]

#: Bumped when the JSON findings shape changes incompatibly.
SCHEMA_VERSION = 1


def _payload(report: AnalysisReport) -> dict:
    return {
        "version": SCHEMA_VERSION,
        "clean": report.clean,
        "files_scanned": report.files_scanned,
        "rules": list(report.active_rules),
        "findings": [asdict(f) for f in report.findings],
        "stats": report.stats(),
    }


def render_json(report: AnalysisReport) -> str:
    return json.dumps(_payload(report), indent=2, sort_keys=True) + "\n"


def render_stats(report: AnalysisReport) -> str:
    return json.dumps(
        {
            "version": SCHEMA_VERSION,
            "files_scanned": report.files_scanned,
            "stats": report.stats(),
        },
        indent=2,
        sort_keys=True,
    ) + "\n"


def _line(finding: Finding) -> str:
    flag = " [suppressed: {}]".format(finding.suppression_reason) \
        if finding.suppressed else ""
    return f"{finding.location()}: {finding.rule}: {finding.message}{flag}"


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """Human-readable report; suppressed findings only with ``verbose``."""
    lines: list[str] = []
    shown = report.findings if verbose else report.unsuppressed
    for finding in shown:
        lines.append(_line(finding))
    n_sup = len(report.suppressed)
    summary = (
        f"{len(report.unsuppressed)} finding(s), {n_sup} suppressed, "
        f"{report.files_scanned} file(s) scanned, "
        f"{len(report.active_rules)} rule(s)"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines) + "\n"
