"""NUM family: numerics and error-handling hygiene.

* **NUM-001** — bare ``==``/``!=`` between float-ish operands inside
  ``repro.milp`` — after pivoting, quantities carry rounding error and
  must be compared against a tolerance.  Comparisons against a *zero*
  constant (``0``, ``0.0``, ``-0.0``) are exempt by design: the solver
  deliberately tests exact structural zeros (untouched sparsity).
* **NUM-002** — unseeded global RNG (``random.random()``,
  ``np.random.rand()``...) outside tests: the paper's benchmarks are
  reproducible because every stochastic component takes an explicit
  seed (``random.Random(seed)``, ``default_rng(seed)``).
* **NUM-003** — ``except Exception`` whose body neither logs, re-raises,
  nor records the error: a silently swallowed exception is invisible in
  production and unreachable for tests.
* **NUM-004** — ``except InvalidStateError`` swallowed with no comment
  of intent: the serving layer has exactly one documented
  idempotent-resolve site; new ones must justify themselves.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.engine import AnalysisContext, Finding, ModuleInfo, Rule

__all__ = [
    "ExceptSwallowRule",
    "FloatEqualityRule",
    "InvalidStateSwallowRule",
    "UnseededRandomRule",
]


def _is_zero_constant(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and node.value == 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_zero_constant(node.operand)
    return False


def _is_floatish(node: ast.expr) -> bool:
    """Whether ``node`` syntactically smells like a float value.

    Purely syntactic (no type inference): float literals, names/attrs
    with numeric-flavoured identifiers, arithmetic on either, and calls
    to obvious float producers.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call):
        name = (
            node.func.id if isinstance(node.func, ast.Name)
            else node.func.attr if isinstance(node.func, ast.Attribute)
            else ""
        )
        return name in {"float", "dot", "sum", "norm", "abs", "min", "max"}
    if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
        ident = _identifier(node)
        return any(hint in ident for hint in _FLOAT_HINTS)
    return False


#: Identifier fragments that mark a value as floating-point in this
#: codebase's naming conventions (objective values, costs, tableau
#: entries, tolerances, ratios, bounds).
_FLOAT_HINTS = (
    "obj", "cost", "value", "val", "coef", "coeff", "weight", "bound",
    "ratio", "tol", "eps", "pivot", "reduced", "slack", "rhs", "lhs",
    "theta", "delta", "gap", "score", "alpha", "beta", "gamma",
)


def _identifier(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id.lower()
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Subscript):
        return _identifier(node.value)
    return ""


class FloatEqualityRule(Rule):
    rule_id = "NUM-001"
    title = "bare float equality in solver code"
    rationale = (
        "after Forrest-Tomlin updates and repeated pivots, solver "
        "quantities carry O(eps) error; `a == b` silently becomes "
        "`False` on a different BLAS — compare |a-b| <= tol (zero "
        "constants exempt: structural zeros are exact by design)"
    )

    def applies(self, module: ModuleInfo) -> bool:
        return module.module.startswith("repro.milp")

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_zero_constant(left) or _is_zero_constant(right):
                    continue
                if not (_is_floatish(left) or _is_floatish(right)):
                    continue
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "float equality without tolerance in "
                        f"{module.module}; use abs(a - b) <= tol "
                        "(nonzero constants and computed values both "
                        "carry rounding error)"
                    ),
                )


#: ``module attr`` pairs that draw from the *global*, unseeded RNG.
_GLOBAL_RNG_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "rand", "randn",
    "permutation", "standard_normal",
}


class UnseededRandomRule(Rule):
    rule_id = "NUM-002"
    title = "unseeded global RNG in package code"
    rationale = (
        "figure-level reproducibility (PAPER.md) requires every "
        "stochastic component to take an explicit seed; the global "
        "random/np.random state is process-wide and order-dependent — "
        "use random.Random(seed) or np.random.default_rng(seed)"
    )

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _GLOBAL_RNG_FUNCS:
                continue
            base = func.value
            is_global_random = (
                isinstance(base, ast.Name) and base.id == "random"
            ) or (
                # np.random.X / numpy.random.X
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in {"np", "numpy"}
            )
            if not is_global_random:
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{module.module} draws from the unseeded global RNG "
                    f"({ast.unparse(func)}); construct a seeded generator "
                    "instead"
                ),
            )


def _body_handles(handler: ast.ExceptHandler) -> bool:
    """Whether an except body logs, re-raises, or records the error."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = (
                node.func.attr if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name)
                else ""
            )
            if name in {
                "debug", "info", "warning", "error", "exception",
                "critical", "log", "warn", "print", "record_error",
                "set_exception", "increment", "inc", "observe",
            }:
                return True
    # Binding the exception into state (``self.last_error = exc`` or a
    # results list) also counts as handling it.
    if handler.name:
        for node in ast.walk(handler):
            if (
                isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
    return False


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = t.elts if isinstance(t, ast.Tuple) else [t]
    for name in names:
        ident = (
            name.id if isinstance(name, ast.Name)
            else name.attr if isinstance(name, ast.Attribute)
            else ""
        )
        if ident in {"Exception", "BaseException"}:
            return True
    return False


class ExceptSwallowRule(Rule):
    rule_id = "NUM-003"
    title = "broad except swallows the error silently"
    rationale = (
        "`except Exception: pass` hides solver and serving bugs as "
        "silent no-ops; broad handlers must log, re-raise, count, or "
        "bind the error somewhere observable"
    )

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _body_handles(node):
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"broad except in {module.module} swallows the error "
                    "without logging, re-raising, or recording it"
                ),
            )


class InvalidStateSwallowRule(Rule):
    rule_id = "NUM-004"
    title = "InvalidStateError swallowed"
    rationale = (
        "InvalidStateError means a Future was resolved twice; exactly "
        "one site (the cancel/worker resolve race in serve.server) may "
        "treat that as idempotent — anywhere else it hides a real "
        "double-resolution bug"
    )

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            names = (
                node.type.elts if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            hit = any(
                (n.id if isinstance(n, ast.Name)
                 else n.attr if isinstance(n, ast.Attribute) else "")
                == "InvalidStateError"
                for n in names
            )
            if not hit or _body_handles(node):
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "InvalidStateError swallowed; double-resolving a "
                    "Future is a bug unless this is the documented "
                    "idempotent-resolve site (suppress with a reason)"
                ),
            )
