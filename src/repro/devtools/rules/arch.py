"""ARCH family: module layering from the declarative manifest.

* **ARCH-001** — a module imports something its layer forbids.
* **ARCH-002** — a dependency-light leaf imports outside its exhaustive
  allowlist (stdlib and same-package imports always pass).
* **ARCH-003** — ``SimplexSession`` constructed (or imported) outside
  ``repro.milp``: simplex work lives behind the ``LPSession`` contract,
  reached via ``create_session`` — never built directly.

Imports are collected from the whole AST (function-level imports
count: a lazy import is still a dependency).  ``if TYPE_CHECKING:``
blocks are exempt from ARCH-002 only — a type-only name does not drag
the dependency in at runtime, but it still crosses a layering fence,
so ARCH-001 sees it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.devtools.engine import AnalysisContext, Finding, ModuleInfo, Rule
from repro.devtools.manifest import (
    DEFAULT_MANIFEST,
    LayerSpec,
    is_stdlib,
    matches,
    spec_matches,
)

__all__ = [
    "DependencyLightRule",
    "LayeringRule",
    "SessionOwnershipRule",
    "collect_imports",
]


@dataclass(frozen=True)
class ImportedName:
    """One imported target: the module, and for ``from`` imports the
    symbol-qualified name too (so the manifest can ban single symbols)."""

    target: str
    qualified: str
    line: int
    col: int
    type_checking_only: bool


def _type_checking_lines(tree: ast.Module) -> set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` bodies."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.id if isinstance(test, ast.Name)
            else test.attr if isinstance(test, ast.Attribute)
            else None
        )
        if name != "TYPE_CHECKING":
            continue
        for child in node.body:
            for sub in ast.walk(child):
                if hasattr(sub, "lineno"):
                    lines.add(sub.lineno)
    return lines


def _resolve_relative(module: ModuleInfo, node: ast.ImportFrom) -> str | None:
    """Absolute dotted name for a relative ``from . import`` target."""
    package = module.module.split(".")
    # A package __init__ resolves level-1 against itself; a plain
    # module against its parent.
    is_init = module.path.name == "__init__.py"
    drop = node.level - (1 if is_init else 0)
    if drop > len(package):
        return None
    base = package[: len(package) - drop] if drop else package
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def collect_imports(module: ModuleInfo) -> Iterator[ImportedName]:
    """Every import in ``module``, symbol-qualified where possible."""
    type_only = _type_checking_lines(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield ImportedName(
                    target=alias.name,
                    qualified=alias.name,
                    line=node.lineno,
                    col=node.col_offset,
                    type_checking_only=node.lineno in type_only,
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                target = _resolve_relative(module, node)
                if target is None:
                    continue
            else:
                target = node.module or ""
            if not target:
                continue
            for alias in node.names:
                yield ImportedName(
                    target=target,
                    qualified=f"{target}.{alias.name}",
                    line=node.lineno,
                    col=node.col_offset,
                    type_checking_only=node.lineno in type_only,
                )


def _specs_for(module: str, manifest: Iterable[LayerSpec]) -> list[LayerSpec]:
    return [spec for spec in manifest if spec_matches(spec, module)]


def _manifest(context: AnalysisContext) -> tuple[LayerSpec, ...]:
    return tuple(context.manifest) or DEFAULT_MANIFEST


class LayeringRule(Rule):
    rule_id = "ARCH-001"
    title = "import crosses a layering fence"
    rationale = (
        "the manifest in repro.devtools.manifest encodes which layers "
        "may see which; a forbidden import couples modules the "
        "architecture keeps apart (ROADMAP: one public surface)"
    )

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        for spec in _specs_for(module.module, _manifest(context)):
            if not spec.forbidden:
                continue
            for imported in collect_imports(module):
                hit = next(
                    (
                        prefix for prefix in spec.forbidden
                        if matches(imported.target, prefix)
                        or matches(imported.qualified, prefix)
                    ),
                    None,
                )
                if hit is None:
                    continue
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=imported.line,
                    col=imported.col,
                    message=(
                        f"{module.module} imports {imported.qualified}, "
                        f"forbidden for layer {spec.pattern!r}: {spec.reason}"
                    ),
                )


class DependencyLightRule(Rule):
    rule_id = "ARCH-002"
    title = "dependency-light leaf imports outside its allowlist"
    rationale = (
        "leaf modules (faultinject, cancel, store.serde, devtools) are "
        "importable from every layer precisely because they import "
        "almost nothing; one convenience import re-creates the cycles "
        "they exist to break"
    )

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        for spec in _specs_for(module.module, _manifest(context)):
            if spec.allowed_only is None:
                continue
            own_package = spec.pattern.rstrip("*").rstrip(".")
            for imported in collect_imports(module):
                if imported.type_checking_only:
                    continue
                if is_stdlib(imported.target):
                    continue
                if own_package and matches(imported.target, own_package):
                    continue
                if any(
                    matches(imported.target, prefix)
                    for prefix in spec.allowed_only
                ):
                    continue
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=imported.line,
                    col=imported.col,
                    message=(
                        f"{module.module} imports {imported.target}, outside "
                        f"the {spec.pattern!r} allowlist "
                        f"{sorted(spec.allowed_only)}: {spec.reason}"
                    ),
                )


class SessionOwnershipRule(Rule):
    rule_id = "ARCH-003"
    title = "SimplexSession constructed outside repro.milp"
    rationale = (
        "simplex work lives in SimplexSession behind the stateful "
        "LPSession contract (ROADMAP); outside code obtains sessions "
        "via LPBackend.create_session, never by direct construction"
    )

    #: The engine class whose construction is milp-private.
    _owned = "SimplexSession"

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        if matches(module.module, "repro.milp"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name != self._owned:
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{module.module} constructs {self._owned} directly; "
                    "use LPBackend.create_session(form) so sessions stay "
                    "behind the LPSession contract"
                ),
            )
