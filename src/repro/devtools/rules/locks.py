"""LOCK family: concurrency discipline inferred from the AST.

* **LOCK-001** — per class owning a ``threading.Lock``/``RLock``/
  ``Condition``: every ``self._x`` attribute *written* inside
  ``with self._lock`` is treated as lock-guarded, and any read or write
  of it on a path that does not hold the lock is flagged.
* **LOCK-002** — a cross-class lock-acquisition-order graph: an edge
  ``A → B`` means some method of ``A`` calls into a lock-acquiring
  method of a ``B`` instance *while holding* ``A``'s lock.  Cycles are
  deadlock potential and fail the analysis; so does re-acquiring a
  non-reentrant lock the caller already holds.

What counts as "holding the lock":

* lexically inside ``with self._lock:`` (a ``threading.Condition``
  constructed over a lock joins that lock's group — holding the
  condition holds the lock);
* methods whose name ends in ``_locked`` (the repo's documented
  caller-holds-the-lock convention, e.g.
  ``OptimizationServer._spawn_worker_locked``);
* private helpers *provably* only called with the lock held — a
  fixpoint over the intra-class call graph, so ``CircuitBreaker._trip``
  (only ever called under ``self._lock``) needs no annotation.

Construction paths (``__init__``/``__post_init__``/``__new__``/
``__del__``) are exempt: an object under construction is thread-local.
The inference is intraprocedural beyond that — accesses inside nested
functions/lambdas are treated as lock-free (a closure may run later,
without the lock), which is conservative in the right direction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.devtools.engine import (
    AnalysisContext,
    Finding,
    ModuleInfo,
    ProjectRule,
    Rule,
)

__all__ = ["LockDisciplineRule", "LockOrderRule", "scan_class"]

#: Constructors that make an attribute a lock (``threading.X`` or a
#: bare ``X`` import).
_LOCK_FACTORIES = {"Lock", "RLock"}
_CONDITION_FACTORIES = {"Condition"}

#: Methods exempt from discipline checks: the object is thread-local.
_CONSTRUCTION = {"__init__", "__new__", "__post_init__", "__del__"}


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``x`` for an expression ``self.x``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class Access:
    attr: str
    line: int
    col: int
    is_write: bool
    held: frozenset[str]  # lexically-held lock groups at the access


@dataclass
class CallSite:
    callee: str  # intra-class: self.<callee>(...)
    held: frozenset[str]


@dataclass
class MethodScan:
    name: str
    accesses: list[Access] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: Lock groups this method lexically acquires (``with self.X``).
    acquires: set[str] = field(default_factory=set)
    #: ``(line, col, group)`` for each lexical acquisition, used by
    #: LOCK-002's re-acquisition check.
    acquisitions: list[tuple[int, int, str, frozenset]] = field(
        default_factory=list
    )
    #: Calls on lock-owning *other* objects: (attr, method, line, col, held).
    foreign_calls: list[tuple[str, str, int, int, frozenset]] = field(
        default_factory=list
    )
    declared_locked: bool = False


@dataclass
class ClassScan:
    name: str
    module: ModuleInfo
    line: int
    #: lock attr -> group id (conditions alias their lock's group).
    lock_groups: dict[str, str] = field(default_factory=dict)
    methods: dict[str, MethodScan] = field(default_factory=dict)
    #: instance attr -> simple class name (``self.x = ClassName(...)``).
    instance_attrs: dict[str, str] = field(default_factory=dict)
    #: Names of methods defined directly on the class body.
    methods_names: set[str] = field(default_factory=set)

    @property
    def groups(self) -> frozenset[str]:
        return frozenset(self.lock_groups.values())


def _find_lock_assignments(cls: ast.ClassDef, scan: ClassScan) -> None:
    """First pass: which ``self.X`` attributes are locks/conditions,
    and which hold instances of other classes."""
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        attr = _self_attr(node.targets[0])
        if attr is None or not isinstance(node.value, ast.Call):
            continue
        factory = _call_name(node.value.func)
        if factory in _LOCK_FACTORIES:
            scan.lock_groups[attr] = attr
        elif factory in _CONDITION_FACTORIES:
            arg_attr = (
                _self_attr(node.value.args[0]) if node.value.args else None
            )
            if arg_attr is not None and arg_attr in scan.lock_groups:
                scan.lock_groups[attr] = scan.lock_groups[arg_attr]
            else:
                scan.lock_groups[attr] = attr
        elif factory is not None and factory[:1].isupper():
            scan.instance_attrs[attr] = factory


class _MethodWalker:
    """Statement walker tracking lexically-held lock groups."""

    def __init__(self, scan: ClassScan, method: MethodScan) -> None:
        self.scan = scan
        self.method = method

    def walk(self, nodes: Sequence[ast.stmt], held: frozenset[str]) -> None:
        for node in nodes:
            self._walk_stmt(node, held)

    def _walk_stmt(self, node: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(node, ast.With):
            inner = held
            for item in node.items:
                attr = _self_attr(item.context_expr)
                group = (
                    self.scan.lock_groups.get(attr) if attr is not None
                    else None
                )
                self._visit_expr(item.context_expr, held, lock_ok=True)
                if group is not None:
                    self.method.acquires.add(group)
                    self.method.acquisitions.append(
                        (node.lineno, node.col_offset, group, inner)
                    )
                    inner = inner | {group}
            self.walk(node.body, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may run later, without the lock.
            self.walk(node.body, frozenset())
            return
        self._walk_children(node, held)

    def _walk_children(self, node: ast.AST, held: frozenset[str]) -> None:
        """Recurse through mixed children (ExceptHandler, match_case,
        ...) preserving the held set for the statements inside them."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child, held)
            elif isinstance(child, ast.expr):
                self._visit_expr(child, held)
            else:
                self._walk_children(child, held)

    def _visit_expr(
        self, node: ast.expr, held: frozenset[str], lock_ok: bool = False
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                # A lambda body is walked with the surrounding held set
                # (ast.walk is flat); deferred-callback races can slip
                # through, but no false positive is created.
                continue
            if isinstance(sub, ast.Call):
                func = sub.func
                attr = _self_attr(func) if isinstance(func, ast.Attribute) else None
                if attr is not None and attr in self.scan.methods_names:
                    self.method.calls.append(CallSite(callee=attr, held=held))
                if (
                    isinstance(func, ast.Attribute)
                    and (owner := _self_attr(func.value)) is not None
                ):
                    self.method.foreign_calls.append(
                        (owner, func.attr, sub.lineno, sub.col_offset, held)
                    )
            if isinstance(sub, ast.Attribute):
                attr = _self_attr(sub)
                if attr is None:
                    continue
                if attr in self.scan.lock_groups and not lock_ok:
                    continue  # the lock object itself is not guarded data
                if attr in self.scan.lock_groups:
                    continue
                is_write = isinstance(sub.ctx, (ast.Store, ast.Del))
                self.method.accesses.append(
                    Access(
                        attr=attr,
                        line=sub.lineno,
                        col=sub.col_offset,
                        is_write=is_write,
                        held=held,
                    )
                )


def scan_class(cls: ast.ClassDef, module: ModuleInfo) -> ClassScan | None:
    """Full scan of one class; ``None`` when it owns no lock."""
    scan = ClassScan(name=cls.name, module=module, line=cls.lineno)
    _find_lock_assignments(cls, scan)
    if not scan.lock_groups:
        return None
    method_defs = [
        node for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    scan.methods_names = {m.name for m in method_defs}
    for node in method_defs:
        method = MethodScan(
            name=node.name,
            declared_locked=node.name.endswith("_locked"),
        )
        scan.methods[node.name] = method
        walker = _MethodWalker(scan, method)
        walker.walk(node.body, frozenset())
    return scan


def _infer_held(scan: ClassScan) -> dict[str, frozenset[str]]:
    """Fixpoint: lock groups every entry to a method is guaranteed to
    hold, from the intra-class call graph."""
    all_groups = scan.groups
    sites: dict[str, list[tuple[str, frozenset[str]]]] = {
        name: [] for name in scan.methods
    }
    for caller, method in scan.methods.items():
        if caller in _CONSTRUCTION:
            continue  # single-threaded; never evidence of lock-holding
        for call in method.calls:
            if call.callee in sites:
                sites[call.callee].append((caller, call.held))
    held: dict[str, frozenset[str]] = {}
    for name, method in scan.methods.items():
        if method.declared_locked:
            held[name] = all_groups
        elif not sites[name]:
            held[name] = frozenset()
        else:
            held[name] = all_groups  # optimistic; intersect downward
    for _ in range(len(scan.methods) + 1):
        changed = False
        for name, method in scan.methods.items():
            if method.declared_locked or not sites[name]:
                continue
            new = all_groups
            for caller, lexical in sites[name]:
                new = new & (lexical | held.get(caller, frozenset()))
            if new != held[name]:
                held[name] = new
                changed = True
        if not changed:
            break
    return held


def _guarded_attrs(
    scan: ClassScan, inferred: dict[str, frozenset[str]]
) -> dict[str, frozenset[str]]:
    """attr -> groups it is ever written under (outside construction)."""
    guarded: dict[str, set[str]] = {}
    for name, method in scan.methods.items():
        if name in _CONSTRUCTION:
            continue
        base = inferred.get(name, frozenset())
        for access in method.accesses:
            effective = access.held | base
            if access.is_write and effective:
                guarded.setdefault(access.attr, set()).update(effective)
    return {attr: frozenset(groups) for attr, groups in guarded.items()}


class LockDisciplineRule(Rule):
    rule_id = "LOCK-001"
    title = "lock-guarded attribute accessed without the lock"
    rationale = (
        "an attribute written under `with self._lock` is part of the "
        "lock's invariant; reading or writing it off-lock races the "
        "locked writers (torn reads, lost updates) — PR 6's serving "
        "stack made this a convention, this rule makes it a gate"
    )

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            scan = scan_class(node, module)
            if scan is None:
                continue
            inferred = _infer_held(scan)
            guarded = _guarded_attrs(scan, inferred)
            if not guarded:
                continue
            for name, method in scan.methods.items():
                if name in _CONSTRUCTION or method.declared_locked:
                    continue
                base = inferred.get(name, frozenset())
                for access in method.accesses:
                    groups = guarded.get(access.attr)
                    if groups is None:
                        continue
                    if (access.held | base) & groups:
                        continue
                    lock_names = sorted(
                        attr for attr, group in scan.lock_groups.items()
                        if group in groups
                    )
                    verb = "written" if access.is_write else "read"
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=access.line,
                        col=access.col,
                        message=(
                            f"{scan.name}.{name} {verb}s self.{access.attr} "
                            f"without holding self.{lock_names[0]} "
                            f"(the attribute is written under it elsewhere "
                            f"in {scan.name})"
                        ),
                    )


class LockOrderRule(ProjectRule):
    rule_id = "LOCK-002"
    title = "lock-acquisition-order cycle (deadlock potential)"
    rationale = (
        "if thread 1 locks A then B while thread 2 locks B then A, the "
        "system deadlocks under load; a cycle-free acquisition graph "
        "makes that impossible by construction — checked now, before "
        "multi-process sharding multiplies the lock surface"
    )

    def check_project(
        self, modules: Sequence[ModuleInfo], context: AnalysisContext
    ) -> Iterable[Finding]:
        scans: list[ClassScan] = []
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    scan = scan_class(node, module)
                    if scan is not None:
                        scans.append(scan)
        by_name: dict[str, list[ClassScan]] = {}
        for scan in scans:
            by_name.setdefault(scan.name, []).append(scan)
        #: class name -> methods that lexically acquire its own lock.
        acquiring: dict[str, set[str]] = {
            scan.name: {
                name for name, method in scan.methods.items()
                if method.acquires
            }
            for scan in scans
        }

        edges: dict[tuple[str, str], tuple[str, int, int, str]] = {}
        findings: list[Finding] = []
        for scan in scans:
            inferred = _infer_held(scan)
            for name, method in scan.methods.items():
                if name in _CONSTRUCTION:
                    continue
                base = inferred.get(name, frozenset())
                # Re-acquisition of a non-reentrant lock already held.
                for line, col, group, held_before in method.acquisitions:
                    if group in (held_before | base):
                        findings.append(Finding(
                            rule=self.rule_id,
                            path=scan.module.relpath,
                            line=line,
                            col=col,
                            message=(
                                f"{scan.name}.{name} re-acquires "
                                f"non-reentrant lock group {group!r} it "
                                "already holds (self-deadlock)"
                            ),
                        ))
                for owner, callee, line, col, held in method.foreign_calls:
                    effective = held | base
                    if not effective:
                        continue
                    target_cls = scan.instance_attrs.get(owner)
                    if target_cls is None or target_cls not in acquiring:
                        continue
                    if callee not in acquiring[target_cls]:
                        continue
                    edge = (scan.name, target_cls)
                    edges.setdefault(
                        edge, (scan.module.relpath, line, col, name)
                    )

        for cycle in _cycles(edges):
            path, line, col, method = edges[(cycle[0], cycle[1])]
            chain = " -> ".join(cycle + (cycle[0],))
            findings.append(Finding(
                rule=self.rule_id,
                path=path,
                line=line,
                col=col,
                message=(
                    f"lock-acquisition-order cycle {chain}: "
                    f"{cycle[0]}.{method} calls into {cycle[1]} while "
                    f"holding its own lock, and the chain returns — "
                    "two threads interleaving these paths deadlock"
                ),
            ))
        return findings


def _cycles(
    edges: dict[tuple[str, str], object]
) -> list[tuple[str, ...]]:
    """Elementary cycles in the class-lock digraph (DFS; the graph has
    ~10 nodes, so simplicity beats Johnson's algorithm)."""
    graph: dict[str, list[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
    cycles: list[tuple[str, ...]] = []
    seen_cycles: set[frozenset[str]] = set()

    def dfs(start: str, node: str, path: list[str]) -> None:
        for nxt in graph.get(node, ()):
            if nxt == start:
                key = frozenset(path)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(tuple(path))
            elif nxt not in path and nxt > start:
                # Only explore nodes ordered after start: each cycle is
                # found exactly once, rooted at its smallest node.
                dfs(start, nxt, path + [nxt])

    for node in sorted(graph):
        dfs(node, node, [node])
    return cycles
