"""The rule catalog: four families behind one factory.

``all_rules()`` builds the default rule set the CLI and CI run;
``rule_catalog()`` is the machine-readable listing ``docs/development.md``
mirrors.  Families:

======== ============================================================
ARCH     module layering, dependency-light leaves, session ownership
LOCK     guarded-attribute discipline, lock-acquisition-order cycles
NUM      float equality, unseeded RNGs, silent exception swallows
REG      env-knob documentation, metric-name registration
======== ============================================================

plus the engine-level ``SUP`` rules (suppression hygiene) that are
always on and never themselves suppressible.
"""

from __future__ import annotations

from repro.devtools.engine import Rule
from repro.devtools.rules.arch import (
    DependencyLightRule,
    LayeringRule,
    SessionOwnershipRule,
)
from repro.devtools.rules.locks import LockDisciplineRule, LockOrderRule
from repro.devtools.rules.numerics import (
    ExceptSwallowRule,
    FloatEqualityRule,
    InvalidStateSwallowRule,
    UnseededRandomRule,
)
from repro.devtools.rules.registry import KnobDocumentationRule, MetricNameRule

__all__ = [
    "DependencyLightRule",
    "ExceptSwallowRule",
    "FloatEqualityRule",
    "InvalidStateSwallowRule",
    "KnobDocumentationRule",
    "LayeringRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "MetricNameRule",
    "SessionOwnershipRule",
    "UnseededRandomRule",
    "all_rules",
    "rule_catalog",
]


def all_rules() -> tuple[Rule, ...]:
    """The default rule set, in family order."""
    return (
        LayeringRule(),
        DependencyLightRule(),
        SessionOwnershipRule(),
        LockDisciplineRule(),
        LockOrderRule(),
        FloatEqualityRule(),
        UnseededRandomRule(),
        ExceptSwallowRule(),
        InvalidStateSwallowRule(),
        KnobDocumentationRule(),
        MetricNameRule(),
    )


def rule_catalog() -> list[dict]:
    """``[{"id", "title", "rationale"}, ...]`` for docs and reporters."""
    rows = [
        {
            "id": rule.rule_id,
            "title": rule.title,
            "rationale": rule.rationale,
        }
        for rule in all_rules()
    ]
    rows.append({
        "id": "SUP-001",
        "title": "suppression without a reason",
        "rationale": (
            "every `# repro: allow[...]` exemption must say why, or the "
            "tree accumulates unexplained rule holes"
        ),
    })
    rows.append({
        "id": "SUP-002",
        "title": "suppression names an unknown rule",
        "rationale": (
            "a typoed rule id silently suppresses nothing; fail loudly"
        ),
    })
    return rows
