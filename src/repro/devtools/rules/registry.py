"""REG family: the two operational registries stay closed.

* **REG-001** — every ``REPRO_*`` environment variable the code *reads*
  must appear in the knob table in ``docs/operations.md``: the runbook
  is the contract operators tune against, and an undocumented knob is
  an untunable one.
* **REG-002** — every metric name minted in ``repro.serve`` must be
  declared in ``repro.serve.metrics.KNOWN_METRICS``: dashboards and the
  chaos harness key on names, and a typo would otherwise just create a
  fresh, never-watched series.

Both registries are read declaratively — the docs table by regex, the
``KNOWN_METRICS`` dict by AST — so the analyzer never imports the code
it is checking.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from repro.devtools.engine import AnalysisContext, Finding, ModuleInfo, Rule

__all__ = [
    "KnobDocumentationRule",
    "MetricNameRule",
    "load_documented_knobs",
    "load_known_metrics",
]

#: A knob-table row in the runbook: ``| `REPRO_X` | default | ... |``.
_KNOB_ROW_RE = re.compile(r"^\s*\|\s*`(REPRO_[A-Z0-9_]+)`")

_OPERATIONS_DOC = Path("docs") / "operations.md"


def load_documented_knobs(root: Path) -> frozenset[str]:
    """Knob names documented in the operations runbook's table."""
    doc = root / _OPERATIONS_DOC
    if not doc.is_file():
        return frozenset()
    knobs = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = _KNOB_ROW_RE.match(line)
        if match:
            knobs.add(match.group(1))
    return frozenset(knobs)


_METRICS_MODULE = Path("src") / "repro" / "serve" / "metrics.py"


def load_known_metrics(root: Path) -> frozenset[str]:
    """String keys of ``KNOWN_METRICS`` in ``repro.serve.metrics``,
    read from the AST (the analyzer never imports checked code)."""
    path = root / _METRICS_MODULE
    if not path.is_file():
        return frozenset()
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        targets = (
            node.targets if isinstance(node, ast.Assign)
            else [node.target] if isinstance(node, ast.AnnAssign) and node.value
            else []
        )
        named = any(
            isinstance(t, ast.Name) and t.id == "KNOWN_METRICS"
            for t in targets
        )
        if not named:
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            return frozenset(
                key.value for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            return frozenset(
                el.value for el in value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            )
    return frozenset()


def _env_knob_reads(tree: ast.Module) -> Iterable[tuple[str, int, int]]:
    """``(knob, line, col)`` for every REPRO_* environment read."""
    for node in ast.walk(tree):
        knob: str | None = None
        # os.environ.get("REPRO_X") / os.getenv("REPRO_X")
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            is_environ_get = (
                func.attr == "get"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "environ"
            )
            is_getenv = func.attr == "getenv"
            if (is_environ_get or is_getenv) and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    knob = arg.value
        # os.environ["REPRO_X"] (reads only — setenv/del in tests are
        # writes and do not need runbook rows)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "environ"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            knob = node.slice.value
        if knob is not None and knob.startswith("REPRO_"):
            yield knob, node.lineno, node.col_offset


class KnobDocumentationRule(Rule):
    rule_id = "REG-001"
    title = "REPRO_* knob read but not documented in the runbook"
    rationale = (
        "docs/operations.md's knob table is the operator contract; a "
        "knob the code reads but the table omits cannot be discovered "
        "or safely tuned (add a row, or stop reading the variable)"
    )

    def applies(self, module: ModuleInfo) -> bool:
        # Knob reads anywhere in the tree count — benchmarks and
        # example scripts read knobs operators must know about too.
        return True

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        documented = context.documented_knobs or load_documented_knobs(
            context.root
        )
        for knob, line, col in _env_knob_reads(module.tree):
            if knob in documented:
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=line,
                col=col,
                message=(
                    f"{knob} is read here but has no row in the "
                    "docs/operations.md knob table"
                ),
            )


#: Registry factory methods whose first argument is a metric name.
_METRIC_FACTORIES = {"counter", "gauge", "histogram", "counter_family"}


class MetricNameRule(Rule):
    rule_id = "REG-002"
    title = "metric name not declared in KNOWN_METRICS"
    rationale = (
        "dashboards and the chaos harness select series by name; a "
        "name minted in serve/ but absent from "
        "repro.serve.metrics.KNOWN_METRICS is a typo or an unwatched "
        "series — declare it (with its type) or fix the spelling"
    )

    def applies(self, module: ModuleInfo) -> bool:
        return module.module.startswith("repro.serve")

    def check(self, module: ModuleInfo, context: AnalysisContext) -> Iterable[Finding]:
        known = context.known_metrics or load_known_metrics(context.root)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else ""
            )
            if name not in _METRIC_FACTORIES or not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue
            if arg.value in known:
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"metric {arg.value!r} is not declared in "
                    "repro.serve.metrics.KNOWN_METRICS"
                ),
            )
