"""String-keyed algorithm registry.

Maps stable algorithm keys (``"milp"``, ``"selinger"``, ``"auto"``, ...)
to factories producing :class:`~repro.api.protocol.Optimizer` instances.
The built-in adapters self-register on import; third parties add their own
implementations with the :func:`register_optimizer` decorator::

    from repro.api import register_optimizer

    @register_optimizer("my-algo")
    def _build(settings):
        return MyOptimizer(settings)

Factories receive one :class:`~repro.api.protocol.OptimizerSettings`
argument and must return an object satisfying the ``Optimizer`` protocol.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.exceptions import ReproError

from repro.api.protocol import Optimizer, OptimizerSettings

#: An optimizer factory: settings in, protocol-conforming optimizer out.
OptimizerFactory = Callable[[OptimizerSettings], Optimizer]


class UnknownAlgorithmError(ReproError, KeyError):
    """Raised when a registry lookup names no registered algorithm."""


class OptimizerRegistry:
    """A mutable name -> factory mapping with decorator registration."""

    def __init__(self) -> None:
        self._factories: dict[str, OptimizerFactory] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: OptimizerFactory | None = None,
        *,
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("x", make_x)``) or as a
        decorator (``@registry.register("x")``).  Re-registering an
        existing key raises unless ``replace=True`` — silent shadowing of
        a built-in algorithm is almost always a bug.
        """
        if not name or not name.strip():
            raise ReproError("algorithm name must be non-empty")

        def _register(fn: OptimizerFactory) -> OptimizerFactory:
            if not replace and name in self._factories:
                raise ReproError(
                    f"algorithm {name!r} is already registered; "
                    "pass replace=True to override"
                )
            self._factories[name] = fn
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, name: str) -> None:
        """Remove ``name`` (no-op when absent); mainly for tests."""
        self._factories.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """All registered algorithm keys, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def factory(self, name: str) -> OptimizerFactory:
        """The raw factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownAlgorithmError(
                f"unknown algorithm {name!r}; registered algorithms: "
                f"{', '.join(self.names()) or '<none>'}"
            ) from None

    def create(
        self, name: str, settings: OptimizerSettings | None = None
    ) -> Optimizer:
        """Instantiate the algorithm registered under ``name``."""
        return self.factory(name)(settings or OptimizerSettings())


#: The default registry the convenience functions and the service use.
default_registry = OptimizerRegistry()


def register_optimizer(
    name: str,
    factory: OptimizerFactory | None = None,
    *,
    replace: bool = False,
):
    """Register an optimizer factory in the default registry."""
    return default_registry.register(name, factory, replace=replace)


def _ensure_builtin_adapters() -> None:
    """Import the built-in adapters so they self-register (idempotent)."""
    from repro.api import adapters  # noqa: F401  (import for side effect)


def available_algorithms() -> tuple[str, ...]:
    """Keys of every algorithm in the default registry, sorted."""
    _ensure_builtin_adapters()
    return default_registry.names()


def create_optimizer(
    name: str, settings: OptimizerSettings | None = None
) -> Optimizer:
    """Instantiate a registered algorithm from the default registry."""
    _ensure_builtin_adapters()
    return default_registry.create(name, settings)
