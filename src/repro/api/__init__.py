"""``repro.api`` — the single public optimizer surface.

The paper frames MILP join ordering as one algorithm among several it
benchmarks against (exhaustive DP, IKKBZ, greedy, randomized).  This
package gives all of them one front door:

* :class:`Optimizer` protocol + :class:`PlanResult` unified result type,
  with adapters wrapping every built-in engine;
* a string-keyed algorithm registry (``"milp"``, ``"milp-portfolio"``,
  ``"selinger"``, ``"bushy"``, ``"ikkbz"``, ``"greedy"``, ``"ii"``,
  ``"sa"``, ``"auto"``) open to third-party registration via
  :func:`register_optimizer`;
* :class:`OptimizerService` — plan caching keyed by query signature with
  catalog-versioned invalidation, and concurrent batch optimization.

Quickstart::

    from repro.api import OptimizerService, available_algorithms

    service = OptimizerService()
    result = service.optimize(query)             # "auto" routing
    result = service.optimize(query, "selinger") # explicit algorithm
    plans = service.optimize_batch(workload, "milp")
    print(available_algorithms())
"""

from repro.api.adapters import (
    AUTO_EXACT_MAX_TABLES,
    AUTO_MILP_MAX_TABLES,
    EngineAdapter,
    route_algorithm,
)
from repro.api.protocol import Optimizer, OptimizerSettings
from repro.api.registry import (
    OptimizerRegistry,
    UnknownAlgorithmError,
    available_algorithms,
    create_optimizer,
    default_registry,
    register_optimizer,
)
from repro.api.result import PlanResult
from repro.api.service import (
    CacheStats,
    LPSessionStats,
    OptimizerService,
    query_signature,
)

__all__ = [
    "AUTO_EXACT_MAX_TABLES",
    "AUTO_MILP_MAX_TABLES",
    "CacheStats",
    "LPSessionStats",
    "EngineAdapter",
    "Optimizer",
    "OptimizerRegistry",
    "OptimizerService",
    "OptimizerSettings",
    "PlanResult",
    "UnknownAlgorithmError",
    "available_algorithms",
    "create_optimizer",
    "default_registry",
    "query_signature",
    "register_optimizer",
    "route_algorithm",
]
