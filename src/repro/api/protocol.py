"""The :class:`Optimizer` protocol and shared construction settings.

Any object with a ``name`` and an ``optimize(query, time_limit=...) ->
PlanResult`` method is an optimizer as far as :mod:`repro.api` is
concerned — the adapters in :mod:`repro.api.adapters` wrap the built-in
engines, and third parties can register their own implementations via
:func:`repro.api.register_optimizer` without subclassing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Protocol, runtime_checkable

from repro.catalog.query import Query
from repro.core.config import COST_MODELS, FormulationConfig
from repro.exceptions import ReproError
from repro.plans.operators import CostContext, JoinAlgorithm

from repro.api.result import PlanResult

#: Precision presets accepted by :attr:`OptimizerSettings.precision`.
PRECISIONS = ("high", "medium", "low")


@dataclass(frozen=True)
class OptimizerSettings:
    """Algorithm-neutral knobs passed to every registry factory.

    Attributes
    ----------
    cost_model:
        Objective metric every algorithm optimizes and reports under
        (``"cout"``, ``"hash"``, ``"sort_merge"`` or ``"bnl"``) so results
        from different engines are comparable.
    time_limit:
        Default optimization budget in seconds.  Adapters document whether
        their engine honors it (exhaustive searches do; polynomial-time
        constructive algorithms finish long before any sane budget and
        ignore it).  Per-call ``optimize(..., time_limit=...)`` overrides.
    seed:
        RNG seed for the randomized algorithms (deterministic runs).
    precision:
        MILP formulation precision preset (paper Section 7.1).
    extra:
        Algorithm-specific overrides, e.g. ``{"formulation_config": ...,
        "solver_options": ...}`` for the MILP adapters or
        ``{"max_iterations": ...}`` for the randomized ones.  Unknown keys
        are ignored by adapters that do not use them.  A
        ``solver_options`` override carries the full
        :class:`~repro.milp.branch_and_bound.SolverOptions` surface,
        including the LP ``backend`` and simplex ``pricing`` rule
        (``devex``/``dantzig``/``bland``; process-wide defaults come
        from ``REPRO_SIMPLEX_PRICING`` and friends, see
        :mod:`repro.milp.lp_backend`).
    """

    cost_model: str = "hash"
    time_limit: float = 30.0
    seed: int = 0
    precision: str = "high"
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cost_model not in COST_MODELS:
            raise ReproError(
                f"cost_model must be one of {COST_MODELS}, "
                f"got {self.cost_model!r}"
            )
        if self.precision not in PRECISIONS:
            raise ReproError(
                f"precision must be one of {PRECISIONS}, "
                f"got {self.precision!r}"
            )
        if self.time_limit <= 0:
            raise ReproError("time_limit must be positive")

    # ------------------------------------------------------------------
    # Derived objects shared by the adapters
    # ------------------------------------------------------------------

    @property
    def use_cout(self) -> bool:
        """Whether the C_out metric (output cardinalities) is in effect."""
        return self.cost_model == "cout"

    @property
    def join_algorithm(self) -> JoinAlgorithm:
        """Physical join operator implied by the cost model."""
        return {
            "cout": JoinAlgorithm.HASH,
            "hash": JoinAlgorithm.HASH,
            "sort_merge": JoinAlgorithm.SORT_MERGE,
            "bnl": JoinAlgorithm.BLOCK_NESTED_LOOP,
        }[self.cost_model]

    def formulation_config(
        self, num_tables: int | None = None
    ) -> FormulationConfig:
        """MILP formulation config: the ``precision`` preset, overridable
        via ``extra["formulation_config"]``."""
        override = self.extra.get("formulation_config")
        if override is not None:
            return override
        preset = {
            "high": FormulationConfig.high_precision,
            "medium": FormulationConfig.medium_precision,
            "low": FormulationConfig.low_precision,
        }[self.precision]
        return preset(num_tables, cost_model=self.cost_model)

    def cost_context(self) -> CostContext:
        """Physical cost parameters shared by every engine, so that the
        exact ``true_cost`` values are computed on one scale."""
        return self.formulation_config().cost_context()

    def with_time_limit(self, time_limit: float) -> "OptimizerSettings":
        """Copy with a different default budget."""
        return replace(self, time_limit=time_limit)


@runtime_checkable
class Optimizer(Protocol):
    """The single public optimizer surface.

    Implementations optimize one query per call and return the unified
    :class:`~repro.api.result.PlanResult`.  ``time_limit=None`` means "use
    the budget configured at construction".

    Implementations *may* additionally accept a keyword-only
    ``cancel_token`` (a :class:`repro.cancel.CancelToken`) for
    cooperative mid-solve cancellation; the built-in adapters do.  The
    :class:`~repro.api.service.OptimizerService` inspects the signature
    once per optimizer and only passes the token to implementations that
    declare it, so third-party optimizers without the parameter keep
    working unchanged.
    """

    #: Registry key / display name of the algorithm.
    name: str

    def optimize(
        self, query: Query, *, time_limit: float | None = None
    ) -> PlanResult:
        """Optimize ``query`` and return the unified result."""
        ...
