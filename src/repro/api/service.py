"""A caching, batching optimization service over the algorithm registry.

:class:`OptimizerService` is the long-lived front door a query engine
would embed: it resolves algorithm names through the registry, caches
plans keyed by a canonical *query signature* (so re-optimizing the same
query is a dictionary lookup), invalidates the cache wholesale when the
catalog version is bumped (statistics refresh, schema change), and runs
whole workloads concurrently through a thread pool — the same
threads-plus-GIL-releasing-numerics execution model the MILP portfolio
uses.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import logging
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro import faultinject, obs
from repro.catalog.query import Query
from repro.catalog.serde import query_to_dict
from repro.exceptions import SolverError
from repro.milp.lp_backend import SessionStats

from repro.api.protocol import Optimizer, OptimizerSettings
from repro.api.registry import (
    OptimizerRegistry,
    _ensure_builtin_adapters,
    default_registry,
)
from repro.api.result import PlanResult

logger = logging.getLogger(__name__)


def _accepts_cancel_token(optimizer: Optimizer) -> bool:
    """Whether ``optimizer.optimize`` declares a ``cancel_token`` kwarg.

    Inspected once per optimizer instance so the hot path never pays
    ``inspect.signature``.  Uninspectable callables (C extensions,
    exotic proxies) conservatively report ``False`` — the token is
    simply not forwarded and the optimizer runs to its own budget.
    """
    try:
        parameters = inspect.signature(optimizer.optimize).parameters
    except (TypeError, ValueError):
        return False
    if "cancel_token" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def query_signature(query: Query) -> str:
    """Deterministic content hash of a query (the plan-cache key).

    Two structurally identical queries — same tables, cardinalities,
    columns, predicates, selectivities, correlated groups and required
    columns — hash identically regardless of object identity.  The query
    *name* is deliberately excluded: it is a display label, not an input
    to optimization.
    """
    payload = query_to_dict(query)
    payload.pop("name", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Plan-cache accounting, exposed via :attr:`OptimizerService.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0


@dataclass
class LPSessionStats(SessionStats):
    """Aggregated LP-session reuse accounting across service requests.

    Extends :class:`~repro.milp.lp_backend.SessionStats` (one shared
    set of counters and one ``absorb``) with ``sessions``: the number
    of optimizations that reported an ``lp_session`` diagnostic —
    non-MILP algorithms contribute nothing.  Exposed via
    :attr:`OptimizerService.lp_stats` and recorded by the benchmark
    tracker.
    """

    sessions: int = 0

    def absorb(self, stats: "SessionStats | dict") -> None:
        super().absorb(stats)
        self.sessions += 1

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (``BENCH_milp.json``)."""
        return {"sessions": self.sessions, **super().as_dict()}


@dataclass
class _CacheEntry:
    result: PlanResult
    catalog_version: int = 0


class OptimizerService:
    """One ``optimize()`` surface with plan caching and batch execution.

    Parameters
    ----------
    settings:
        Default :class:`OptimizerSettings` for every request.
    registry:
        Algorithm registry; defaults to the global one (built-in adapters
        plus anything third parties registered).
    max_workers:
        Thread-pool width for :meth:`optimize_batch`.
    max_entries:
        Plan-cache capacity; least-recently-used entries are evicted.
    store:
        Optional :class:`repro.store.PlanStore` used write-through /
        read-through: fresh solves are persisted, in-memory misses
        consult the store before solving, and
        :meth:`bump_catalog_version` invalidates stored plans exactly
        as it purges the in-memory cache.  The store is *advisory* —
        every store failure degrades to a plain solve, never an error.
        On construction the service adopts the store's latest catalog
        version so the version lineage survives process restarts.

    Examples
    --------
    >>> from repro.workloads import QueryGenerator
    >>> service = OptimizerService()
    >>> query = QueryGenerator(seed=1).generate("star", 6)
    >>> first = service.optimize(query, "greedy")
    >>> again = service.optimize(query, "greedy")
    >>> again is first and service.stats.hits == 1
    True
    """

    def __init__(
        self,
        settings: OptimizerSettings | None = None,
        registry: OptimizerRegistry | None = None,
        max_workers: int = 4,
        max_entries: int = 1024,
        store=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        _ensure_builtin_adapters()
        self.settings = settings or OptimizerSettings()
        self.registry = registry if registry is not None else default_registry
        self.max_workers = max_workers
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.lp_stats = LPSessionStats()
        self.store = store
        self._catalog_version = 0
        if store is not None:
            try:
                self._catalog_version = int(store.latest_version())
            except Exception:  # noqa: BLE001 - store is advisory
                logger.warning(
                    "plan store unreadable at startup; starting at "
                    "catalog version 0", exc_info=True,
                )
        self._cache: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._optimizers: dict[str, Optimizer] = {}
        #: Whether each cached optimizer's ``optimize`` accepts a
        #: ``cancel_token`` kwarg (inspected once at creation, so the
        #: hot path never pays a signature inspection).
        self._accepts_token: dict[str, bool] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Catalog versioning
    # ------------------------------------------------------------------

    @property
    def catalog_version(self) -> int:
        """Current catalog version; cache entries from older versions
        never match."""
        with self._lock:
            return self._catalog_version

    def bump_catalog_version(self) -> int:
        """Invalidate every cached plan (statistics/schema changed).

        Returns the new version.  Entries are purged eagerly; the version
        is also part of every cache key, so a stale entry could never be
        served even if purging were skipped.
        """
        with self._lock:
            self._catalog_version += 1
            self.stats.invalidations += len(self._cache)
            self._cache.clear()
            version = self._catalog_version
        if self.store is not None:
            # Reclaim stored plans from older versions eagerly; like the
            # purge above this is housekeeping — the version is part of
            # every store key, so stale records could never be served.
            try:
                self.store.invalidate_below(version)
            except Exception:  # noqa: BLE001 - store is advisory
                logger.warning(
                    "store invalidate_below(%d) failed; stale records "
                    "stay unreachable via versioned keys", version,
                    exc_info=True,
                )
        return version

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------

    def algorithms(self) -> tuple[str, ...]:
        """Algorithm keys this service can route to."""
        return self.registry.names()

    def optimize(
        self,
        query: Query,
        algorithm: str = "auto",
        *,
        time_limit: float | None = None,
        use_cache: bool = True,
        cancel_token=None,
    ) -> PlanResult:
        """Optimize ``query`` with ``algorithm``, consulting the cache.

        A cache hit returns the *identical* :class:`PlanResult` object of
        the earlier run — no solve, no plan re-extraction — and counts in
        :attr:`stats`.  ``use_cache=False`` bypasses both lookup and
        store (ablations, nondeterministic budget experiments).

        ``cancel_token`` (a :class:`repro.cancel.CancelToken`) is
        forwarded to optimizers whose ``optimize`` declares the
        parameter (the built-in adapters; see the :class:`Optimizer`
        protocol) for cooperative mid-solve cancellation.  Cache hits
        ignore it — a cached answer is instant.

        Thread-safety: safe to call concurrently from many threads (the
        serving layer's workers do).  The catalog version is captured
        once per call — a ``bump_catalog_version()`` racing with an
        in-flight optimization can never publish that optimization's
        (now stale) plan into the fresh cache generation; the result is
        still returned to its caller, it just is not stored.
        """
        with self._lock:
            version = self._catalog_version
        key = self._key(query, algorithm, time_limit, version)
        if use_cache:
            with obs.span("service.cache", algorithm=algorithm) as cache_span:
                with self._lock:
                    entry = self._cache.get(key)
                    if (
                        entry is not None
                        and entry.catalog_version == self._catalog_version
                    ):
                        self._cache.move_to_end(key)
                        self.stats.hits += 1
                        cache_span.annotate(outcome="hit")
                        return entry.result
                    self.stats.misses += 1
                cache_span.annotate(outcome="miss")
            if self.store is not None:
                with obs.span("service.store") as store_span:
                    stored = self._store_load(key, version)
                    store_span.annotate(
                        outcome="hit" if stored is not None else "miss"
                    )
                if stored is not None:
                    return stored
        fault = faultinject.check(faultinject.SERVICE_OPTIMIZE)
        if fault is not None:
            obs.event(
                "fault.injected", site=faultinject.SERVICE_OPTIMIZE,
                kind=fault.kind,
            )
            if fault.kind == "slow":
                time.sleep(fault.delay)
            elif fault.kind == "exception":
                raise SolverError(f"injected: {fault.message}")
        optimizer = self._optimizer(algorithm)
        with obs.span("service.solve", algorithm=algorithm) as solve_span:
            if cancel_token is not None and self._accepts_token.get(algorithm):
                result = optimizer.optimize(
                    query, time_limit=time_limit, cancel_token=cancel_token
                )
            else:
                result = optimizer.optimize(query, time_limit=time_limit)
            solve_span.annotate(status=result.status.value)
        session_stats = result.diagnostics.get("lp_session")
        if isinstance(session_stats, dict):
            with self._lock:
                self.lp_stats.absorb(session_stats)
        if use_cache and result.has_plan:
            stale = False
            with self._lock:
                if self._catalog_version == version:
                    self._cache[key] = _CacheEntry(result, version)
                    self._cache.move_to_end(key)
                    while len(self._cache) > self.max_entries:
                        self._cache.popitem(last=False)
                        self.stats.evictions += 1
                else:
                    stale = True
            if not stale and self.store is not None:
                self._store_save(key, version, result)
        return result

    def cached_result(
        self,
        query: Query,
        algorithm: str = "auto",
        *,
        time_limit: float | None = None,
    ) -> PlanResult | None:
        """Cached :class:`PlanResult` for this request, never solving.

        Returns ``None`` on a miss — unlike :meth:`optimize`, a miss is
        not counted in :attr:`stats` (nothing was requested of the
        optimizer); a hit is.  The serving layer uses this to answer
        deadline-constrained requests from the full-budget cache before
        falling back to a degraded fresh solve.
        """
        with self._lock:
            version = self._catalog_version
        key = self._key(query, algorithm, time_limit, version)
        with self._lock:
            entry = self._cache.get(key)
            if (
                entry is not None
                and entry.catalog_version == self._catalog_version
            ):
                self._cache.move_to_end(key)
                self.stats.hits += 1
                return entry.result
        return None

    def optimize_batch(
        self,
        queries: Sequence[Query],
        algorithm: str = "auto",
        *,
        time_limit: float | None = None,
        use_cache: bool = True,
    ) -> list[PlanResult]:
        """Optimize a workload concurrently; results keep input order.

        Runs up to ``max_workers`` queries at a time in Python threads —
        the numerical kernels (HiGHS, LAPACK inside the revised simplex)
        release the GIL, which is the same concurrency model the MILP
        portfolio exploits.  Results are returned positionally, so the
        output order never depends on thread scheduling.  Duplicate
        queries within one batch may race to a cold cache and both solve;
        both produce the same plan and the second store is idempotent.
        """
        queries = list(queries)
        if not queries:
            return []
        if len(queries) == 1 or self.max_workers == 1:
            return [
                self.optimize(
                    query, algorithm,
                    time_limit=time_limit, use_cache=use_cache,
                )
                for query in queries
            ]
        results: list[PlanResult | None] = [None] * len(queries)
        with ThreadPoolExecutor(
            max_workers=min(self.max_workers, len(queries))
        ) as pool:
            futures = {
                pool.submit(
                    self.optimize, query, algorithm,
                    time_limit=time_limit, use_cache=use_cache,
                ): index
                for index, query in enumerate(queries)
            }
            for future, index in futures.items():
                results[index] = future.result()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _key(
        self,
        query: Query,
        algorithm: str,
        time_limit: float | None,
        version: int | None = None,
    ) -> tuple:
        """Cache key; ``version`` pins the catalog generation the caller
        captured (so a concurrent bump cannot split one request's lookup
        and store across generations)."""
        budget = (
            time_limit if time_limit is not None
            else self.settings.time_limit
        )
        if version is None:
            with self._lock:
                version = self._catalog_version
        return (
            version,
            algorithm,
            self.settings.cost_model,
            self.settings.precision,
            self.settings.seed,
            budget,
            query_signature(query),
        )

    def _optimizer(self, algorithm: str) -> Optimizer:
        with self._lock:
            instance = self._optimizers.get(algorithm)
            if instance is None:
                instance = self.registry.create(algorithm, self.settings)
                self._optimizers[algorithm] = instance
                self._accepts_token[algorithm] = _accepts_cancel_token(
                    instance
                )
            return instance

    # ------------------------------------------------------------------
    # Persistent store (advisory: failures degrade to plain solves)
    # ------------------------------------------------------------------

    def _fingerprint(self, budget: float | None) -> dict:
        """Request key material not covered by the store key proper.

        The store keys plans by ``(catalog_version, algorithm,
        query_signature)``; cost model, precision, seed and budget live
        *inside* the record and are verified on read — a record written
        under different settings is a miss, not a wrong answer.
        """
        return {
            "cost_model": self.settings.cost_model,
            "precision": self.settings.precision,
            "seed": self.settings.seed,
            "budget": budget,
        }

    def _store_load(self, key: tuple, version: int) -> PlanResult | None:
        """Read-through: decode a stored record for ``key``, install it
        in the in-memory cache and return it — or ``None``."""
        from repro.store import serde as store_serde

        budget, signature = key[-2], key[-1]
        algorithm = key[1]
        try:
            payload = self.store.get_plan(version, algorithm, signature)
        except Exception:  # noqa: BLE001 - store is advisory
            logger.debug("store read failed; treating as miss", exc_info=True)
            return None
        if payload is None:
            return None
        try:
            result, request = store_serde.decode_plan_record(payload)
        except store_serde.StoreCorruptionError:
            # Frame passed but the body is malformed: structurally
            # rotten.  Treat exactly like a frame failure — a miss.
            return None
        if request != self._fingerprint(budget):
            return None
        with self._lock:
            if self._catalog_version != version:
                return None
            self._cache[key] = _CacheEntry(result, version)
            self._cache.move_to_end(key)
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self.stats.evictions += 1
        return result

    def _store_save(self, key: tuple, version: int, result: PlanResult) -> None:
        """Write-through one fresh result (best-effort)."""
        from repro.store import serde as store_serde

        budget, signature = key[-2], key[-1]
        algorithm = key[1]
        try:
            payload = store_serde.encode_plan_record(
                result, self._fingerprint(budget)
            )
            self.store.put_plan(version, algorithm, signature, payload)
        except Exception:  # noqa: BLE001 - store is advisory
            logger.debug("store write-through failed", exc_info=True)

    def replay_from_store(self, limit: int | None = None) -> int:
        """Preload the in-memory cache from the store's hottest plans.

        Returns how many plans were installed.  Records whose request
        fingerprint does not match this service's settings are skipped
        (they answer different requests), as are corrupt records.  Used
        by the serving layer's warm-up replay before accepting traffic.
        """
        if self.store is None:
            return 0
        from repro.store import serde as store_serde

        with self._lock:
            version = self._catalog_version
        try:
            rows = self.store.hot_plans(version, limit)
        except Exception:  # noqa: BLE001 - store is advisory
            logger.warning("store replay scan failed", exc_info=True)
            return 0
        installed = 0
        for algorithm, signature, payload in rows:
            try:
                result, request = store_serde.decode_plan_record(payload)
            except store_serde.StoreCorruptionError:
                continue
            budget = request.get("budget")
            if request != self._fingerprint(budget):
                continue
            key = (
                version,
                algorithm,
                self.settings.cost_model,
                self.settings.precision,
                self.settings.seed,
                budget,
                signature,
            )
            with self._lock:
                if self._catalog_version != version:
                    break
                if key not in self._cache:
                    self._cache[key] = _CacheEntry(result, version)
                    installed += 1
                    while len(self._cache) > self.max_entries:
                        self._cache.popitem(last=False)
                        self.stats.evictions += 1
        return installed

    def cache_size(self) -> int:
        """Number of currently cached plans."""
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached plan without bumping the catalog version."""
        with self._lock:
            self._cache.clear()
