"""Adapters wrapping every built-in engine behind the ``Optimizer`` protocol.

Each adapter normalizes one engine's idiosyncratic front-end —
constructor-vs-method query passing, result dataclass shape, budget
handling — into ``optimize(query, time_limit=...) -> PlanResult``.

Budget handling (satellite of the API redesign)
-----------------------------------------------
Every adapter accepts a ``time_limit``; whether the underlying engine
*honors* it varies and is documented per adapter:

===============  =======================================================
``milp``         honored — branch-and-bound deadline
``milp-portfolio``  honored — deadline applies to every member
``selinger``     honored — DP aborts empty-handed at the deadline
``bushy``        honored — DP aborts empty-handed at the deadline
``ikkbz``        *ignored* — O(n^2) algorithm, finishes long before any
                 sane budget; the budget is recorded in diagnostics
``greedy``       *ignored* — O(n^3) constructive heuristic, same reason
``ii``, ``sa``   honored — anytime loops run until the deadline
``auto``         inherited from whichever algorithm it routes to
===============  =======================================================

``true_cost`` is always evaluated with the shared
:class:`~repro.plans.cost.PlanCostEvaluator` under the configured cost
model, so numbers from different engines are directly comparable even
when an engine optimizes its own internal metric.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import Any

from repro.catalog.query import Query
from repro.dp.bushy import BushyOptimizer, left_deep_from_bushy
from repro.dp.greedy import GreedyOptimizer
from repro.dp.ikkbz import IKKBZOptimizer
from repro.dp.randomized import (
    IterativeImprovement,
    RandomizedResult,
    SimulatedAnnealing,
)
from repro.dp.selinger import MAX_DP_TABLES, SelingerOptimizer
from repro.exceptions import PlanError
from repro.milp.branch_and_bound import SolverOptions
from repro.milp.solution import IncumbentEvent, SolveStatus
from repro.plans.cost import PlanCostEvaluator
from repro.plans.plan import LeftDeepPlan

from repro.api.protocol import OptimizerSettings
from repro.api.registry import register_optimizer
from repro.api.result import PlanResult

#: ``"auto"`` routing: largest query handed to the exhaustive Selinger DP.
#: At this size the full ``2^n`` subset sweep takes milliseconds and the
#: result is proven optimal — no reason to run anything else.
AUTO_EXACT_MAX_TABLES = 12

#: ``"auto"`` routing: largest query handed to the anytime MILP solver;
#: beyond it the pure-Python substrate cannot close gaps in interactive
#: budgets and the greedy constructive heuristic takes over.
AUTO_MILP_MAX_TABLES = 30


class EngineAdapter:
    """Shared plumbing: budget resolution, timing, cost evaluation."""

    #: Registry key; subclasses override.
    name = "abstract"

    #: Whether the wrapped engine enforces the time budget (see module
    #: docstring).  Recorded in every result's diagnostics.
    honors_time_limit = True

    def __init__(self, settings: OptimizerSettings | None = None) -> None:
        self.settings = settings or OptimizerSettings()

    def optimize(
        self,
        query: Query,
        *,
        time_limit: float | None = None,
        cancel_token=None,
    ) -> PlanResult:
        """Optimize ``query``; ``time_limit`` overrides the configured
        budget for this call only.

        ``cancel_token`` (a :class:`repro.cancel.CancelToken`) requests
        cooperative mid-solve cancellation.  The MILP adapters thread it
        into the branch-and-bound node loop and the simplex pivot loop;
        the constructive/DP engines finish in milliseconds at supported
        sizes and ignore it.  It travels through the call chain, never
        instance state — adapter instances are shared across server
        worker threads.
        """
        budget = (
            time_limit if time_limit is not None
            else self.settings.time_limit
        )
        started = time.monotonic()
        result = self._run(query, budget, cancel_token)
        result.solve_time = time.monotonic() - started
        result.diagnostics.setdefault("time_limit", budget)
        result.diagnostics.setdefault(
            "honors_time_limit", self.honors_time_limit
        )
        return result

    # ------------------------------------------------------------------
    # Subclass interface / helpers
    # ------------------------------------------------------------------

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        raise NotImplementedError

    def _true_cost(
        self, query: Query, plan: LeftDeepPlan | None
    ) -> float | None:
        if plan is None:
            return None
        evaluator = PlanCostEvaluator(
            query, self.settings.cost_context(), self.settings.use_cout
        )
        return evaluator.cost(plan)

    def _heuristic_result(
        self,
        query: Query,
        plan: LeftDeepPlan,
        elapsed: float,
        diagnostics: dict[str, Any],
        events: list[IncumbentEvent] | None = None,
    ) -> PlanResult:
        """A plan without an optimality proof (bound stays ``-inf``)."""
        cost = self._true_cost(query, plan)
        return PlanResult(
            algorithm=self.name,
            query=query,
            plan=plan,
            status=SolveStatus.FEASIBLE,
            objective=cost if cost is not None else math.inf,
            best_bound=-math.inf,
            true_cost=cost,
            solve_time=elapsed,
            events=events
            or [IncumbentEvent(elapsed, cost, -math.inf, "incumbent")],
            diagnostics=diagnostics,
        )

    def _empty_result(
        self, query: Query, elapsed: float, diagnostics: dict[str, Any]
    ) -> PlanResult:
        """Budget expired before the engine produced anything."""
        return PlanResult(
            algorithm=self.name,
            query=query,
            plan=None,
            status=SolveStatus.NO_SOLUTION,
            solve_time=elapsed,
            diagnostics=diagnostics,
        )


# ----------------------------------------------------------------------
# MILP (the paper's algorithm)
# ----------------------------------------------------------------------

class MILPAdapter(EngineAdapter):
    """The paper's MILP optimizer behind the unified surface.

    Budget: **honored** — becomes the branch-and-bound deadline, so the
    result is anytime (``events`` carries the incumbent/bound stream).
    ``settings.extra`` accepts ``formulation_config``, ``solver_options``
    and ``warm_start``.
    """

    name = "milp"
    honors_time_limit = True

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        from repro.core.optimizer import MILPJoinOptimizer

        optimizer = MILPJoinOptimizer(
            self.settings.formulation_config(query.num_tables),
            self._solver_options(budget, cancel_token),
        )
        result = optimizer.optimize(
            query, warm_start=self.settings.extra.get("warm_start", True)
        )
        return self._from_core(query, result)

    def _solver_options(
        self, budget: float, cancel_token=None
    ) -> SolverOptions:
        base = self.settings.extra.get("solver_options")
        if base is None:
            return SolverOptions(
                time_limit=budget, cancel_token=cancel_token
            )
        if cancel_token is None:
            # Keep a token configured directly on the base options.
            cancel_token = base.cancel_token
        return replace(
            base, time_limit=budget, cancel_token=cancel_token
        )

    def _from_core(self, query: Query, result) -> PlanResult:
        milp = result.milp_solution
        diagnostics: dict[str, Any] = {
            "engine_result": result,
            "formulation_stats": dict(result.formulation_stats),
        }
        if milp is not None:
            diagnostics.update(
                nodes=milp.node_count,
                lp_solves=milp.lp_solves,
                lp_pivots=milp.lp_pivots,
                lp_time=milp.lp_time,
            )
            if milp.session_stats is not None:
                # LP session reuse accounting (warm ratio, appended cut
                # rows, refactorizations); OptimizerService aggregates
                # this across requests.
                diagnostics["lp_session"] = milp.session_stats
        return PlanResult(
            algorithm=self.name,
            query=query,
            plan=result.plan,
            status=result.status,
            objective=result.objective,
            best_bound=result.best_bound,
            true_cost=result.true_cost,
            solve_time=result.solve_time,
            events=list(result.events),
            diagnostics=diagnostics,
        )


class PortfolioMILPAdapter(MILPAdapter):
    """Concurrent MILP portfolio (paper Section 1's parallel optimization).

    Budget: **honored** — every portfolio member gets the deadline; the
    search stops as soon as one member closes the gap.  ``settings.extra``
    additionally accepts ``members`` (a list of
    :class:`~repro.milp.portfolio.PortfolioMember`) and ``parallel``.
    """

    name = "milp-portfolio"
    honors_time_limit = True

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        from repro.core.optimizer import MILPJoinOptimizer

        optimizer = MILPJoinOptimizer(
            self.settings.formulation_config(query.num_tables),
            self._solver_options(budget, cancel_token),
        )
        result = optimizer.optimize_with_portfolio(
            query,
            warm_start=self.settings.extra.get("warm_start", True),
            members=self.settings.extra.get("members"),
            parallel=self.settings.extra.get("parallel", True),
        )
        return self._from_core(query, result)


# ----------------------------------------------------------------------
# Dynamic programming family
# ----------------------------------------------------------------------

class SelingerAdapter(EngineAdapter):
    """Exhaustive Selinger DP (the paper's comparator).

    Budget: **honored** — the DP aborts *empty-handed* when the deadline
    passes before the subset table completes (no anytime behaviour by
    construction, exactly as in the paper).  A finished run is proven
    optimal over left-deep plans with cross products, so the bound equals
    the objective and the optimality factor is 1.  Queries the DP cannot
    attempt at all (more than :data:`~repro.dp.selinger.MAX_DP_TABLES`
    tables) yield ``NO_SOLUTION`` with ``diagnostics["error"]`` instead
    of leaking the engine's exception through the unified surface.
    """

    name = "selinger"
    honors_time_limit = True

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        try:
            engine = SelingerOptimizer(
                query,
                self.settings.cost_context(),
                use_cout=self.settings.use_cout,
                algorithm=self.settings.join_algorithm,
                allow_cross_products=self.settings.extra.get(
                    "allow_cross_products", True
                ),
            )
        except PlanError as error:
            return self._empty_result(query, 0.0, {"error": str(error)})
        dp = engine.optimize(time_limit=budget)
        diagnostics: dict[str, Any] = {
            "engine_result": dp,
            "subsets_explored": dp.subsets_explored,
        }
        if dp.plan is None:
            return self._empty_result(query, dp.elapsed, diagnostics)
        return PlanResult(
            algorithm=self.name,
            query=query,
            plan=dp.plan,
            status=SolveStatus.OPTIMAL,
            objective=dp.cost,
            best_bound=dp.cost,
            true_cost=self._true_cost(query, dp.plan),
            solve_time=dp.elapsed,
            events=[IncumbentEvent(dp.elapsed, dp.cost, dp.cost, "incumbent")],
            diagnostics=diagnostics,
        )


class BushyAdapter(EngineAdapter):
    """DPsub-style bushy DP, linearized into the unified plan type.

    Budget: **honored** — aborts empty-handed at the deadline, like the
    Selinger DP.  The engine optimizes over *bushy* trees (C_out or hash
    cost); when the optimal tree is linear it converts exactly to a
    left-deep plan and the result is proven optimal.  A genuinely bushy
    optimum is flattened into its leaf order instead — still a valid
    left-deep plan, but without the optimality proof; the tree and its
    cost are kept in ``diagnostics["bushy_tree"]`` / ``["bushy_cost"]``.
    Queries outside the engine's reach (disconnected join graph, more
    than :data:`~repro.dp.bushy.MAX_BUSHY_TABLES` tables) yield
    ``NO_SOLUTION`` with ``diagnostics["error"]``.
    """

    name = "bushy"
    honors_time_limit = True

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        try:
            engine = BushyOptimizer(
                query,
                self.settings.cost_context(),
                use_cout=self.settings.use_cout,
            )
        except PlanError as error:
            return self._empty_result(query, 0.0, {"error": str(error)})
        outcome = engine.optimize(time_limit=budget)
        diagnostics: dict[str, Any] = {"engine_result": outcome}
        if outcome.tree is None:
            return self._empty_result(query, outcome.elapsed, diagnostics)
        diagnostics["bushy_tree"] = outcome.tree.describe()
        diagnostics["bushy_cost"] = outcome.cost
        plan = left_deep_from_bushy(outcome.tree, query)
        if plan is not None:
            return PlanResult(
                algorithm=self.name,
                query=query,
                plan=plan,
                status=SolveStatus.OPTIMAL,
                objective=outcome.cost,
                best_bound=outcome.cost,
                true_cost=self._true_cost(query, plan),
                solve_time=outcome.elapsed,
                events=[IncumbentEvent(
                    outcome.elapsed, outcome.cost, outcome.cost, "incumbent"
                )],
                diagnostics=diagnostics,
            )
        # Bushy optimum: flatten the tree's leaves into a left-deep order.
        diagnostics["linearized"] = True
        order = _leaf_order(outcome.tree)
        flat = LeftDeepPlan.from_order(
            query, order, self.settings.join_algorithm
        )
        return self._heuristic_result(
            query, flat, outcome.elapsed, diagnostics
        )


def _leaf_order(tree) -> list[str]:
    """In-order leaf sequence of a bushy tree (left subtree first)."""
    if tree.is_leaf:
        return [tree.table]
    return _leaf_order(tree.left) + _leaf_order(tree.right)


class IKKBZAdapter(EngineAdapter):
    """IKKBZ polynomial-time ordering, with a documented fallback.

    Budget: **ignored** — the engine is O(n^2) and finishes long before
    any sane budget; the requested budget is still recorded in
    diagnostics.  IKKBZ applies only to connected, acyclic join graphs of
    binary predicates without correlated groups; outside that class the
    adapter falls back to the greedy heuristic (so the unified surface
    always returns a plan) and records ``diagnostics["fallback"]``.

    The IKKBZ optimum is specific to the C_out metric on cross-product-
    free left-deep plans, a narrower space than the MILP's, so the result
    is reported as ``FEASIBLE`` without a bound rather than ``OPTIMAL``.
    """

    name = "ikkbz"
    honors_time_limit = False

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        try:
            engine = IKKBZOptimizer(query)
        except PlanError as error:
            result = GreedyAdapter(self.settings)._run(query, budget)
            result.algorithm = self.name
            result.diagnostics["fallback"] = "greedy"
            result.diagnostics["fallback_reason"] = str(error)
            return result
        outcome = engine.optimize()
        diagnostics: dict[str, Any] = {
            "engine_result": outcome,
            "optimal_within": "cross-product-free left-deep plans, C_out",
            "cout_cost": outcome.cost,
        }
        return self._heuristic_result(
            query, outcome.plan, outcome.elapsed, diagnostics
        )


# ----------------------------------------------------------------------
# Heuristics
# ----------------------------------------------------------------------

class GreedyAdapter(EngineAdapter):
    """Minimum-intermediate-result greedy construction.

    Budget: **ignored** — the heuristic is O(n^3) and effectively
    instantaneous at any supported query size.  ``settings.extra`` accepts
    ``try_all_starts`` (default ``True``).
    """

    name = "greedy"
    honors_time_limit = False

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        started = time.monotonic()
        outcome = GreedyOptimizer(
            query,
            self.settings.cost_context(),
            use_cout=self.settings.use_cout,
            algorithm=self.settings.join_algorithm,
            try_all_starts=self.settings.extra.get("try_all_starts", True),
        ).optimize()
        return self._heuristic_result(
            query,
            outcome.plan,
            time.monotonic() - started,
            {"engine_result": outcome},
        )


class _RandomizedAdapter(EngineAdapter):
    """Shared wrapper for the Steinbrunn-style randomized heuristics.

    Budget: **honored** — both engines are anytime loops that run until
    the deadline (``settings.extra["max_iterations"]`` can cap them
    earlier for deterministic tests).  Their improvement traces become
    the unified event stream, without bounds — the paper's Section 2
    point that randomized algorithms prove nothing.
    """

    honors_time_limit = True

    def _engine(self, query: Query):
        raise NotImplementedError

    def _run(
        self, query: Query, budget: float, cancel_token=None
    ) -> PlanResult:
        outcome: RandomizedResult = self._engine(query).optimize(
            time_limit=budget,
            max_iterations=self.settings.extra.get("max_iterations"),
        )
        events = [
            IncumbentEvent(instant, cost, -math.inf, "incumbent")
            for instant, cost in outcome.trace
        ]
        return self._heuristic_result(
            query,
            outcome.plan,
            outcome.elapsed,
            {"engine_result": outcome, "iterations": outcome.iterations},
            events=events,
        )


class IterativeImprovementAdapter(_RandomizedAdapter):
    """Random-restart hill climbing (see :class:`_RandomizedAdapter`)."""

    name = "ii"

    def _engine(self, query: Query):
        return IterativeImprovement(
            query,
            context=self.settings.cost_context(),
            use_cout=self.settings.use_cout,
            algorithm=self.settings.join_algorithm,
            seed=self.settings.seed,
        )


class SimulatedAnnealingAdapter(_RandomizedAdapter):
    """Simulated annealing (see :class:`_RandomizedAdapter`)."""

    name = "sa"

    def _engine(self, query: Query):
        return SimulatedAnnealing(
            query,
            context=self.settings.cost_context(),
            use_cout=self.settings.use_cout,
            algorithm=self.settings.join_algorithm,
            seed=self.settings.seed,
        )


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------

def _ikkbz_applicable(query: Query) -> bool:
    """Whether IKKBZ's applicability conditions hold for ``query``."""
    if not query.is_connected or query.correlated_groups:
        return False
    if any(p.arity > 2 for p in query.predicates):
        return False
    edges = {frozenset(p.tables) for p in query.predicates if p.is_binary}
    return len(edges) == query.num_tables - 1


def route_algorithm(
    query: Query, settings: OptimizerSettings | None = None
) -> str:
    """Pick an algorithm for ``query`` by table count and graph shape.

    Mirrors how ``lp_backend``'s ``backend="auto"`` routes LPs by model
    size: small queries go to the exhaustive DP (milliseconds, proven
    optimal), tree-shaped C_out queries to the polynomial IKKBZ
    algorithm, mid-size queries to the anytime MILP solver, and anything
    larger to the greedy constructive heuristic.
    """
    settings = settings or OptimizerSettings()
    if (
        query.num_tables <= AUTO_EXACT_MAX_TABLES
        and query.num_tables <= MAX_DP_TABLES
    ):
        return "selinger"
    if settings.use_cout and _ikkbz_applicable(query):
        return "ikkbz"
    if query.num_tables <= AUTO_MILP_MAX_TABLES:
        return "milp"
    return "greedy"


class AutoAdapter(EngineAdapter):
    """Route each query to an algorithm via :func:`route_algorithm`.

    Budget: inherited — whatever the routed-to algorithm does with it,
    hence ``honors_time_limit`` is ``None`` (undetermined until routed).
    The routing decision is recorded in ``diagnostics["routed_to"]``
    (with ``diagnostics["requested_algorithm"] == "auto"``).
    """

    name = "auto"
    honors_time_limit = None

    def optimize(
        self,
        query: Query,
        *,
        time_limit: float | None = None,
        cancel_token=None,
    ) -> PlanResult:
        from repro.api.registry import create_optimizer

        routed = route_algorithm(query, self.settings)
        delegate = create_optimizer(routed, self.settings)
        result = delegate.optimize(
            query, time_limit=time_limit, cancel_token=cancel_token
        )
        result.diagnostics["requested_algorithm"] = self.name
        result.diagnostics["routed_to"] = routed
        return result


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------

for _adapter in (
    MILPAdapter,
    PortfolioMILPAdapter,
    SelingerAdapter,
    BushyAdapter,
    IKKBZAdapter,
    GreedyAdapter,
    IterativeImprovementAdapter,
    SimulatedAnnealingAdapter,
    AutoAdapter,
):
    register_optimizer(_adapter.name, _adapter, replace=True)
del _adapter
