"""The unified optimization result type shared by every algorithm.

Every optimizer behind the :mod:`repro.api` registry — MILP, dynamic
programming, IKKBZ, greedy, randomized — returns a :class:`PlanResult`.
Engine-specific outputs (``OptimizationResult``, ``DPResult``,
``IKKBZResult``, ``RandomizedResult``, ...) stay available through the
``diagnostics`` dict, but callers that only need "give me a plan and tell
me how good it is" never have to know which engine produced it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.catalog.query import Query
from repro.milp.solution import (
    IncumbentEvent,
    SolveStatus,
    optimality_factor,
    relative_gap,
)
from repro.plans.plan import LeftDeepPlan


@dataclass
class PlanResult:
    """What one optimization run produced, in algorithm-neutral terms.

    Attributes
    ----------
    algorithm:
        Registry key of the algorithm that produced this result.  For the
        ``"auto"`` router this is the key it routed to; the router itself
        appears in ``diagnostics["requested_algorithm"]``.
    query:
        The optimized query.
    plan:
        The chosen left-deep plan, or ``None`` when the algorithm produced
        nothing within its budget (e.g. an unfinished exhaustive DP).
    status:
        Final status, on the MILP solver's scale: ``OPTIMAL`` means proven
        optimal *within the algorithm's plan space*, ``FEASIBLE`` means a
        plan without a proof (heuristics), ``NO_SOLUTION`` means the budget
        expired empty-handed.
    objective:
        The algorithm's native objective value for ``plan`` (``inf``
        without a plan).  For the MILP this is the approximated cost; for
        the exact algorithms it equals their cost metric.
    best_bound:
        Proven lower bound on the optimal objective (``-inf`` when the
        algorithm proves nothing — the paper's Section 2 point about
        heuristics).
    true_cost:
        Exact cost of ``plan`` under the configured cost model, evaluated
        with the shared :class:`~repro.plans.cost.PlanCostEvaluator` so
        results from different engines are directly comparable.
    solve_time:
        Wall-clock seconds spent optimizing.
    events:
        Anytime event stream (incumbents/bounds over time).  MILP runs
        carry the full branch-and-bound stream; exact algorithms emit one
        terminal event; heuristics replay their improvement trace.
    diagnostics:
        Per-algorithm extras: node counts, LP statistics, DP subset
        counts, routing decisions, the raw engine result object, ...
    """

    algorithm: str
    query: Query
    plan: LeftDeepPlan | None
    status: SolveStatus
    objective: float = math.inf
    best_bound: float = -math.inf
    true_cost: float | None = None
    solve_time: float = 0.0
    events: list[IncumbentEvent] = field(default_factory=list)
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def optimality_factor(self) -> float:
        """Guaranteed ``objective / lower-bound`` factor (Figure 2 metric).

        ``inf`` when the algorithm proves no bound; 1.0 at proven
        optimality.
        """
        return optimality_factor(self.objective, self.best_bound)

    @property
    def gap(self) -> float:
        """Relative ``(objective - bound) / |bound|`` gap; ``inf`` unproven."""
        return relative_gap(self.objective, self.best_bound)

    @property
    def has_plan(self) -> bool:
        """Whether a usable plan is available."""
        return self.plan is not None

    def describe(self) -> str:
        """One-line human-readable summary."""
        plan = self.plan.describe() if self.plan else "<no plan>"
        cost = (
            f"{self.true_cost:,.0f}" if self.true_cost is not None else "n/a"
        )
        return (
            f"[{self.algorithm}] {self.status.value} {plan} "
            f"cost={cost} time={self.solve_time:.2f}s"
        )
