"""Deterministic fault injection for the solver and serving stack.

Chaos testing an optimization server only proves something if the chaos
is *reproducible*: a flaky chaos suite is worse than none.  This module
injects faults at named choke points ("sites") according to a seeded
:class:`FaultPlan` whose firing decisions depend solely on per-site
visit counters and per-site seeded RNG streams — never on wall-clock
time or thread identity — so the *number and kind* of injected faults is
identical across runs regardless of worker interleaving.

The package is a dependency leaf: it imports nothing from ``repro``, so
any layer (``milp.lp_backend``, ``milp.simplex``, ``serve.scheduler``,
``api.service``) can call :func:`check` without creating an import
cycle.  Instrumented call sites interpret the returned spec locally —
``"exception"`` becomes whatever error type is native to the site,
``"error"`` becomes the site's failure status, ``"corrupt"`` mutates the
site's payload via :func:`corrupt_basis`, and so on.

Usage::

    plan = FaultPlan(seed=7, specs=[
        FaultSpec(site=SIMPLEX_SOLVE, kind="error", every=5, limit=10),
        FaultSpec(site=POOL_FETCH, kind="corrupt", probability=0.5),
    ])
    with inject(plan):
        ...serve traffic...
    assert plan.total_injected() >= 20

Injection is process-global (one active plan) because the instrumented
sites sit below layers that cannot thread a plan object through —
exactly like the production faults being modelled.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
from collections.abc import Iterator
from dataclasses import dataclass, replace
from typing import Any

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "HIGHS_SOLVE",
    "INSTALL_BASIS",
    "POOL_FETCH",
    "SCHEDULER_OFFER",
    "SERVICE_OPTIMIZE",
    "SHARD_HEARTBEAT",
    "SHARD_KILL",
    "SHARD_REQUEST",
    "SHARD_WIRE",
    "SIMPLEX_SOLVE",
    "STORE_GET",
    "STORE_PUT",
    "active",
    "check",
    "clear",
    "corrupt_basis",
    "corrupt_payload",
    "inject",
    "install",
]

# ---------------------------------------------------------------------------
# Instrumented sites.  Keep the strings stable: tests and docs name them.
# ---------------------------------------------------------------------------

#: ``RevisedSimplexBackend``/``SimplexSession.solve`` — LP solve entry.
SIMPLEX_SOLVE = "simplex.solve"
#: ``ScipyHighsBackend.solve`` — the fallback LP path.
HIGHS_SOLVE = "highs.solve"
#: ``SimplexSession.install_basis`` — warm-start snapshot installation.
INSTALL_BASIS = "simplex.install_basis"
#: ``BasisExchangePool.fetch`` — cross-query shared-basis lookup.
POOL_FETCH = "pool.fetch"
#: ``DeadlineScheduler.offer`` — admission (overflow = queue full).
SCHEDULER_OFFER = "scheduler.offer"
#: ``OptimizerService.optimize`` — the API boundary the server calls.
SERVICE_OPTIMIZE = "service.optimize"
#: ``repro.store.PlanStore`` reads (plans, bases, replay scans).
STORE_GET = "store.get"
#: ``repro.store.PlanStore`` writes (plan and basis upserts).
STORE_PUT = "store.put"
#: Shard child request intake — ``kind="exception"`` means SIGKILL the
#: shard process (kill -9: no cleanup, no goodbye), modelling an OOM
#: kill or hardware loss while earlier requests are mid-solve.
SHARD_KILL = "shard.kill"
#: Shard heartbeat loop — ``kind="error"`` skips a beat,
#: ``kind="slow"`` stalls the loop ``delay`` seconds (a wedged shard
#: that is alive but silent, which the supervisor must treat as dead).
SHARD_HEARTBEAT = "shard.heartbeat"
#: Shard request handling — ``kind="slow"`` wedges the request
#: ``delay`` seconds before the solve; ``kind="error"`` fails it.
SHARD_REQUEST = "shard.request"
#: The hub↔shard pipe — ``kind="corrupt"`` mangles an outbound frame's
#: bytes, which the receiver's checksum must catch and turn into an
#: honest per-request error, never a crash.
SHARD_WIRE = "shard.wire"

#: Fault kinds understood by the instrumented sites.
KINDS = ("exception", "error", "corrupt", "overflow", "slow")


def _mix(*parts: int) -> int:
    """Fold integers into one RNG seed (``random.Random`` rejects
    tuples; ``hash`` of a tuple is fine but less obviously stable)."""
    seed = 0
    for part in parts:
        seed = seed * 1_000_003 + part + 0x9E3779B9
    return seed


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault rule bound to a site.

    Firing condition (evaluated against the site's 1-based visit
    counter): fire on visits listed in ``at``, on every ``every``-th
    visit, or with ``probability`` per visit drawn from this spec's own
    seeded RNG stream.  ``limit`` caps total firings.  Exactly one of
    ``at``/``every``/``probability`` should be set.
    """

    site: str
    kind: str
    every: int | None = None
    at: tuple[int, ...] = ()
    probability: float | None = None
    limit: int | None = None
    #: Seconds to stall for ``kind="slow"``.
    delay: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.every is None and not self.at and self.probability is None:
            raise ValueError("one of every/at/probability must be set")


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules with deterministic firing.

    Thread-safe: the per-site visit counter and every RNG draw happen
    under one lock, so visit numbers — and therefore firing decisions —
    form a single deterministic sequence per site.
    """

    def __init__(
        self, seed: int, specs: list[FaultSpec] | tuple[FaultSpec, ...]
    ) -> None:
        self.seed = seed
        self.specs = tuple(specs)
        self._lock = threading.Lock()
        self._visits: dict[str, int] = {}
        self._fired: dict[int, int] = {}  # spec index -> firings
        # One independent RNG stream per probabilistic spec, seeded from
        # (plan seed, spec index) so adding a spec never shifts another
        # spec's stream.
        self._rngs = {
            index: random.Random(_mix(seed, index))
            for index, spec in enumerate(self.specs)
            if spec.probability is not None
        }

    def visit(self, site: str) -> FaultSpec | None:
        """Record one visit to ``site``; the fired spec, if any.

        When several specs fire on the same visit the earliest in the
        plan wins (the others do not consume a firing), keeping the
        outcome a pure function of the visit number.
        """
        with self._lock:
            count = self._visits.get(site, 0) + 1
            self._visits[site] = count
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                fired = self._fired.get(index, 0)
                if spec.limit is not None and fired >= spec.limit:
                    continue
                hit = False
                if count in spec.at:
                    hit = True
                elif spec.every is not None and count % spec.every == 0:
                    hit = True
                elif spec.probability is not None:
                    # Draw exactly once per (probabilistic spec, visit):
                    # the stream position equals the visit number, so the
                    # decision is reproducible across thread schedules.
                    if self._rngs[index].random() < spec.probability:
                        hit = True
                if hit:
                    self._fired[index] = fired + 1
                    return spec
            return None

    def rng_for(self, spec: FaultSpec) -> random.Random:
        """Deterministic RNG for payload corruption under ``spec``."""
        index = self.specs.index(spec)
        with self._lock:
            fired = self._fired.get(index, 0)
        return random.Random(_mix(self.seed, index, fired))

    def visits(self, site: str) -> int:
        with self._lock:
            return self._visits.get(site, 0)

    def total_injected(self) -> int:
        """Faults actually fired so far, across all specs."""
        with self._lock:
            return sum(self._fired.values())

    def report(self) -> dict[str, int]:
        """Per-``site/kind`` firing counts (chaos-suite assertions)."""
        with self._lock:
            out: dict[str, int] = {}
            for index, fired in self._fired.items():
                spec = self.specs[index]
                key = f"{spec.site}/{spec.kind}"
                out[key] = out.get(key, 0) + fired
            return out


# ---------------------------------------------------------------------------
# Process-global activation
# ---------------------------------------------------------------------------

_active: FaultPlan | None = None
_install_lock = threading.Lock()


def _reset_after_fork() -> None:
    """Fork hygiene for sharded serving (``repro.serve.shard``).

    A forked shard child inherits the parent's plan object *and* any
    lock state frozen mid-acquire by an unlucky fork.  Both are wrong
    for the child: its faults are delivered explicitly via
    ``ShardConfig.fault_specs`` (seeded per shard index), so start the
    child with a fresh lock and no active plan.
    """
    global _active, _install_lock
    _install_lock = threading.Lock()
    _active = None


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_after_fork)


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` process-wide (replaces any previous plan)."""
    global _active
    with _install_lock:
        _active = plan


def clear() -> None:
    """Deactivate fault injection."""
    global _active
    with _install_lock:
        _active = None


def active() -> FaultPlan | None:
    """The currently installed plan (``None`` in production)."""
    return _active


@contextlib.contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped activation: ``with inject(plan): ...`` (always clears)."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def check(site: str) -> FaultSpec | None:
    """Fast poll at an instrumented site; the fired spec or ``None``.

    The no-plan fast path is one global read — cheap enough to leave in
    production code paths permanently.
    """
    plan = _active
    if plan is None:
        return None
    return plan.visit(site)


# ---------------------------------------------------------------------------
# Payload corruption helpers
# ---------------------------------------------------------------------------

def corrupt_basis(basis: Any, rng: random.Random) -> Any:
    """A deterministically corrupted copy of a basis snapshot.

    Works on any frozen dataclass with ``basic`` / ``status`` integer
    arrays (duck-typed to avoid importing the solver from this leaf).
    The corruption modes mirror real snapshot-rot failure classes:
    truncation, out-of-range indices, duplicated indices, invalid status
    codes, and NaN-poisoned float arrays.
    """
    import numpy as np

    basic = np.asarray(basis.basic)
    status = np.asarray(basis.status)
    mode = rng.randrange(5)
    if mode == 0 and basic.size > 0:  # truncated snapshot
        return replace(basis, basic=basic[: basic.size // 2].copy())
    if mode == 1 and basic.size > 0:  # out-of-range column index
        bad = basic.copy()
        bad[rng.randrange(bad.size)] = status.size + 17
        return replace(basis, basic=bad)
    if mode == 2 and basic.size > 1:  # duplicated basic index
        bad = basic.copy()
        # Copy slot 0 into a *different* slot, so the corruption is
        # never a no-op that a validator rightly accepts.
        bad[1 + rng.randrange(bad.size - 1)] = bad[0]
        return replace(basis, basic=bad)
    if mode == 3 and status.size > 0:  # invalid status code
        bad = status.copy()
        bad[rng.randrange(bad.size)] = 9
        return replace(basis, status=bad)
    # NaN-poisoned float status array (wrong dtype *and* non-finite).
    poisoned = status.astype(float)
    if poisoned.size:
        poisoned[rng.randrange(poisoned.size)] = float("nan")
    return replace(basis, status=poisoned)


def corrupt_payload(payload: bytes, rng: random.Random) -> bytes:
    """A deterministically corrupted copy of a serialized record.

    Models at-rest/in-transit byte rot against checksummed store
    payloads: truncation (torn write), a flipped byte (bit rot), or a
    garbage prefix (misaligned read).  Every mode breaks the payload's
    frame checksum, so a validating reader must reject — never
    misparse — the result.
    """
    data = bytes(payload)
    mode = rng.randrange(3)
    if mode == 0 and len(data) > 1:  # torn write
        return data[: rng.randrange(1, len(data))]
    if mode == 1 and len(data) > 0:  # single flipped byte
        index = rng.randrange(len(data))
        flipped = data[index] ^ (1 << rng.randrange(8))
        return data[:index] + bytes([flipped]) + data[index + 1:]
    # Garbage prefix: shifts every structure out of alignment.
    return bytes([rng.randrange(256) for _ in range(7)]) + data
