"""Classical query optimization baselines.

:class:`SelingerOptimizer` is the paper's experimental comparator
(exhaustive left-deep DP with cross products).  :class:`GreedyOptimizer`
supplies MILP warm starts.  :class:`BushyOptimizer` is an extension for
quantifying the left-deep restriction.
"""

from repro.dp.bushy import (
    BushyNode,
    BushyOptimizer,
    BushyResult,
    left_deep_from_bushy,
)
from repro.dp.greedy import GreedyOptimizer, GreedyResult
from repro.dp.ikkbz import IKKBZOptimizer, IKKBZResult
from repro.dp.randomized import (
    IterativeImprovement,
    RandomizedResult,
    SimulatedAnnealing,
)
from repro.dp.selinger import MAX_DP_TABLES, DPResult, SelingerOptimizer

__all__ = [
    "BushyNode",
    "BushyOptimizer",
    "BushyResult",
    "DPResult",
    "GreedyOptimizer",
    "GreedyResult",
    "IKKBZOptimizer",
    "IKKBZResult",
    "IterativeImprovement",
    "MAX_DP_TABLES",
    "RandomizedResult",
    "SelingerOptimizer",
    "SimulatedAnnealing",
    "left_deep_from_bushy",
]
