"""Randomized join-ordering heuristics (Steinbrunn et al.).

The paper's Section 2 discusses these as the alternative family to
exhaustive optimization: iterative improvement and simulated annealing
produce anytime streams of improving plans but — unlike the MILP solver —
can give **no bound** on how far the current plan is from the optimum.
They are implemented here both as baselines and to make that contrast
measurable (ablation harness).

Moves follow Steinbrunn et al.'s left-deep neighbourhood: *swap* two
positions of the join order, or *3-cycle* three positions.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field

from repro.catalog.query import Query
from repro.plans.cost import PlanCostEvaluator
from repro.plans.operators import CostContext, JoinAlgorithm
from repro.plans.plan import LeftDeepPlan


@dataclass(frozen=True)
class RandomizedResult:
    """Outcome of a randomized optimization run.

    ``trace`` holds ``(seconds, best_cost)`` pairs — an anytime stream,
    but without optimality guarantees (contrast with
    :class:`~repro.milp.solution.IncumbentEvent`, which carries bounds).
    """

    plan: LeftDeepPlan
    cost: float
    iterations: int
    elapsed: float
    trace: tuple[tuple[float, float], ...] = field(default=())

    @property
    def optimality_factor(self) -> float:
        """Always infinite: randomized algorithms prove nothing (§2)."""
        return math.inf


class _OrderCostCache:
    """Shared machinery: cost of a join order, memoized prefix-wise."""

    def __init__(self, query: Query, evaluator: PlanCostEvaluator,
                 algorithm: JoinAlgorithm) -> None:
        self.query = query
        self.evaluator = evaluator
        self.algorithm = algorithm

    def cost(self, order: list[str]) -> float:
        plan = LeftDeepPlan.from_order(self.query, order, self.algorithm)
        return self.evaluator.cost(plan)


def _random_neighbour(order: list[str], rng: random.Random) -> list[str]:
    """Swap move or 3-cycle move, per Steinbrunn et al."""
    neighbour = list(order)
    n = len(order)
    if n < 2:
        return neighbour
    if n >= 3 and rng.random() < 0.5:
        i, j, k = rng.sample(range(n), 3)
        neighbour[i], neighbour[j], neighbour[k] = (
            neighbour[k], neighbour[i], neighbour[j],
        )
    else:
        i, j = rng.sample(range(n), 2)
        neighbour[i], neighbour[j] = neighbour[j], neighbour[i]
    return neighbour


@dataclass
class IterativeImprovement:
    """Random-restart hill climbing over left-deep join orders.

    Parameters
    ----------
    query:
        Query to optimize.
    context, use_cout, algorithm:
        Cost metric, matching the other optimizers.
    seed:
        RNG seed (fully deterministic runs).
    max_local_moves:
        Consecutive non-improving moves before declaring a local optimum
        and restarting.
    """

    query: Query
    context: CostContext | None = None
    use_cout: bool = False
    algorithm: JoinAlgorithm = JoinAlgorithm.HASH
    seed: int = 0
    max_local_moves: int = 60

    def optimize(
        self, time_limit: float = 1.0, max_iterations: int | None = None
    ) -> RandomizedResult:
        """Run restarts until the budget expires; return the best plan."""
        start = time.monotonic()
        rng = random.Random(self.seed)
        evaluator = PlanCostEvaluator(
            self.query, self.context, self.use_cout
        )
        cache = _OrderCostCache(self.query, evaluator, self.algorithm)
        names = list(self.query.table_names)
        best_order = list(names)
        best_cost = cache.cost(best_order)
        trace = [(time.monotonic() - start, best_cost)]
        iterations = 0
        while time.monotonic() - start < time_limit:
            if max_iterations is not None and iterations >= max_iterations:
                break
            order = list(names)
            rng.shuffle(order)
            cost = cache.cost(order)
            stale = 0
            while stale < self.max_local_moves:
                if time.monotonic() - start >= time_limit:
                    break
                if (
                    max_iterations is not None
                    and iterations >= max_iterations
                ):
                    break
                iterations += 1
                candidate = _random_neighbour(order, rng)
                candidate_cost = cache.cost(candidate)
                if candidate_cost < cost:
                    order, cost = candidate, candidate_cost
                    stale = 0
                else:
                    stale += 1
            if cost < best_cost:
                best_order, best_cost = order, cost
                trace.append((time.monotonic() - start, best_cost))
        plan = LeftDeepPlan.from_order(self.query, best_order, self.algorithm)
        return RandomizedResult(
            plan, best_cost, iterations,
            time.monotonic() - start, tuple(trace),
        )


@dataclass
class SimulatedAnnealing:
    """Simulated annealing over left-deep join orders (Steinbrunn et al.).

    Geometric cooling; the starting temperature is calibrated so the
    median early uphill move is accepted with ~50% probability.
    """

    query: Query
    context: CostContext | None = None
    use_cout: bool = False
    algorithm: JoinAlgorithm = JoinAlgorithm.HASH
    seed: int = 0
    cooling: float = 0.95
    moves_per_temperature: int = 40

    def optimize(
        self, time_limit: float = 1.0, max_iterations: int | None = None
    ) -> RandomizedResult:
        """Anneal until frozen or out of budget; return the best plan."""
        start = time.monotonic()
        rng = random.Random(self.seed)
        evaluator = PlanCostEvaluator(
            self.query, self.context, self.use_cout
        )
        cache = _OrderCostCache(self.query, evaluator, self.algorithm)
        order = list(self.query.table_names)
        rng.shuffle(order)
        cost = cache.cost(order)
        best_order, best_cost = list(order), cost
        trace = [(time.monotonic() - start, best_cost)]

        # Calibrate temperature from a few random uphill deltas.
        deltas = []
        for _ in range(10):
            probe_cost = cache.cost(_random_neighbour(order, rng))
            if probe_cost > cost:
                deltas.append(probe_cost - cost)
        temperature = (
            (sorted(deltas)[len(deltas) // 2] / math.log(2.0))
            if deltas
            else max(1.0, cost * 0.1)
        )

        iterations = 0
        frozen = 0
        while (
            time.monotonic() - start < time_limit
            and frozen < 5
            and (max_iterations is None or iterations < max_iterations)
        ):
            improved = False
            for _ in range(self.moves_per_temperature):
                if time.monotonic() - start >= time_limit:
                    break
                iterations += 1
                candidate = _random_neighbour(order, rng)
                candidate_cost = cache.cost(candidate)
                delta = candidate_cost - cost
                accept = delta <= 0 or (
                    temperature > 0
                    and rng.random() < math.exp(-delta / temperature)
                )
                if accept:
                    order, cost = candidate, candidate_cost
                    if cost < best_cost:
                        best_order, best_cost = list(order), cost
                        trace.append(
                            (time.monotonic() - start, best_cost)
                        )
                        improved = True
            temperature *= self.cooling
            frozen = 0 if improved else frozen + 1
        plan = LeftDeepPlan.from_order(self.query, best_order, self.algorithm)
        return RandomizedResult(
            plan, best_cost, iterations,
            time.monotonic() - start, tuple(trace),
        )
