"""Bushy dynamic programming optimizer (extension beyond the paper).

The paper restricts its MILP and its DP comparator to left-deep plans.  For
completeness — and to quantify how much the left-deep restriction costs — we
also provide a DPsub-style bushy optimizer over connected subgraphs
(cross products excluded, following Moerkotte & Neumann).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.catalog.query import Query
from repro.exceptions import PlanError
from repro.plans.cardinality import CardinalityModel
from repro.plans.operators import CostContext, hash_join_cost
from repro.plans.plan import LeftDeepPlan

#: Bushy DP enumerates subset splits, so keep the table cap tighter.
MAX_BUSHY_TABLES = 18

_EXP_CLAMP = 700.0


@dataclass(frozen=True)
class BushyNode:
    """A node of a bushy join tree: a leaf table or an inner join."""

    tables: frozenset[str]
    table: str | None = None
    left: "BushyNode | None" = None
    right: "BushyNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether the node scans a single base table."""
        return self.table is not None

    def describe(self) -> str:
        """Parenthesized rendering of the join tree."""
        if self.is_leaf:
            return str(self.table)
        assert self.left is not None and self.right is not None
        return f"({self.left.describe()} ⋈ {self.right.describe()})"

    def is_left_deep(self) -> bool:
        """Whether the tree is linear (every inner node has a leaf child).

        Split orientation inside the DP is arbitrary, so a mirrored chain
        counts as left-deep as well.
        """
        if self.is_leaf:
            return True
        assert self.left is not None and self.right is not None
        if self.right.is_leaf:
            return self.left.is_left_deep()
        if self.left.is_leaf:
            return self.right.is_left_deep()
        return False


@dataclass(frozen=True)
class BushyResult:
    """Outcome of a bushy DP run."""

    tree: BushyNode | None
    cost: float
    optimal: bool
    elapsed: float


class BushyOptimizer:
    """DP over connected subgraphs producing optimal bushy trees.

    Parameters mirror :class:`~repro.dp.selinger.SelingerOptimizer`;
    the cost metric is either C_out or the hash-join formula.
    """

    def __init__(
        self,
        query: Query,
        context: CostContext | None = None,
        use_cout: bool = True,
    ) -> None:
        if query.num_tables > MAX_BUSHY_TABLES:
            raise PlanError(
                f"bushy DP supports at most {MAX_BUSHY_TABLES} tables"
            )
        if not query.is_connected:
            raise PlanError("bushy DP requires a connected join graph")
        self.query = query
        self.context = context or CostContext()
        self.use_cout = use_cout
        self._model = CardinalityModel(query)
        self._names = list(query.table_names)
        self._index = {name: i for i, name in enumerate(self._names)}
        n = query.num_tables
        self._adjacent = [0] * n
        for predicate in self._model.join_predicates:
            members = [self._index[t] for t in predicate.tables]
            for i in members:
                for j in members:
                    if i != j:
                        self._adjacent[i] |= 1 << j

    def optimize(self, time_limit: float | None = None) -> BushyResult:
        """Run the bushy DP; ``None`` tree if the budget expires."""
        start = time.monotonic()
        deadline = None if time_limit is None else start + time_limit
        n = self.query.num_tables
        full = (1 << n) - 1
        inf = math.inf

        cost = [inf] * (full + 1)
        split = [0] * (full + 1)
        card = [0.0] * (full + 1)
        pages = [0.0] * (full + 1)
        connected = [False] * (full + 1)

        for i in range(n):
            mask = 1 << i
            cost[mask] = 0.0
            connected[mask] = True
            card[mask] = math.exp(
                min(self._model.effective_log_cardinality(self._names[i]),
                    _EXP_CLAMP)
            )
            pages[mask] = self.context.pages(card[mask])

        for mask in range(3, full + 1):
            # Deadline check first: power-of-two masks are skipped below,
            # so the modulus test must not hide behind that skip.
            if deadline is not None and mask % 1024 == 3:
                if time.monotonic() > deadline:
                    return BushyResult(
                        None, inf, False, time.monotonic() - start
                    )
            if mask & (mask - 1) == 0:
                continue
            connected[mask] = self._is_connected(mask)
            if not connected[mask]:
                continue
            names = frozenset(
                self._names[i] for i in range(n) if mask >> i & 1
            )
            card[mask] = math.exp(
                min(self._model.log_cardinality(names), _EXP_CLAMP)
            )
            pages[mask] = self.context.pages(card[mask])
            is_full = mask == full
            # Enumerate proper submask splits; visit each unordered pair once.
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other:
                    sub = (sub - 1) & mask
                    continue
                if (
                    connected[sub]
                    and connected[other]
                    and cost[sub] < inf
                    and cost[other] < inf
                    and self._parts_joined(sub, other)
                ):
                    if self.use_cout:
                        step = 0.0 if is_full else card[mask]
                    else:
                        step = hash_join_cost(pages[sub], pages[other])
                    candidate = cost[sub] + cost[other] + step
                    if candidate < cost[mask]:
                        cost[mask] = candidate
                        split[mask] = sub
                sub = (sub - 1) & mask

        if cost[full] == inf:
            return BushyResult(None, inf, False, time.monotonic() - start)
        tree = self._reconstruct(full, split)
        return BushyResult(tree, cost[full], True, time.monotonic() - start)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _is_connected(self, mask: int) -> bool:
        """Whether the induced subgraph on ``mask`` is connected."""
        seed = mask & -mask
        frontier = seed
        reached = seed
        while frontier:
            bit = frontier & -frontier
            frontier ^= bit
            i = bit.bit_length() - 1
            new = self._adjacent[i] & mask & ~reached
            reached |= new
            frontier |= new
        return reached == mask

    def _parts_joined(self, left: int, right: int) -> bool:
        """Whether at least one predicate connects the two parts."""
        bits = left
        while bits:
            bit = bits & -bits
            bits ^= bit
            i = bit.bit_length() - 1
            if self._adjacent[i] & right:
                return True
        return False

    def _reconstruct(self, mask: int, split: list[int]) -> BushyNode:
        if mask & (mask - 1) == 0:
            i = mask.bit_length() - 1
            return BushyNode(frozenset({self._names[i]}), table=self._names[i])
        left = self._reconstruct(split[mask], split)
        right = self._reconstruct(mask ^ split[mask], split)
        return BushyNode(left.tables | right.tables, left=left, right=right)


def left_deep_from_bushy(
    tree: BushyNode, query: Query
) -> LeftDeepPlan | None:
    """Convert a linear bushy tree to a left-deep plan (any orientation)."""
    if not tree.is_left_deep():
        return None
    order: list[str] = []
    node: BushyNode | None = tree
    while node is not None and not node.is_leaf:
        assert node.left is not None and node.right is not None
        if node.right.is_leaf and not (
            node.left.is_leaf and not node.right.is_left_deep()
        ):
            leaf, rest = node.right, node.left
        else:
            leaf, rest = node.left, node.right
        assert leaf.table is not None
        order.append(leaf.table)
        node = rest
    assert node is not None and node.table is not None
    order.append(node.table)
    order.reverse()
    return LeftDeepPlan.from_order(query, order)
