"""IKKBZ: polynomial-time optimal left-deep ordering for acyclic queries.

Ibaraki & Kameda's algorithm, as refined by Krishnamurthy, Boral and
Zaniolo: for **tree-shaped** join graphs and cost functions with the
adjacent-sequence-interchange (ASI) property — C_out has it — the optimal
cross-product-free left-deep order is computable in ``O(n^2)`` by ranking
and merging precedence-tree chains.

Included as a classical baseline beyond the paper's DP comparator: it
shows what *specialized* optimizer code buys on the restricted query class
where it applies, versus the generic MILP approach that handles arbitrary
(cyclic, cross-product) queries.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.catalog.query import Query
from repro.exceptions import PlanError
from repro.plans.cardinality import CardinalityModel
from repro.plans.cost import PlanCostEvaluator
from repro.plans.plan import LeftDeepPlan


@dataclass
class _Chunk:
    """A (possibly compound) precedence-chain element.

    ``tables`` keeps the flattened table order inside the chunk; ``t`` and
    ``c`` are the ASI aggregates ``T`` and ``C`` of the sequence.
    """

    tables: list[str]
    t: float
    c: float

    @property
    def rank(self) -> float:
        """ASI rank ``(T - 1) / C`` (infinite for zero-cost chunks)."""
        if self.c <= 0.0:
            return math.inf if self.t > 1.0 else -math.inf
        return (self.t - 1.0) / self.c


@dataclass
class _TreeNode:
    table: str
    t: float  # n_i * s_i (selectivity of the edge to the parent)
    children: list["_TreeNode"] = field(default_factory=list)


@dataclass(frozen=True)
class IKKBZResult:
    """Outcome of an IKKBZ run: the optimal cross-product-free plan."""

    plan: LeftDeepPlan
    cost: float
    elapsed: float


class IKKBZOptimizer:
    """Optimal left-deep C_out ordering for acyclic join graphs.

    Raises
    ------
    PlanError
        If the join graph is not a connected tree of binary predicates
        (IKKBZ's applicability condition).
    """

    def __init__(self, query: Query) -> None:
        if not query.is_connected:
            raise PlanError("IKKBZ requires a connected join graph")
        if any(p.arity > 2 for p in query.predicates):
            raise PlanError("IKKBZ handles binary join predicates only")
        if query.correlated_groups:
            raise PlanError(
                "IKKBZ's ASI cost decomposition cannot represent "
                "correlated-group corrections; use DP or the MILP optimizer"
            )
        binary_edges = {
            frozenset(p.tables)
            for p in query.predicates
            if p.is_binary
        }
        if len(binary_edges) != query.num_tables - 1:
            raise PlanError(
                "IKKBZ requires a tree-shaped (acyclic) join graph; "
                f"got {len(binary_edges)} distinct edges for "
                f"{query.num_tables} tables"
            )
        self.query = query
        self._cards = CardinalityModel(query)
        # Combined selectivity per edge (product over parallel predicates).
        self._edge_selectivity: dict[frozenset[str], float] = {}
        for predicate in query.predicates:
            if not predicate.is_binary:
                continue
            key = frozenset(predicate.tables)
            self._edge_selectivity[key] = (
                self._edge_selectivity.get(key, 1.0)
                * predicate.selectivity
            )
        self._evaluator = PlanCostEvaluator(query, use_cout=True)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def optimize(self) -> IKKBZResult:
        """Try every root; return the cheapest precedence-feasible order."""
        start = time.monotonic()
        best_order: list[str] | None = None
        best_internal = math.inf
        for root in self.query.table_names:
            order, internal_cost = self._solve_rooted(root)
            if internal_cost < best_internal:
                best_internal = internal_cost
                best_order = order
        assert best_order is not None
        plan = LeftDeepPlan.from_order(self.query, best_order)
        return IKKBZResult(
            plan=plan,
            cost=self._evaluator.cost(plan),
            elapsed=time.monotonic() - start,
        )

    # ------------------------------------------------------------------
    # Core algorithm
    # ------------------------------------------------------------------

    def _solve_rooted(self, root: str) -> tuple[list[str], float]:
        tree = self._build_tree(root)
        chain = self._linearize(tree)
        order = [root]
        for chunk in chain:
            order.extend(chunk.tables)
        # Internal ASI cost: C of the full sequence after the root, scaled
        # by the root's cardinality (counts every join output once).
        total_c = 0.0
        total_t = 1.0
        for chunk in chain:
            total_c += total_t * chunk.c
            total_t *= chunk.t
        root_card = math.exp(
            self._cards.effective_log_cardinality(root)
        )
        return order, root_card * total_c

    def _build_tree(self, root: str) -> _TreeNode:
        adjacency = self.query.join_graph
        seen = {root}
        root_node = _TreeNode(root, t=1.0)
        stack = [(root, root_node)]
        while stack:
            name, node = stack.pop()
            for neighbour in sorted(adjacency[name]):
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                selectivity = self._edge_selectivity[
                    frozenset({name, neighbour})
                ]
                card = math.exp(
                    self._cards.effective_log_cardinality(neighbour)
                )
                child = _TreeNode(neighbour, t=selectivity * card)
                node.children.append(child)
                stack.append((neighbour, child))
        return root_node

    def _linearize(self, node: _TreeNode) -> list[_Chunk]:
        """Turn the subtree below ``node`` into a rank-sorted chain."""
        child_chains = [
            self._chain_with_head(child) for child in node.children
        ]
        return self._merge_chains(child_chains)

    def _chain_with_head(self, child: _TreeNode) -> list[_Chunk]:
        head = _Chunk([child.table], t=child.t, c=child.t)
        tail = self._linearize(child)
        return self._normalize([head] + tail)

    @staticmethod
    def _normalize(chain: list[_Chunk]) -> list[_Chunk]:
        """Merge out-of-rank-order neighbours into compound chunks.

        After normalization ranks are non-decreasing along the chain, and
        the head stays the head — preserving precedence feasibility.
        """
        result: list[_Chunk] = []
        for chunk in chain:
            result.append(chunk)
            while len(result) >= 2 and result[-2].rank > result[-1].rank:
                second = result.pop()
                first = result.pop()
                result.append(
                    _Chunk(
                        first.tables + second.tables,
                        t=first.t * second.t,
                        c=first.c + first.t * second.c,
                    )
                )
        return result

    @staticmethod
    def _merge_chains(chains: list[list[_Chunk]]) -> list[_Chunk]:
        """Merge normalized chains by ascending rank (stable)."""
        import heapq

        heap: list[tuple[float, int, int]] = []
        for index, chain in enumerate(chains):
            if chain:
                heapq.heappush(heap, (chain[0].rank, index, 0))
        merged: list[_Chunk] = []
        while heap:
            _, index, position = heapq.heappop(heap)
            merged.append(chains[index][position])
            if position + 1 < len(chains[index]):
                heapq.heappush(
                    heap,
                    (chains[index][position + 1].rank, index, position + 1),
                )
        return merged
