"""Classical Selinger-style dynamic programming optimizer.

This is the paper's experimental comparator (Section 7.1): exhaustive DP
over table subsets for **left-deep plans with cross products allowed**.  It
enumerates all ``2^n`` table subsets, so — exactly as in the paper — it
either finishes with the proven-optimal plan or produces nothing within the
time budget.  There is no anytime behaviour by construction.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.catalog.query import Query
from repro.exceptions import PlanError
from repro.plans.cardinality import CardinalityModel
from repro.plans.operators import (
    CostContext,
    JoinAlgorithm,
    block_nested_loop_cost,
    hash_join_cost,
    sort_merge_join_cost,
)
from repro.plans.plan import LeftDeepPlan

#: Hard cap on table count: beyond this the DP table would not fit in memory.
MAX_DP_TABLES = 26

#: Clamp for ``exp`` to avoid overflow on pathological cardinality products.
_EXP_CLAMP = 700.0


@dataclass(frozen=True)
class DPResult:
    """Outcome of a DP optimization run.

    ``plan`` is ``None`` when the time budget expired before the DP table
    was complete (the DP produces nothing before finishing).
    """

    plan: LeftDeepPlan | None
    cost: float
    optimal: bool
    elapsed: float
    subsets_explored: int

    @property
    def optimality_factor(self) -> float:
        """The paper's Figure 2 metric: 1.0 once finished, ``inf`` before."""
        return 1.0 if self.optimal else math.inf


class SelingerOptimizer:
    """Exhaustive left-deep DP with cross products.

    Parameters
    ----------
    query:
        Query to optimize.
    context:
        Physical cost parameters (shared with the MILP optimizer).
    use_cout:
        Optimize the C_out metric instead of an operator cost formula.
    algorithm:
        Join operator whose cost formula is charged per join (the paper's
        experiments assume hash joins throughout).
    allow_cross_products:
        The paper's setting is ``True``.  ``False`` restricts DP transitions
        to joins with at least one connecting predicate, which shrinks the
        search space for connected join graphs.
    """

    def __init__(
        self,
        query: Query,
        context: CostContext | None = None,
        use_cout: bool = False,
        algorithm: JoinAlgorithm = JoinAlgorithm.HASH,
        allow_cross_products: bool = True,
    ) -> None:
        if query.num_tables > MAX_DP_TABLES:
            raise PlanError(
                f"DP supports at most {MAX_DP_TABLES} tables, "
                f"query has {query.num_tables}"
            )
        if not allow_cross_products and not query.is_connected:
            raise PlanError(
                "cross products disabled but the join graph is disconnected"
            )
        self.query = query
        self.context = context or CostContext()
        self.use_cout = use_cout
        self.algorithm = algorithm
        self.allow_cross_products = allow_cross_products
        self._model = CardinalityModel(query)
        self._names = list(query.table_names)
        self._index = {name: i for i, name in enumerate(self._names)}
        self._prepare_statistics()

    def _prepare_statistics(self) -> None:
        """Precompute per-table log-cards and predicate trigger masks."""
        n = self.query.num_tables
        self._log_card = [
            self._model.effective_log_cardinality(name) for name in self._names
        ]
        self._table_card = [math.exp(v) for v in self._log_card]
        self._table_pages = [
            self.context.pages(card) for card in self._table_card
        ]
        # For each table i: predicates referencing i become applicable when
        # the other referenced tables are already present.
        self._triggers: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for predicate in self._model.join_predicates:
            member_indices = [self._index[t] for t in predicate.tables]
            for i in member_indices:
                others = 0
                for j in member_indices:
                    if j != i:
                        others |= 1 << j
                self._triggers[i].append((others, predicate.log_selectivity))
        # Correlated groups activate when the union of member-predicate
        # tables is present.  Multi-table groups use the same trigger
        # mechanism as predicates (fire when the remaining tables are
        # already present).  Groups over a single table (e.g. two
        # correlated unary predicates) are active from the scan on and
        # must be folded into the single-table initialization — the
        # incremental chain never "adds" their table to a prior state.
        self._single_table_corrections = [0.0] * n
        for group in self.query.correlated_groups:
            tables: set[str] = set()
            for name in group.predicate_names:
                tables.update(self.query.predicate(name).tables)
            member_indices = [self._index[t] for t in tables]
            if len(member_indices) == 1:
                self._single_table_corrections[member_indices[0]] += (
                    group.log_correction
                )
                continue
            for i in member_indices:
                others = 0
                for j in member_indices:
                    if j != i:
                        others |= 1 << j
                self._triggers[i].append((others, group.log_correction))
        # Adjacency masks for the no-cross-product variant.
        self._adjacent = [0] * n
        for predicate in self._model.join_predicates:
            member_indices = [self._index[t] for t in predicate.tables]
            for i in member_indices:
                for j in member_indices:
                    if i != j:
                        self._adjacent[i] |= 1 << j

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------

    def optimize(self, time_limit: float | None = None) -> DPResult:
        """Run the DP; abort empty-handed when the time budget expires."""
        start = time.monotonic()
        n = self.query.num_tables
        full = (1 << n) - 1
        size = full + 1
        inf = math.inf

        best_cost = [inf] * size
        best_last = [-1] * size
        log_card = [0.0] * size
        card = [0.0] * size
        pages = [0.0] * size

        for i in range(n):
            mask = 1 << i
            best_cost[mask] = 0.0
            # Single-table group corrections are active from the scan on.
            log_card[mask] = (
                self._log_card[i] + self._single_table_corrections[i]
            )
            card[mask] = math.exp(min(log_card[mask], _EXP_CLAMP))
            pages[mask] = self.context.pages(card[mask])

        if n == 1:
            plan = LeftDeepPlan.from_order(
                self.query, [self._names[0]], self.algorithm
            )
            return DPResult(plan, 0.0, True, time.monotonic() - start, 1)

        use_cout = self.use_cout
        algorithm = self.algorithm
        buffer_pages = self.context.buffer_pages
        explored = 0
        deadline = None if time_limit is None else start + time_limit

        for mask in range(3, size):
            # Deadline check first: power-of-two masks are skipped below.
            if deadline is not None and mask % 2048 == 3:
                if time.monotonic() > deadline:
                    return DPResult(
                        None, inf, False, time.monotonic() - start, explored
                    )
            if mask & (mask - 1) == 0:
                continue  # single tables already initialized
            explored += 1
            # Compute the subset's cardinality once, extending from its
            # lowest set bit.
            low = (mask & -mask).bit_length() - 1
            prev_of_low = mask ^ (1 << low)
            value = (
                log_card[prev_of_low]
                + self._log_card[low]
                + self._single_table_corrections[low]
            )
            for others, log_sel in self._triggers[low]:
                if others & prev_of_low == others:
                    value += log_sel
            log_card[mask] = value
            card[mask] = math.exp(min(value, _EXP_CLAMP))
            pages[mask] = self.context.pages(card[mask])

            is_full = mask == full
            output_term = 0.0 if (use_cout and is_full) else card[mask]
            bits = mask
            while bits:
                bit = bits & -bits
                bits ^= bit
                i = bit.bit_length() - 1
                prev = mask ^ bit
                previous_cost = best_cost[prev]
                if previous_cost == inf:
                    continue
                if (
                    not self.allow_cross_products
                    and prev
                    and self._adjacent[i] & prev == 0
                ):
                    continue
                if use_cout:
                    candidate = previous_cost + output_term
                elif algorithm is JoinAlgorithm.HASH:
                    candidate = previous_cost + hash_join_cost(
                        pages[prev], self._table_pages[i]
                    )
                elif algorithm is JoinAlgorithm.SORT_MERGE:
                    candidate = previous_cost + sort_merge_join_cost(
                        pages[prev], self._table_pages[i]
                    )
                else:
                    candidate = previous_cost + block_nested_loop_cost(
                        pages[prev], self._table_pages[i], buffer_pages
                    )
                if candidate < best_cost[mask]:
                    best_cost[mask] = candidate
                    best_last[mask] = i

        order_indices: list[int] = []
        mask = full
        while mask and best_last[mask] >= 0:
            order_indices.append(best_last[mask])
            mask ^= 1 << best_last[mask]
        # The remaining mask is the first table.
        order_indices.append((mask & -mask).bit_length() - 1)
        order = [self._names[i] for i in reversed(order_indices)]
        plan = LeftDeepPlan.from_order(self.query, order, self.algorithm)
        return DPResult(
            plan, best_cost[full], True, time.monotonic() - start, explored
        )
