"""Greedy left-deep join ordering heuristic.

Not part of the paper's evaluation (heuristics give no optimality bound and
were excluded from Figure 2), but essential infrastructure: the MILP
optimizer uses the greedy plan as a branch-and-bound **warm start**, exactly
like commercial solvers seed their search with construction heuristics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.query import Query
from repro.plans.cardinality import CardinalityModel
from repro.plans.cost import PlanCostEvaluator
from repro.plans.operators import CostContext, JoinAlgorithm
from repro.plans.plan import LeftDeepPlan


@dataclass(frozen=True)
class GreedyResult:
    """Plan and exact cost produced by the greedy heuristic."""

    plan: LeftDeepPlan
    cost: float


class GreedyOptimizer:
    """Minimum-intermediate-result greedy construction.

    Starting from each candidate first table (or only the smallest one when
    ``try_all_starts`` is off), repeatedly append the table that minimizes
    the next intermediate result's cardinality; return the cheapest
    completed plan under the configured cost metric.
    """

    def __init__(
        self,
        query: Query,
        context: CostContext | None = None,
        use_cout: bool = False,
        algorithm: JoinAlgorithm = JoinAlgorithm.HASH,
        try_all_starts: bool = True,
    ) -> None:
        self.query = query
        self.context = context or CostContext()
        self.use_cout = use_cout
        self.algorithm = algorithm
        self.try_all_starts = try_all_starts
        self._model = CardinalityModel(query)
        self._evaluator = PlanCostEvaluator(query, self.context, use_cout)

    def optimize(self) -> GreedyResult:
        """Build greedy plans and return the best one found."""
        names = list(self.query.table_names)
        if len(names) == 1:
            plan = LeftDeepPlan.from_order(self.query, names, self.algorithm)
            return GreedyResult(plan, 0.0)
        if self.try_all_starts:
            starts = names
        else:
            starts = [
                min(names, key=self._model.effective_log_cardinality)
            ]
        best_plan: LeftDeepPlan | None = None
        best_cost = math.inf
        for start in starts:
            plan = self._construct(start)
            cost = self._evaluator.cost(plan)
            if cost < best_cost:
                best_cost = cost
                best_plan = plan
        assert best_plan is not None
        return GreedyResult(best_plan, best_cost)

    def _construct(self, start: str) -> LeftDeepPlan:
        """Greedily extend ``start`` by minimum next log-cardinality."""
        order = [start]
        joined = frozenset({start})
        remaining = set(self.query.table_names) - joined
        while remaining:
            next_table = min(
                sorted(remaining),
                key=lambda name: self._model.log_cardinality(
                    joined | {name}
                ),
            )
            order.append(next_table)
            joined = joined | {next_table}
            remaining.discard(next_table)
        return LeftDeepPlan.from_order(self.query, order, self.algorithm)
