"""Decision variables for MILP models."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.exceptions import ModelError


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    BINARY = "binary"
    INTEGER = "integer"


@dataclass(frozen=True, slots=True)
class Variable:
    """A decision variable owned by a :class:`repro.milp.Model`.

    Variables are created through :meth:`Model.add_var` (or the
    ``add_binary`` / ``add_continuous`` conveniences), never directly.
    They are hashable and compare by identity of ``(index, name)`` within
    their model.

    Attributes
    ----------
    index:
        Column index of the variable inside its model.
    name:
        Unique name within the model.
    lb, ub:
        Lower/upper bound.  Binary variables always have ``[0, 1]``.
    vtype:
        Variable domain.
    priority:
        Branching priority; among fractional variables, branch-and-bound
        branches within the highest-priority group first.  Structural
        decisions (e.g. join-order binaries) should outrank derived flags
        (e.g. cardinality thresholds).
    """

    index: int
    name: str
    lb: float
    ub: float
    vtype: VarType
    priority: int = 0

    def __post_init__(self) -> None:
        if math.isnan(self.lb) or math.isnan(self.ub):
            raise ModelError(f"variable {self.name!r}: NaN bound")
        if self.lb > self.ub:
            raise ModelError(
                f"variable {self.name!r}: lower bound {self.lb} exceeds "
                f"upper bound {self.ub}"
            )
        if self.vtype is VarType.BINARY and (self.lb < 0 or self.ub > 1):
            raise ModelError(
                f"binary variable {self.name!r} must have bounds within [0, 1]"
            )

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take an integer value."""
        return self.vtype is not VarType.CONTINUOUS

    # Arithmetic sugar: building linear expressions from variables.
    def __add__(self, other):
        from repro.milp.expr import LinExpr

        return LinExpr.from_var(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        from repro.milp.expr import LinExpr

        return LinExpr.from_var(self) - other

    def __rsub__(self, other):
        from repro.milp.expr import LinExpr

        return (-LinExpr.from_var(self)) + other

    def __mul__(self, coefficient: float):
        from repro.milp.expr import LinExpr

        return LinExpr.from_var(self) * coefficient

    __rmul__ = __mul__

    def __neg__(self):
        from repro.milp.expr import LinExpr

        return -LinExpr.from_var(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"
