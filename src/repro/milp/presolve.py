"""Lightweight presolve: bound propagation before branch-and-bound.

Commercial solvers run extensive presolve; we implement the reductions that
matter for our join-ordering MILPs:

* integral bound rounding (``ceil`` of lower, ``floor`` of upper bounds);
* singleton-row bound tightening (rows with one variable become bounds);
* activity-based infeasibility/redundancy detection for inequality rows.

Presolve never modifies the :class:`~repro.milp.model.Model`; it returns
tightened bound vectors that the solver applies at the root node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.milp.constraints import Sense
from repro.milp.model import Model

_TOL = 1e-9


@dataclass
class PresolveResult:
    """Outcome of presolve.

    Attributes
    ----------
    lb, ub:
        Tightened bound vectors.
    feasible:
        ``False`` when presolve proved infeasibility.
    reductions:
        Human-readable log of applied reductions.
    """

    lb: np.ndarray
    ub: np.ndarray
    feasible: bool = True
    reductions: list[str] = field(default_factory=list)

    @property
    def num_fixed(self) -> int:
        """Number of variables fixed to a single value."""
        return int(np.sum(np.isclose(self.lb, self.ub)))


def presolve(model: Model, max_rounds: int = 5) -> PresolveResult:
    """Run bound-propagation presolve on ``model``."""
    lb, ub = model.bounds_arrays()
    result = PresolveResult(lb=lb, ub=ub)

    _round_integral_bounds(model, result)
    if not result.feasible:
        return result

    for _ in range(max_rounds):
        changed = _propagate_once(model, result)
        if not result.feasible or not changed:
            break
    return result


def _round_integral_bounds(model: Model, result: PresolveResult) -> None:
    """Round integral variable bounds inwards.

    Infinite bounds are passed through untouched (``math.ceil(-inf)``
    would raise): the LP backends accept ``-inf`` lower bounds natively,
    so presolve must preserve them rather than reject the model.
    """
    for variable in model.variables:
        if not variable.is_integral:
            continue
        index = variable.index
        new_lb = (
            math.ceil(result.lb[index] - _TOL)
            if math.isfinite(result.lb[index])
            else result.lb[index]
        )
        new_ub = (
            math.floor(result.ub[index] + _TOL)
            if math.isfinite(result.ub[index])
            else result.ub[index]
        )
        if new_lb > result.lb[index] + _TOL:
            result.lb[index] = new_lb
            result.reductions.append(f"round-lb:{variable.name}")
        if new_ub < result.ub[index] - _TOL:
            result.ub[index] = new_ub
            result.reductions.append(f"round-ub:{variable.name}")
        if result.lb[index] > result.ub[index] + _TOL:
            result.feasible = False
            result.reductions.append(f"infeasible-bounds:{variable.name}")
            return


def _propagate_once(model: Model, result: PresolveResult) -> bool:
    """One round of singleton + activity propagation; True when changed."""
    changed = False
    for constraint in model.constraints:
        coefficients = constraint.expr.coefficients
        if not coefficients:
            if _constant_row_infeasible(constraint):
                result.feasible = False
                result.reductions.append(f"infeasible-row:{constraint.name}")
                return changed
            continue
        if len(coefficients) == 1:
            changed |= _tighten_singleton(constraint, model, result)
            if not result.feasible:
                return changed
            continue
        if constraint.sense is not Sense.EQ:
            if _activity_infeasible(constraint, result):
                result.feasible = False
                result.reductions.append(f"infeasible-row:{constraint.name}")
                return changed
    return changed


def _constant_row_infeasible(constraint) -> bool:
    if constraint.sense is Sense.LE:
        return 0.0 > constraint.rhs + _TOL
    if constraint.sense is Sense.GE:
        return 0.0 < constraint.rhs - _TOL
    return abs(constraint.rhs) > _TOL


def _tighten_singleton(constraint, model: Model, result: PresolveResult) -> bool:
    """Turn a one-variable row into a bound update."""
    ((index, coefficient),) = constraint.expr.coefficients.items()
    variable = model.variables[index]
    bound = constraint.rhs / coefficient
    changed = False
    sense = constraint.sense
    # coefficient sign flips the direction of LE/GE.
    upper = (sense is Sense.LE) == (coefficient > 0)
    if sense is Sense.EQ:
        if bound < result.lb[index] - _TOL or bound > result.ub[index] + _TOL:
            result.feasible = False
            return changed
        if not math.isclose(result.lb[index], bound) or not math.isclose(
            result.ub[index], bound
        ):
            result.lb[index] = bound
            result.ub[index] = bound
            result.reductions.append(f"fix:{variable.name}")
            changed = True
        return changed
    if upper:
        tightened = bound
        if variable.is_integral:
            tightened = math.floor(tightened + _TOL)
        if tightened < result.ub[index] - _TOL:
            result.ub[index] = tightened
            result.reductions.append(f"tighten-ub:{variable.name}")
            changed = True
    else:
        tightened = bound
        if variable.is_integral:
            tightened = math.ceil(tightened - _TOL)
        if tightened > result.lb[index] + _TOL:
            result.lb[index] = tightened
            result.reductions.append(f"tighten-lb:{variable.name}")
            changed = True
    if result.lb[index] > result.ub[index] + _TOL:
        result.feasible = False
    return changed


def _activity_infeasible(constraint, result: PresolveResult) -> bool:
    """Minimum-activity test for an inequality row."""
    minimum = 0.0
    for index, coefficient in constraint.expr.coefficients.items():
        bound = result.lb[index] if coefficient > 0 else result.ub[index]
        if math.isinf(bound):
            return False
        minimum += coefficient * bound
    if constraint.sense is Sense.LE:
        return minimum > constraint.rhs + 1e-7
    # GE row: maximum activity below rhs means infeasible.
    maximum = 0.0
    for index, coefficient in constraint.expr.coefficients.items():
        bound = result.ub[index] if coefficient > 0 else result.lb[index]
        if math.isinf(bound):
            return False
        maximum += coefficient * bound
    return maximum < constraint.rhs - 1e-7
