"""Branch-and-bound MILP solver with anytime behaviour.

This module replaces the commercial solver (Gurobi) used by the paper.  It
provides the solver features the paper's argument rests on:

* **anytime incumbents** — a stream of improving feasible solutions,
* **proven lower bounds** — the best-bound of the open search tree, which
  yields the guaranteed optimality factor plotted in the paper's Figure 2,
* **time limits / gap targets** — optimization can stop at a deadline or
  once the incumbent is provably within a factor of the optimum,
* **warm starts** — an externally constructed feasible solution seeds the
  incumbent (commercial solvers do the same with construction heuristics),
* **primal heuristics** — LP rounding with fix-and-solve, plus iterative
  diving, to find incumbents early.

LP relaxations are delegated to a pluggable backend through one stateful
:class:`~repro.milp.lp_backend.LPSession` per search tree.  The default
(``backend="auto"``) picks the self-contained revised simplex for small
models and HiGHS via scipy for large ones; the crossover honours the
``REPRO_AUTO_SIMPLEX_MAX_VARS`` environment override.  Nodes, dives and
fix-and-solve re-solves drive the session via ``set_bounds`` and seed it
with the parent node's optimal basis: a branching bound change leaves
that basis dual-feasible, so the re-optimization typically takes a
handful of dual-simplex pivots instead of a cold solve.  Root cutting
planes go through ``add_rows``, which extends the live basis with the
cut rows' slack columns so the cut loop stays warm too, and an optional
:class:`~repro.milp.lp_backend.BasisExchangePool` lets concurrent
solvers of the same form (the portfolio) seed each other's root LPs.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cancel import CancelToken
from repro.exceptions import CancelledError, SolverError
from repro.milp.cuts import CutGenerator, cuts_to_rows
from repro.milp.lp_backend import (
    AUTO_SIMPLEX_MAX_VARS,
    BasisExchangePool,
    LPBackend,
    LPResult,
    LPSession,
    LPStatus,
    ScipyHighsBackend,
    SimplexBasis,
    auto_simplex_max_vars,
    form_signature,
    get_backend,
    validate_pricing,
)
from repro.milp.simplex import RevisedSimplexBackend
from repro.milp.model import Model
from repro.milp.presolve import presolve
from repro.milp.solution import (
    IncumbentEvent,
    MILPSolution,
    SolveStatus,
    relative_gap,
)
from repro.milp.standard_form import (
    StandardForm,
    extend_form_with_rows,
    to_standard_form,
)


@dataclass
class SolverOptions:
    """Tuning knobs for :class:`BranchAndBoundSolver`.

    Attributes
    ----------
    time_limit:
        Wall-clock budget in seconds (the paper uses 60 s).
    node_limit:
        Optional cap on processed nodes.
    gap_tolerance:
        Stop when the relative gap falls to or below this value.
    integrality_tol:
        Distance from an integer under which a value counts as integral.
    backend:
        LP backend name (``"auto"``, ``"scipy"`` or ``"simplex"``).
        ``"auto"`` uses the warm-start capable revised simplex for models
        up to :data:`~repro.milp.lp_backend.AUTO_SIMPLEX_MAX_VARS`
        variables and scipy/HiGHS beyond that.
    pricing:
        Primal pricing rule for the revised simplex: ``"auto"`` (the
        process default, ``REPRO_SIMPLEX_PRICING`` or Devex),
        ``"devex"``, ``"dantzig"`` or ``"bland"``.  Ignored by the
        scipy/HiGHS backend.
    lp_warm_start:
        Seed each node LP with the parent node's optimal basis when the
        backend supports it (dual-simplex re-optimization).  Disable for
        A/B measurements of the warm-start speedup.
    use_presolve:
        Run bound-propagation presolve before the search.
    heuristics:
        Enable rounding/diving primal heuristics.
    dive_frequency:
        Run a diving heuristic every this many nodes (0 disables periodic
        dives; the root dive still runs when ``heuristics`` is on).
    max_dive_depth:
        Cap on LP resolves inside one dive.
    branching:
        ``"most_fractional"`` or ``"pseudocost"``.
    node_selection:
        ``"best_bound"`` (default) or ``"dfs"``.
    cuts:
        Separate cover/clique cutting planes at the root (cut-and-branch).
    max_cut_rounds:
        Number of separate/re-solve rounds at the root when ``cuts`` is on.
    max_cuts_per_round:
        Cap on cuts added per separation round.
    stop_check:
        Optional callable polled during the search; returning ``True``
        stops the solve as if the time limit had expired.  Used by the
        portfolio solver for cooperative cancellation.
    cancel_token:
        Optional :class:`repro.cancel.CancelToken` threaded from the
        serving layer.  Unlike ``stop_check`` (polled only between
        nodes), the token also reaches the LP session's pivot loop, so
        cancellation lands *mid-solve*.  A cancelled node LP is dropped
        and the search stops at the next budget poll with the incumbent
        intact (anytime semantics); ``session_stats["cancelled"]``
        records the reason.
    basis_pool:
        Optional :class:`~repro.milp.lp_backend.BasisExchangePool`.
        When set (the portfolio installs one), the root LP is seeded
        from the pool's best published basis and the solver publishes
        its own root basis back, so concurrent searches over the same
        form share the cold-start cost once.
    """

    time_limit: float = 60.0
    node_limit: int | None = None
    gap_tolerance: float = 1e-6
    integrality_tol: float = 1e-6
    backend: str = "auto"
    pricing: str = "auto"
    lp_warm_start: bool = True
    use_presolve: bool = True
    heuristics: bool = True
    dive_frequency: int = 40
    max_dive_depth: int = 400
    branching: str = "most_fractional"
    node_selection: str = "best_bound"
    cuts: bool = False
    max_cut_rounds: int = 8
    max_cuts_per_round: int = 50
    stop_check: Callable[[], bool] | None = None
    cancel_token: CancelToken | None = None
    basis_pool: BasisExchangePool | None = None


# AUTO_SIMPLEX_MAX_VARS / auto_simplex_max_vars() now live in
# lp_backend.py next to the other env-tunable simplex knobs; both are
# re-exported here (imported above) for backwards compatibility.

#: Sentinel ``basis`` for :meth:`BranchAndBoundSolver._solve_lp`: keep the
#: session's internally retained basis (used by the cut loop, where
#: ``add_rows`` just extended that basis with the new slack columns).
_SESSION_BASIS = object()


@dataclass(slots=True)
class _Node:
    """One branch-and-bound node, storing only its bound delta."""

    parent: "_Node | None"
    var_index: int  # -1 for the root
    lb: float
    ub: float
    depth: int
    lp_bound: float


#: Anytime callback: invoked on every incumbent/bound event.
AnytimeCallback = Callable[[IncumbentEvent], None]


class BranchAndBoundSolver:
    """Best-bound branch-and-bound over LP relaxations."""

    def __init__(self, model: Model, options: SolverOptions | None = None):
        self.model = model
        self.options = options or SolverOptions()
        backend_name = self.options.backend
        #: Why this tree's session is cold (``None`` for warm backends):
        #: "auto-size-routed" when ``backend="auto"`` handed the model
        #: to scipy/HiGHS over the variable crossover, else
        #: "backend-requested".  Surfaced in ``session_stats`` so a
        #: size-routed cold solve is distinguishable from an
        #: error-fallback one.
        self._cold_reason: str | None = None
        if backend_name == "auto":
            if model.num_variables <= auto_simplex_max_vars():
                backend_name = "simplex"
            else:
                backend_name = "scipy"
                self._cold_reason = "auto-size-routed"
        self._backend: LPBackend = get_backend(backend_name)
        if self.options.pricing != "auto" and hasattr(
            self._backend, "pricing"
        ):
            self._backend.pricing = validate_pricing(self.options.pricing)
        if not self._backend.supports_warm_start and self._cold_reason is None:
            self._cold_reason = "backend-requested"
        self._warm_lp = (
            self.options.lp_warm_start and self._backend.supports_warm_start
        )
        # When the revised simplex hits numerical trouble on one node it
        # returns ERROR; a per-solve fallback to HiGHS keeps the search
        # complete instead of dropping the subtree.
        self._fallback_backend: LPBackend | None = None
        self._fallback_reasons: dict[str, int] = {}
        #: Reason string once the cancel token fired mid-solve
        #: (``None`` while the search runs uncancelled).
        self._cancelled: str | None = None
        self._lp_solves = 0
        self._lp_pivots = 0
        self._lp_time = 0.0
        self._form: StandardForm = to_standard_form(model)
        # One LP session per tree: it owns the equilibrated matrix and
        # factorization caches, nodes drive it via set_bounds, and the
        # cut loop grows it via add_rows.  Created at the top of each
        # solve() so late backend swaps (tests inject failures that way)
        # and re-solves both get a fresh session.
        self._session: LPSession | None = None
        self._integral = self._form.integral_indices
        self._priorities = np.array(
            [variable.priority for variable in model.variables]
        )
        self._tick = itertools.count()
        # Pseudocost state: per-variable average objective degradation.
        num_vars = model.num_variables
        self._pseudo_up = np.zeros(num_vars)
        self._pseudo_down = np.zeros(num_vars)
        self._pseudo_up_count = np.zeros(num_vars, dtype=np.int64)
        self._pseudo_down_count = np.zeros(num_vars, dtype=np.int64)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(
        self,
        warm_start: "dict[str, float] | Sequence[float] | None" = None,
        callback: AnytimeCallback | None = None,
    ) -> MILPSolution:
        """Minimize the model objective; return an anytime-rich solution.

        When a trace context is active (:mod:`repro.obs`), the search
        runs under a ``bnb.solve`` span carrying a solver event
        timeline: node open/prune, cut rounds, incumbent/bound updates,
        basis-pool adoption and ERROR fallbacks.
        """
        with obs.span("bnb.solve") as bnb_span:
            solution = self._solve_tree(warm_start, callback)
            bnb_span.annotate(
                status=solution.status.name,
                nodes=solution.node_count,
                lp_solves=self._lp_solves,
                lp_pivots=self._lp_pivots,
            )
            if math.isfinite(solution.objective):
                bnb_span.annotate(objective=solution.objective)
            if math.isfinite(solution.best_bound):
                bnb_span.annotate(best_bound=solution.best_bound)
        return solution

    def _solve_tree(
        self,
        warm_start: "dict[str, float] | Sequence[float] | None" = None,
        callback: AnytimeCallback | None = None,
    ) -> MILPSolution:
        start = time.monotonic()
        # Drop any previous session; _solve_lp lazily opens a fresh one
        # (after presolve, so presolve-infeasible models never pay the
        # workspace build, and late backend swaps take effect).
        self._session = None
        self._cancelled = None
        events: list[IncumbentEvent] = []
        incumbent_x: np.ndarray | None = None
        incumbent_obj = math.inf
        node_count = 0

        def elapsed() -> float:
            return time.monotonic() - start

        def out_of_budget() -> bool:
            if elapsed() >= self.options.time_limit:
                return True
            stop_check = self.options.stop_check
            if stop_check is not None and stop_check():
                return True
            token = self.options.cancel_token
            if token is not None and token.cancelled:
                # Node-granularity anytime stop: the incumbent found so
                # far survives; only unexplored subtrees are abandoned.
                self._cancelled = token.reason
                return True
            if self._cancelled is not None:
                return True
            limit = self.options.node_limit
            return limit is not None and node_count >= limit

        def record(kind: str, objective: float, bound: float) -> None:
            event = IncumbentEvent(elapsed(), objective, bound, kind)
            events.append(event)
            obs.event(f"bnb.{kind}", objective=objective, bound=bound)
            if callback is not None:
                callback(event)

        # ----- presolve ------------------------------------------------
        if self.options.use_presolve:
            pre = presolve(self.model)
            if not pre.feasible:
                return MILPSolution(
                    status=SolveStatus.INFEASIBLE,
                    objective=math.inf,
                    best_bound=math.inf,
                    node_count=0,
                    solve_time=elapsed(),
                    events=events,
                )
            root_lb, root_ub = pre.lb, pre.ub
        else:
            root_lb, root_ub = self.model.bounds_arrays()

        # ----- warm start ----------------------------------------------
        if warm_start is not None:
            candidate = self._coerce_warm_start(warm_start, root_lb, root_ub)
            if candidate is not None:
                incumbent_x = candidate
                incumbent_obj = self.model.objective_value(candidate)
                record("incumbent", incumbent_obj, -math.inf)

        # ----- root relaxation ------------------------------------------
        # Seed from the cross-solver basis pool when one is attached.
        # The fetch is keyed by this form's signature: portfolio members
        # share the same form (one member's root basis spares every
        # other member the cold start), and the serving layer shares one
        # pool across *queries*, where only equal-shaped formulations
        # can seed each other.
        pool = self.options.basis_pool
        seed_basis = (
            pool.fetch(form_signature(self._form))
            if pool is not None and self._warm_lp
            else None
        )
        if seed_basis is not None:
            obs.event("bnb.basis_adopted", source="pool")
        root_result = self._solve_lp(root_lb, root_ub, seed_basis)
        if pool is not None and root_result.status is LPStatus.OPTIMAL:
            pool.publish(root_result.basis)
            obs.event("bnb.basis_published")
        if root_result.status is LPStatus.INFEASIBLE:
            return MILPSolution(
                status=SolveStatus.INFEASIBLE,
                objective=math.inf,
                best_bound=math.inf,
                node_count=1,
                solve_time=elapsed(),
                events=events,
                lp_solves=self._lp_solves,
                lp_pivots=self._lp_pivots,
                lp_time=self._lp_time,
                session_stats=self._session_stats_dict(),
            )
        if root_result.status is LPStatus.UNBOUNDED:
            return MILPSolution(
                status=SolveStatus.UNBOUNDED,
                objective=-math.inf,
                best_bound=-math.inf,
                node_count=1,
                solve_time=elapsed(),
                events=events,
                lp_solves=self._lp_solves,
                lp_pivots=self._lp_pivots,
                lp_time=self._lp_time,
                session_stats=self._session_stats_dict(),
            )
        if root_result.status is LPStatus.ERROR:
            if self._cancelled is not None:
                # Cancelled at the root: an honest anytime answer — the
                # warm-start incumbent if one was seeded, else
                # empty-handed NO_SOLUTION — not a solver fault.
                if incumbent_x is not None:
                    return self._finish(
                        SolveStatus.FEASIBLE, incumbent_x, incumbent_obj,
                        -math.inf, 1, elapsed(), events,
                    )
                return self._finish(
                    SolveStatus.NO_SOLUTION, None, math.inf, -math.inf,
                    1, elapsed(), events,
                )
            raise SolverError(f"root LP failed: {root_result.message}")

        global_bound = root_result.objective
        record("bound", incumbent_obj, global_bound)

        # Incumbent from the root when it is already integral.
        fractional = self._fractional_indices(root_result.x)
        if not fractional.size:
            if incumbent_obj > root_result.objective:
                incumbent_x = root_result.x
                incumbent_obj = root_result.objective
                record("incumbent", incumbent_obj, global_bound)
            return self._finish(
                SolveStatus.OPTIMAL,
                incumbent_x,
                incumbent_obj,
                incumbent_obj,
                1,
                elapsed(),
                events,
            )

        # ----- root cutting planes ----------------------------------------
        if self.options.cuts and not out_of_budget():
            root_result, global_bound, cut_count = self._cut_loop(
                root_result, root_lb, root_ub, global_bound,
                incumbent_obj, record, out_of_budget,
            )
            fractional = self._fractional_indices(root_result.x)
            if not fractional.size:
                if incumbent_obj > root_result.objective:
                    incumbent_x = root_result.x
                    incumbent_obj = root_result.objective
                    record("incumbent", incumbent_obj, global_bound)
                return self._finish(
                    SolveStatus.OPTIMAL,
                    incumbent_x,
                    incumbent_obj,
                    incumbent_obj,
                    1,
                    elapsed(),
                    events,
                )

        # ----- root heuristics -------------------------------------------
        if self.options.heuristics and not out_of_budget():
            for heuristic in (
                self._fix_and_solve,
                self._fix_and_solve_up,
                self._dive,
            ):
                candidate = heuristic(
                    root_result.x, root_lb, root_ub, root_result.basis
                )
                if candidate is None:
                    continue
                objective = self.model.objective_value(candidate)
                if objective < incumbent_obj - 1e-9:
                    incumbent_x = candidate
                    incumbent_obj = objective
                    record("incumbent", incumbent_obj, global_bound)

        # ----- tree search -----------------------------------------------
        root = _Node(None, -1, 0.0, 0.0, 0, root_result.objective)
        open_nodes: list = []
        self._push(open_nodes, root, root_result.x, root_result.basis)
        reached_limit = False
        # Nodes dropped because their LP solve errored: the search remains
        # sound only if the final bound and status account for them.
        lp_error_count = 0
        lp_error_bound = math.inf

        while open_nodes:
            if out_of_budget():
                reached_limit = True
                break
            if relative_gap(incumbent_obj, global_bound) <= self.options.gap_tolerance:
                global_bound = min(global_bound, incumbent_obj)
                break

            node, parent_x, parent_basis = self._pop(open_nodes)
            new_bound = self._best_open_bound(open_nodes, node.lp_bound)
            if new_bound > global_bound + 1e-12:
                global_bound = min(new_bound, incumbent_obj)
                record("bound", incumbent_obj, global_bound)
            if node.lp_bound >= incumbent_obj - 1e-9:
                obs.event("bnb.prune", reason="bound", depth=node.depth)
                continue

            node_count += 1
            obs.event(
                "bnb.node", number=node_count, depth=node.depth,
                bound=node.lp_bound,
            )
            lb, ub = self._node_bounds(node, root_lb, root_ub)
            result = self._solve_lp(lb, ub, parent_basis)
            if result.status is LPStatus.ERROR:
                # Drop the node but remember that this subtree was never
                # explored: its best possible objective is node.lp_bound,
                # which must cap every bound we report from now on.
                lp_error_count += 1
                lp_error_bound = min(lp_error_bound, node.lp_bound)
                obs.event(
                    "bnb.lp_error", depth=node.depth,
                    message=result.message,
                )
                continue
            if result.status is not LPStatus.OPTIMAL:
                obs.event(
                    "bnb.prune", reason=result.status.value,
                    depth=node.depth,
                )
                continue
            self._update_pseudocost(node, result.objective)
            if result.objective >= incumbent_obj - 1e-9:
                obs.event("bnb.prune", reason="dominated", depth=node.depth)
                continue

            fractional = self._fractional_indices(result.x)
            if not fractional.size:
                incumbent_x = result.x
                incumbent_obj = result.objective
                record("incumbent", incumbent_obj, global_bound)
                continue

            if (
                self.options.heuristics
                and self.options.dive_frequency
                and node_count % self.options.dive_frequency == 0
            ):
                candidate = self._dive(result.x, lb, ub, result.basis)
                if candidate is not None:
                    objective = self.model.objective_value(candidate)
                    if objective < incumbent_obj - 1e-9:
                        incumbent_x = candidate
                        incumbent_obj = objective
                        record("incumbent", incumbent_obj, global_bound)

            branch_var = self._select_branch_variable(result.x, fractional)
            value = result.x[branch_var]
            down = _Node(
                node, branch_var, lb[branch_var], math.floor(value),
                node.depth + 1, result.objective,
            )
            up = _Node(
                node, branch_var, math.ceil(value), ub[branch_var],
                node.depth + 1, result.objective,
            )
            for child in (down, up):
                if child.lb <= child.ub:
                    self._push(open_nodes, child, result.x, result.basis)

        solve_time = elapsed()
        if open_nodes:
            remaining = min(entry[0] for entry in open_nodes)
            global_bound = min(max(global_bound, remaining), incumbent_obj)
        elif not reached_limit and lp_error_count == 0:
            global_bound = incumbent_obj if incumbent_x is not None else global_bound
        # Errored subtrees were never explored; their LP bound caps ours.
        global_bound = min(global_bound, lp_error_bound)

        if incumbent_x is None:
            if open_nodes or reached_limit or lp_error_count:
                status = SolveStatus.NO_SOLUTION
            else:
                status = SolveStatus.INFEASIBLE
            return self._finish(
                status, None, math.inf, global_bound, node_count,
                solve_time, events,
            )

        closed = relative_gap(incumbent_obj, global_bound) <= max(
            self.options.gap_tolerance, 1e-9
        )
        complete = not open_nodes and lp_error_count == 0
        status = SolveStatus.OPTIMAL if (closed or complete) else SolveStatus.FEASIBLE
        if status is SolveStatus.OPTIMAL:
            global_bound = incumbent_obj
        return self._finish(
            status, incumbent_x, incumbent_obj, global_bound, node_count,
            solve_time, events,
        )

    # ------------------------------------------------------------------
    # LP solves
    # ------------------------------------------------------------------

    def _solve_lp(
        self,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: "SimplexBasis | None | object" = None,
        form: StandardForm | None = None,
    ) -> LPResult:
        """One session solve with warm-start threading and accounting.

        ``basis`` is the parent node's optimal basis (ignored when warm
        starting is off or unsupported), or the :data:`_SESSION_BASIS`
        sentinel to keep the session's internally retained basis (cut
        loop); the session itself degrades to a cold solve on any
        basis mismatch.  ``form`` only redirects the HiGHS *fallback*
        solve during the cut loop, where the session already carries the
        appended rows but ``self._form`` has not been swapped yet.
        """
        started = time.monotonic()
        target_form = form if form is not None else self._form
        session = self._session
        if session is None:
            # LP helpers (fix-and-solve repair, tests) may run before
            # solve() has opened the per-tree session.
            session = self._session = self._backend.create_session(self._form)
        # (Re-)attach every call: the cut loop replaces the session when
        # retracting cuts, and the attachment is one attribute write.
        session.cancel_token = self.options.cancel_token
        session.set_bounds(lb, ub)
        if basis is _SESSION_BASIS:
            if not self._warm_lp:
                session.install_basis(None)
        else:
            session.install_basis(basis if self._warm_lp else None)
        transient: str | None = None
        try:
            result = session.solve()
        except CancelledError as error:
            # Absorb mid-pivot cancellation at the node boundary: the
            # caller sees a failed node LP (dropped like any errored
            # node), the incumbent survives, and the next out_of_budget
            # poll ends the search.  No fallback solve — the request is
            # abandoned, not the backend broken.
            self._cancelled = error.reason
            self._lp_time += time.monotonic() - started
            return LPResult(
                LPStatus.ERROR, None, math.inf,
                message=f"cancelled: {error.reason}",
            )
        except SolverError as error:
            # A backend exception mid-node (numerical blow-up, injected
            # fault) must not abort the whole tree when a fallback
            # engine can still answer this node.
            transient = f"{type(error).__name__}: {error}"
            result = LPResult(LPStatus.ERROR, None, math.inf, str(error))
        self._lp_pivots += result.iterations
        self._lp_solves += 1
        if result.status in (
            LPStatus.ERROR,
            LPStatus.UNBOUNDED,
        ) and isinstance(self._backend, RevisedSimplexBackend):
            # ERROR: numerical trouble (includes infeasibility claims the
            # backend could not self-certify — see _certified_infeasible).
            # UNBOUNDED: have HiGHS confirm before the search acts on it.
            # Either way this is a second, counted LP solve, recorded in
            # the session stats so an error-fallback cold solve is
            # distinguishable from a size-routed one in lp_stats.
            if self._fallback_backend is None:
                self._fallback_backend = ScipyHighsBackend()
            reason = (
                "simplex-exception" if transient is not None
                else f"simplex-{result.status.value}"
            )
            self._fallback_reasons[reason] = (
                self._fallback_reasons.get(reason, 0) + 1
            )
            session.stats.fallback_solves += 1
            obs.event("lp.fallback", reason=reason)
            try:
                result = self._fallback_backend.solve(target_form, lb, ub)
            except SolverError as error:
                # Both engines failed this node: report ERROR and let
                # the search drop the node with its bound accounted.
                result = LPResult(
                    LPStatus.ERROR, None, math.inf,
                    message=f"fallback failed: {error}",
                )
            self._lp_pivots += result.iterations
            self._lp_solves += 1
        elif transient is not None and result.status is LPStatus.ERROR:
            result = LPResult(LPStatus.ERROR, None, math.inf, transient)
        self._lp_time += time.monotonic() - started
        return result

    def _session_stats_dict(self) -> dict:
        """The session's stats plus the tree-level routing diagnostics.

        ``backend`` names the engine that served the session;
        ``cold_reason`` says *why* a cold session is cold
        (``auto-size-routed`` vs ``backend-requested``);
        ``fallback_reasons`` breaks the ``fallback_solves`` counter down
        by the simplex status that triggered each HiGHS reroute.
        """
        stats = self._session.stats.as_dict()
        stats["backend"] = self._session.backend_name
        if self._cold_reason is not None:
            stats["cold_reason"] = self._cold_reason
        if self._fallback_reasons:
            stats["fallback_reasons"] = dict(self._fallback_reasons)
        if self._cancelled is not None:
            stats["cancelled"] = self._cancelled
        return stats

    # ------------------------------------------------------------------
    # Root cutting planes
    # ------------------------------------------------------------------

    def _cut_loop(
        self,
        root_result,
        root_lb: np.ndarray,
        root_ub: np.ndarray,
        global_bound: float,
        incumbent_obj: float,
        record,
        out_of_budget,
    ):
        """Separate cuts at the root and re-solve until no progress.

        Returns the final root LP result, the (possibly improved) global
        bound, and the number of cuts added.  Cuts go through the
        session's ``add_rows`` — a warm backend extends its basis with
        the new slack columns, so each re-solve is a short dual-simplex
        run instead of a cold solve of the extended form.  The tightened
        standard form is mirrored onto ``self._form`` (fallback solves,
        pseudocost costs) so all later node LPs benefit.
        """
        generator = CutGenerator(self.model)
        total_cuts = 0
        for cut_round in range(self.options.max_cut_rounds):
            if out_of_budget():
                break
            cuts = generator.separate(
                root_result.x, max_cuts=self.options.max_cuts_per_round
            )
            if not cuts:
                break
            obs.event("bnb.cut_round", round=cut_round, added=len(cuts))
            a_rows, b_rows = cuts_to_rows(cuts, self._form.num_variables)
            candidate_form = extend_form_with_rows(
                self._form, a_rows, b_rows
            )
            self._session.add_rows(a_rows, b_rows, form=candidate_form)
            result = self._solve_lp(
                root_lb, root_ub, basis=_SESSION_BASIS, form=candidate_form
            )
            if result.status is not LPStatus.OPTIMAL:
                # Numerical trouble: retract the cuts by rebuilding the
                # session on the last good relaxation (add_rows has no
                # inverse), and keep that relaxation.  The replacement
                # inherits the accumulated stats — minus the retracted
                # rows, so rows_appended reflects the final relaxation.
                accumulated = self._session.stats
                accumulated.rows_appended -= len(cuts)
                self._session = self._backend.create_session(self._form)
                self._session.stats = accumulated
                obs.event("bnb.cut_retract", dropped=len(cuts))
                break
            self._form = candidate_form
            total_cuts += len(cuts)
            improved = result.objective > root_result.objective + 1e-9
            root_result = result
            if result.objective > global_bound + 1e-12:
                global_bound = result.objective
                record("bound", incumbent_obj, global_bound)
            if not improved:
                break
            if not self._fractional_indices(result.x).size:
                break
        return root_result, global_bound, total_cuts

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------

    def _push(
        self,
        heap,
        node: _Node,
        parent_x: np.ndarray,
        parent_basis: SimplexBasis | None,
    ) -> None:
        heapq.heappush(
            heap,
            (node.lp_bound, next(self._tick), node, parent_x, parent_basis),
        )

    def _pop(self, heap) -> tuple[_Node, np.ndarray, "SimplexBasis | None"]:
        if self.options.node_selection == "dfs":
            # Emulate DFS by preferring the deepest most recent node.
            best = max(range(len(heap)), key=lambda i: (heap[i][2].depth, heap[i][1]))
            entry = heap[best]
            heap[best] = heap[-1]
            heap.pop()
            heapq.heapify(heap)
            return entry[2], entry[3], entry[4]
        _, __, node, parent_x, parent_basis = heapq.heappop(heap)
        return node, parent_x, parent_basis

    @staticmethod
    def _best_open_bound(heap, popped_bound: float) -> float:
        if not heap:
            return popped_bound
        return min(popped_bound, heap[0][0])

    @staticmethod
    def _node_bounds(
        node: _Node, root_lb: np.ndarray, root_ub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Materialize a node's bound vectors by walking its ancestry."""
        lb = root_lb.copy()
        ub = root_ub.copy()
        current: _Node | None = node
        seen: set[int] = set()
        while current is not None and current.var_index >= 0:
            index = current.var_index
            # Nearest (deepest) decision on a variable wins.
            if index not in seen:
                seen.add(index)
                lb[index] = max(lb[index], current.lb)
                ub[index] = min(ub[index], current.ub)
            current = current.parent
        return lb, ub

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def _fractional_indices(self, x: np.ndarray) -> np.ndarray:
        if not self._integral.size:
            return np.array([], dtype=np.int64)
        values = x[self._integral]
        distance = np.abs(values - np.round(values))
        mask = distance > self.options.integrality_tol
        return self._integral[mask]

    def _select_branch_variable(
        self, x: np.ndarray, fractional: np.ndarray
    ) -> int:
        # Branch within the highest-priority fractional group: structural
        # decisions (join order) before derived flags (thresholds).
        priorities = self._priorities[fractional]
        top = priorities.max()
        # repro: allow[NUM-001] branching priorities are small integers; exact by construction
        if priorities.min() != top:
            fractional = fractional[priorities == top]
        values = x[fractional]
        frac = np.abs(values - np.round(values))
        if self.options.branching == "pseudocost":
            up = np.where(
                self._pseudo_up_count[fractional] > 0,
                self._pseudo_up[fractional],
                np.abs(self._form.c[fractional]) + 1.0,
            )
            down = np.where(
                self._pseudo_down_count[fractional] > 0,
                self._pseudo_down[fractional],
                np.abs(self._form.c[fractional]) + 1.0,
            )
            ceil_frac = np.ceil(values) - values
            floor_frac = values - np.floor(values)
            score = np.maximum(up * ceil_frac, 1e-8) * np.maximum(
                down * floor_frac, 1e-8
            )
            return int(fractional[int(np.argmax(score))])
        # Most fractional: distance to the nearest integer.
        return int(fractional[int(np.argmax(frac))])

    def _update_pseudocost(self, node: _Node, objective: float) -> None:
        if node.var_index < 0 or node.parent is None:
            return
        degradation = max(0.0, objective - node.lp_bound)
        index = node.var_index
        # A child whose lb was raised is an "up" branch.
        if node.lb > node.parent.lb or node.lb > 0:
            count = self._pseudo_up_count[index]
            self._pseudo_up[index] = (
                self._pseudo_up[index] * count + degradation
            ) / (count + 1)
            self._pseudo_up_count[index] += 1
        else:
            count = self._pseudo_down_count[index]
            self._pseudo_down[index] = (
                self._pseudo_down[index] * count + degradation
            ) / (count + 1)
            self._pseudo_down_count[index] += 1

    # ------------------------------------------------------------------
    # Primal heuristics
    # ------------------------------------------------------------------

    def _fix_and_solve(
        self,
        x: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
        mode: str = "nearest",
    ) -> np.ndarray | None:
        """Round all integral variables and re-solve for the continuous ones.

        ``mode="up"`` takes ceilings instead of nearest rounding — useful
        for indicator-style flags whose activation rows only force them
        upward (rounding up preserves feasibility of those rows).  The
        re-solve warm-starts from ``basis`` (fixing variables is a bound
        change, so the basis stays dual-feasible).
        """
        if not self._integral.size:
            return None
        fixed_lb = lb.copy()
        fixed_ub = ub.copy()
        values = x[self._integral]
        if mode == "up":
            rounded = np.ceil(values - self.options.integrality_tol)
        else:
            rounded = np.round(values)
        rounded = np.clip(rounded, lb[self._integral], ub[self._integral])
        fixed_lb[self._integral] = rounded
        fixed_ub[self._integral] = rounded
        result = self._solve_lp(fixed_lb, fixed_ub, basis)
        if result.status is LPStatus.OPTIMAL and self.model.is_feasible(result.x):
            return result.x
        return None

    def _fix_and_solve_up(
        self,
        x: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
    ) -> np.ndarray | None:
        """Ceiling-rounding variant of :meth:`_fix_and_solve`."""
        return self._fix_and_solve(x, lb, ub, basis, mode="up")

    def _dive(
        self,
        x: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
    ) -> np.ndarray | None:
        """Iteratively fix the most fractional variable and re-solve.

        Each fixing is a bound tightening, so every re-solve in the dive
        warm-starts from the basis of the previous one.
        """
        lb = lb.copy()
        ub = ub.copy()
        current = x
        for _ in range(self.options.max_dive_depth):
            fractional = self._fractional_indices(current)
            if not fractional.size:
                if self.model.is_feasible(current):
                    return current
                return None
            values = current[fractional]
            pick = int(np.argmax(np.abs(values - np.round(values))))
            index = int(fractional[pick])
            target = float(np.round(values[pick]))
            target = min(max(target, lb[index]), ub[index])
            saved_lb, saved_ub = lb[index], ub[index]
            lb[index] = ub[index] = target
            result = self._solve_lp(lb, ub, basis)
            if result.status is not LPStatus.OPTIMAL:
                # Flip to the other side once; abort the dive on failure.
                other = saved_ub if target == saved_lb else saved_lb
                other = float(
                    np.floor(values[pick])
                    if target == np.ceil(values[pick])
                    else np.ceil(values[pick])
                )
                other = min(max(other, saved_lb), saved_ub)
                if other == target:
                    return None
                lb[index] = ub[index] = other
                result = self._solve_lp(lb, ub, basis)
                if result.status is not LPStatus.OPTIMAL:
                    return None
            current = result.x
            basis = result.basis
        return None

    # ------------------------------------------------------------------
    # Warm starts / wrap-up
    # ------------------------------------------------------------------

    def _coerce_warm_start(
        self,
        warm_start: "dict[str, float] | Sequence[float]",
        lb: np.ndarray,
        ub: np.ndarray,
    ) -> np.ndarray | None:
        """Validate a warm start; repair continuous values via fix-and-solve."""
        if isinstance(warm_start, dict):
            assignment = self.model.assignment_from_names(warm_start)
        else:
            assignment = np.asarray(warm_start, dtype=float)
            if assignment.shape[0] != self.model.num_variables:
                raise SolverError(
                    "warm start length does not match variable count"
                )
        if self.model.is_feasible(assignment):
            return assignment
        # Keep the integral part, let the LP repair the continuous part.
        repaired = self._fix_and_solve(assignment, lb, ub)
        return repaired

    def _finish(
        self,
        status: SolveStatus,
        x: np.ndarray | None,
        objective: float,
        bound: float,
        node_count: int,
        solve_time: float,
        events: list[IncumbentEvent],
    ) -> MILPSolution:
        values: dict[str, float] = {}
        if x is not None:
            values = {
                variable.name: float(x[variable.index])
                for variable in self.model.variables
            }
        return MILPSolution(
            status=status,
            objective=objective,
            best_bound=bound,
            x=x,
            values=values,
            node_count=node_count,
            solve_time=solve_time,
            events=events,
            lp_solves=self._lp_solves,
            lp_pivots=self._lp_pivots,
            lp_time=self._lp_time,
            session_stats=self._session_stats_dict(),
        )


def solve_milp(
    model: Model,
    options: SolverOptions | None = None,
    warm_start: "dict[str, float] | Sequence[float] | None" = None,
    callback: AnytimeCallback | None = None,
) -> MILPSolution:
    """Convenience wrapper: solve ``model`` with branch-and-bound."""
    return BranchAndBoundSolver(model, options).solve(warm_start, callback)
