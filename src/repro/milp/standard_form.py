"""Conversion of a :class:`~repro.milp.model.Model` to matrix standard form.

The branch-and-bound solver converts the model once; each search node then
only varies the variable-bound vectors, which keeps per-node work small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.milp.constraints import Sense
from repro.milp.model import Model


@dataclass(frozen=True)
class StandardForm:
    """Matrix form ``min c'x + c0  s.t.  A_ub x <= b_ub,  A_eq x = b_eq``.

    ``>=`` rows are negated into ``<=`` rows during conversion.  Bounds are
    kept separately because branch-and-bound tightens them per node.
    """

    c: np.ndarray
    c0: float
    a_ub: sparse.csr_matrix | None
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix | None
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integral_indices: np.ndarray

    @property
    def num_variables(self) -> int:
        """Number of columns."""
        return self.c.shape[0]

    def equality_form(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Dense row matrix for the revised simplex, built once per form.

        Returns ``(rows, rhs, num_le)`` where ``rows`` stacks the ``<=``
        rows above the ``==`` rows (the backend appends one slack per row:
        ``[0, inf)`` slacks for the first ``num_le`` rows, fixed-zero
        slacks for the rest).  The result is cached on the instance so
        branch-and-bound's per-node work is limited to bound-vector
        updates plus basis refactorization.
        """
        cached = getattr(self, "_equality_cache", None)
        if cached is not None:
            return cached
        blocks = []
        rhs_parts = []
        num_le = 0
        if self.a_ub is not None:
            blocks.append(self.a_ub.toarray())
            rhs_parts.append(self.b_ub)
            num_le = self.a_ub.shape[0]
        if self.a_eq is not None:
            blocks.append(self.a_eq.toarray())
            rhs_parts.append(self.b_eq)
        if blocks:
            rows = np.vstack(blocks)
            rhs = np.concatenate(rhs_parts).astype(float)
        else:
            rows = np.zeros((0, self.num_variables))
            rhs = np.zeros(0)
        cached = (rows, rhs, num_le)
        # Frozen dataclass: stash the cache via object.__setattr__.
        object.__setattr__(self, "_equality_cache", cached)
        return cached


def extend_form_with_rows(
    form: StandardForm, a: np.ndarray, b: np.ndarray
) -> StandardForm:
    """Return a new form with dense ``a @ x <= b`` rows appended.

    The original form is unchanged.  This is the form-level counterpart
    of :meth:`~repro.milp.lp_backend.LPSession.add_rows`: cold backends
    rebuild the extended form through it, and the cut loop uses it to
    keep ``BranchAndBoundSolver._form`` in sync with its session.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_1d(np.asarray(b, dtype=float))
    if a.shape[0] == 0:
        return form
    if a.shape[1] != form.num_variables:
        raise ValueError(
            f"appended rows have {a.shape[1]} columns, "
            f"form has {form.num_variables} variables"
        )
    if a.shape[0] != b.shape[0]:
        raise ValueError("row matrix and rhs vector lengths differ")
    new_block = sparse.csr_matrix(a)
    if form.a_ub is not None:
        a_ub = sparse.vstack([form.a_ub, new_block], format="csr")
        b_ub = np.concatenate([form.b_ub, b])
    else:
        a_ub = new_block
        b_ub = b.copy()
    return StandardForm(
        c=form.c,
        c0=form.c0,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=form.a_eq,
        b_eq=form.b_eq,
        lb=form.lb,
        ub=form.ub,
        integral_indices=form.integral_indices,
    )


def to_standard_form(model: Model) -> StandardForm:
    """Convert ``model`` into sparse matrix standard form."""
    num_vars = model.num_variables
    c = np.zeros(num_vars)
    for index, coefficient in model.objective.coefficients.items():
        c[index] = coefficient

    ub_rows: list[int] = []
    ub_cols: list[int] = []
    ub_data: list[float] = []
    b_ub: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    b_eq: list[float] = []

    for constraint in model.constraints:
        if constraint.sense is Sense.EQ:
            row = len(b_eq)
            for index, coefficient in constraint.expr.coefficients.items():
                eq_rows.append(row)
                eq_cols.append(index)
                eq_data.append(coefficient)
            b_eq.append(constraint.rhs)
        else:
            sign = 1.0 if constraint.sense is Sense.LE else -1.0
            row = len(b_ub)
            for index, coefficient in constraint.expr.coefficients.items():
                ub_rows.append(row)
                ub_cols.append(index)
                ub_data.append(sign * coefficient)
            b_ub.append(sign * constraint.rhs)

    a_ub = None
    if b_ub:
        a_ub = sparse.csr_matrix(
            (ub_data, (ub_rows, ub_cols)), shape=(len(b_ub), num_vars)
        )
    a_eq = None
    if b_eq:
        a_eq = sparse.csr_matrix(
            (eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), num_vars)
        )

    lb, ub = model.bounds_arrays()
    return StandardForm(
        c=c,
        c0=model.objective.constant,
        a_ub=a_ub,
        b_ub=np.array(b_ub),
        a_eq=a_eq,
        b_eq=np.array(b_eq),
        lb=lb,
        ub=ub,
        integral_indices=np.array(model.integral_indices, dtype=np.int64),
    )
