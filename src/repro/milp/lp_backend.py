"""LP relaxation backends.

The branch-and-bound solver is backend-agnostic: it calls ``solve`` on an
:class:`LPBackend` with per-node bound vectors.  The default backend wraps
scipy's HiGHS implementation; :mod:`repro.milp.simplex` provides a
self-contained dense simplex used as a fallback and as a cross-check in
tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import SolverError
from repro.milp.standard_form import StandardForm


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class LPResult:
    """Result of one LP relaxation solve.

    ``objective`` includes the model's constant objective term.
    """

    status: LPStatus
    x: np.ndarray | None
    objective: float
    message: str = ""


class LPBackend:
    """Interface for LP relaxation solvers."""

    name = "abstract"

    def solve(
        self, form: StandardForm, lb: np.ndarray, ub: np.ndarray
    ) -> LPResult:
        """Solve the LP relaxation of ``form`` under bounds ``[lb, ub]``."""
        raise NotImplementedError


class ScipyHighsBackend(LPBackend):
    """LP backend delegating to ``scipy.optimize.linprog(method='highs')``."""

    name = "scipy-highs"

    #: scipy status codes: 0 ok, 1 iteration limit, 2 infeasible, 3 unbounded.
    _STATUS_MAP = {
        0: LPStatus.OPTIMAL,
        2: LPStatus.INFEASIBLE,
        3: LPStatus.UNBOUNDED,
    }

    def solve(
        self, form: StandardForm, lb: np.ndarray, ub: np.ndarray
    ) -> LPResult:
        bounds = np.column_stack([lb, ub])
        result = linprog(
            form.c,
            A_ub=form.a_ub,
            b_ub=form.b_ub if form.a_ub is not None else None,
            A_eq=form.a_eq,
            b_eq=form.b_eq if form.a_eq is not None else None,
            bounds=bounds,
            method="highs",
        )
        status = self._STATUS_MAP.get(result.status, LPStatus.ERROR)
        if status is LPStatus.OPTIMAL:
            return LPResult(
                status=status,
                x=np.asarray(result.x),
                objective=float(result.fun) + form.c0,
            )
        return LPResult(
            status=status,
            x=None,
            objective=float("inf"),
            message=str(result.message),
        )


def get_backend(name: str = "scipy") -> LPBackend:
    """Return an LP backend by name (``scipy`` or ``simplex``)."""
    if name in ("scipy", "scipy-highs", "highs"):
        return ScipyHighsBackend()
    if name == "simplex":
        from repro.milp.simplex import DenseSimplexBackend

        return DenseSimplexBackend()
    raise SolverError(f"unknown LP backend {name!r}")
