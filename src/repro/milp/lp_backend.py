"""LP relaxation backends and the stateful :class:`LPSession` contract.

The branch-and-bound solver is backend-agnostic.  Since this redesign the
primary surface is a long-lived **session** rather than a one-shot solve:
``LPBackend.create_session(form)`` returns an :class:`LPSession` that owns
whatever per-form state the backend needs (the revised simplex keeps the
equilibrated matrix, the live basis and its factorization cache there) and
is driven incrementally:

* :meth:`LPSession.set_bounds` — replace the variable-bound vectors.
  Branch-and-bound nodes, dives and fix-and-solve heuristics are pure
  bound changes, so a warm backend re-optimizes with a short dual-simplex
  run instead of a cold solve.
* :meth:`LPSession.add_rows` — append ``<=`` rows (cutting planes).  A
  warm backend **extends the current basis with the new rows' slack
  columns**: the extended basis is nonsingular by construction and stays
  dual-feasible (the new duals are zero), so the cut loop re-optimizes
  warm instead of cold-solving the extended form.
* :meth:`LPSession.solve` — optimize under the current bounds/rows and
  return an :class:`LPResult`.
* :meth:`LPSession.export_basis` / :meth:`LPSession.install_basis` —
  snapshot the session's basis and seed another session of an
  equal-shaped form with it (the portfolio's basis-exchange pool).

Session lifecycle and invalidation rules
----------------------------------------
* A session is created from one :class:`StandardForm` and tracks that
  form's *lineage*: the original columns plus any rows later appended via
  ``add_rows``.  It must not be reused for an unrelated form.
* ``set_bounds`` may widen or tighten bounds arbitrarily between solves;
  correctness never depends on the previous solution remaining feasible.
* ``add_rows`` permanently extends the session.  There is no row
  removal; callers that may need to retract rows (the cut loop on a
  numerical failure) discard the session and create a fresh one.
* An installed or internally-retained basis is **advisory**.  A backend
  that cannot use it (shape mismatch, numerically singular) silently
  falls back to a cold solve; ``install_basis`` returns ``False`` when
  the basis was rejected up front.  ``install_basis(None)`` clears the
  retained basis, forcing the next solve to start cold.
* ``export_basis`` returns the basis of the most recent ``OPTIMAL``
  solve (or the one installed since), ``None`` before the first solve.
  Exported bases are immutable snapshots: they stay valid after the
  exporting session mutates or dies.
* **Thread affinity:** a session is single-threaded — it may be created
  on one thread and driven on another, but never driven concurrently.
  Cross-thread sharing goes through ``export_basis``/``install_basis``
  (snapshots are safe to hand across threads) or the
  :class:`BasisExchangePool`.

Each session records :class:`SessionStats` (solves, warm ratio, rows
appended, refactorizations, dual bound flips), which branch-and-bound
surfaces as ``MILPSolution.session_stats`` and the service layer
aggregates.

Environment-tunable simplex knobs
---------------------------------
The revised simplex's process-wide defaults live here, next to each
other, so deployment tuning is one environment block (each also has a
programmatic override through :class:`SolverOptions` or the backend
constructors):

* ``REPRO_AUTO_SIMPLEX_MAX_VARS`` — largest variable count that
  ``backend="auto"`` routes to the warm revised simplex instead of
  scipy/HiGHS (default :data:`AUTO_SIMPLEX_MAX_VARS`); read through
  :func:`auto_simplex_max_vars`.
* ``REPRO_SIMPLEX_PRICING`` — primal pricing rule: ``devex``
  (default; reference-framework Devex), ``dantzig`` (most negative
  reduced cost) or ``bland`` (first eligible; anti-cycling, slow).
  Read through :func:`simplex_pricing`; whatever the rule, a run of
  degenerate pivots still engages Bland's rule as the escape hatch.
* ``REPRO_SIMPLEX_REFACTOR_INTERVAL`` — Forrest–Tomlin updates
  accumulated on the basis factorization before a fresh LU
  refactorization (default :data:`SIMPLEX_REFACTOR_INTERVAL`); read
  through :func:`simplex_refactor_interval`.  Stability triggers can
  refactorize earlier; this caps the update chain.

Backends and the deprecated one-shot path
-----------------------------------------
Two backends exist:

* :class:`ScipyHighsBackend` wraps ``scipy.optimize.linprog`` (HiGHS).
  scipy exposes no basis interface, so its sessions are *cold* adapters:
  every ``solve`` re-solves from scratch (correct, uniform API, no
  reuse).  ``LPResult.iterations`` still reports HiGHS's iteration count.
* :class:`~repro.milp.simplex.RevisedSimplexBackend` provides
  :class:`~repro.milp.simplex.SimplexSession`, the fully warm session.

``LPBackend.solve(form, lb, ub, basis=None)`` remains as a **deprecated
shim** over a throwaway session so out-of-tree callers keep working; new
code should create a session and drive it directly.  The legacy warm-start
contract is unchanged: the ``basis`` parameter is advisory, bound changes
between calls are unrestricted, and ``LPResult.iterations`` counts simplex
pivots (0 for backends that do not report them).
"""

from __future__ import annotations

import enum
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np
from scipy.optimize import linprog

from repro import faultinject
from repro.exceptions import SolverError
from repro.milp.standard_form import StandardForm, extend_form_with_rows


#: ``backend="auto"``: largest variable count routed to the revised
#: simplex (above it, scipy/HiGHS wins despite cold node solves).
#: Re-measured for the Forrest–Tomlin + Devex engine on the Figure-2
#: workloads (raised from the product-form engine's 150): through the
#: 230-variable (6-table) formulations the warm engine reaches the
#: same incumbent plans as HiGHS-backed search at the benchmark
#: budgets while taking 2–5× fewer pivots than the old engine; above
#: that, HiGHS's compiled per-pivot cost still wins cold proof races
#: (see ROADMAP for the measured residual limits).  Overridable per
#: process through the ``REPRO_AUTO_SIMPLEX_MAX_VARS`` environment
#: variable.
AUTO_SIMPLEX_MAX_VARS = 230

#: Primal pricing rules accepted by :func:`simplex_pricing`,
#: ``SolverOptions.pricing`` and the simplex backend constructors.
PRICING_RULES = ("devex", "dantzig", "bland")

#: Default primal pricing rule (``REPRO_SIMPLEX_PRICING`` overrides).
SIMPLEX_PRICING = "devex"

#: Forrest–Tomlin updates accumulated before a fresh LU refactorization
#: (``REPRO_SIMPLEX_REFACTOR_INTERVAL`` overrides).
SIMPLEX_REFACTOR_INTERVAL = 64


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise SolverError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def auto_simplex_max_vars() -> int:
    """The effective ``backend="auto"`` crossover, honouring the
    ``REPRO_AUTO_SIMPLEX_MAX_VARS`` environment override."""
    return _env_int("REPRO_AUTO_SIMPLEX_MAX_VARS", AUTO_SIMPLEX_MAX_VARS)


def simplex_pricing() -> str:
    """The process-default pricing rule, honouring the
    ``REPRO_SIMPLEX_PRICING`` environment override."""
    raw = os.environ.get("REPRO_SIMPLEX_PRICING")
    if raw is None or not raw.strip():
        return SIMPLEX_PRICING
    return validate_pricing(raw)


def validate_pricing(name: str) -> str:
    """Normalize a pricing-rule name; raise on an unknown rule."""
    normalized = name.strip().lower()
    if normalized not in PRICING_RULES:
        raise SolverError(
            f"pricing must be one of {PRICING_RULES}, got {name!r}"
        )
    return normalized


def simplex_refactor_interval() -> int:
    """The process-default Forrest–Tomlin refactorization interval,
    honouring the ``REPRO_SIMPLEX_REFACTOR_INTERVAL`` override."""
    interval = _env_int(
        "REPRO_SIMPLEX_REFACTOR_INTERVAL", SIMPLEX_REFACTOR_INTERVAL
    )
    if interval < 1:
        raise SolverError(
            "REPRO_SIMPLEX_REFACTOR_INTERVAL must be >= 1, "
            f"got {interval}"
        )
    return interval


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class SimplexBasis:
    """A simplex basis snapshot: the warm-start token.

    Attributes
    ----------
    basic:
        Indices of the ``m`` basic columns in the backend's internal
        column layout (structural variables followed by one slack per
        row).  Opaque to callers: thread it back into ``install_basis``.
    status:
        Per-column nonbasic status (``BASIC``/``AT_LOWER``/``AT_UPPER``/
        ``FREE`` from :mod:`repro.milp.simplex`).
    signature:
        ``(num_le_rows, num_eq_rows, num_structural)`` of the form (or
        session lineage) the basis was produced for; a mismatch
        invalidates the basis.  Rows appended through
        :meth:`LPSession.add_rows` count toward ``num_le_rows`` *and*
        add a fourth element (the appended-row count): a grown session
        lays its rows out differently from a fresh workspace of the
        equal-shaped extended form, so its bases only seed sessions
        that grew the same way.
    """

    basic: np.ndarray
    status: np.ndarray
    signature: tuple[int, ...]


def form_signature(form: StandardForm) -> tuple[int, int, int]:
    """The :attr:`SimplexBasis.signature` a fresh session of ``form``
    would produce: ``(num_le_rows, num_eq_rows, num_structural)``.

    Computed from the matrix shapes alone (no equality-form
    materialization), so callers can ask a :class:`BasisExchangePool`
    for a compatible basis before building any session state.  Grown
    sessions (``add_rows``) carry a fourth element and are deliberately
    *not* matched — their bases only transfer to sessions grown the
    same way.
    """
    num_le = form.a_ub.shape[0] if form.a_ub is not None else 0
    num_eq = form.a_eq.shape[0] if form.a_eq is not None else 0
    return (num_le, num_eq, form.num_variables)


@dataclass(frozen=True, slots=True)
class LPResult:
    """Result of one LP relaxation solve.

    ``objective`` includes the model's constant objective term.
    ``basis`` (when the backend supports warm starts) can seed another
    solve of the same form; ``iterations`` counts simplex pivots.
    """

    status: LPStatus
    x: np.ndarray | None
    objective: float
    message: str = ""
    basis: SimplexBasis | None = None
    iterations: int = 0


@dataclass
class SessionStats:
    """Per-session reuse accounting (see :attr:`LPSession.stats`).

    ``warm_solves`` counts solves that started from a retained or
    installed basis; ``refactorizations`` counts fresh LU
    factorizations (0 for backends without one); ``bound_flips``
    counts nonbasic bound flips taken by the dual simplex's bound-flip
    ratio test; ``fallback_solves`` counts solves the *caller* rerouted
    to a fallback backend after an ERROR/UNBOUNDED answer
    (branch-and-bound increments it, so an error-fallback cold solve is
    distinguishable from a size-routed one in ``session_stats``).
    ``notes`` carries free-form string diagnostics (backend name, cold
    or fallback reasons); they ride along in :meth:`as_dict` and are
    ignored by :meth:`absorb`.
    """

    solves: int = 0
    warm_solves: int = 0
    pivots: int = 0
    rows_appended: int = 0
    refactorizations: int = 0
    bases_installed: int = 0
    bound_flips: int = 0
    fallback_solves: int = 0
    notes: dict = field(default_factory=dict)

    #: Counter fields summed by :meth:`absorb` (``warm_ratio`` derives).
    _COUNTERS = (
        "solves", "warm_solves", "pivots", "rows_appended",
        "refactorizations", "bases_installed", "bound_flips",
        "fallback_solves",
    )

    @property
    def warm_ratio(self) -> float:
        """Fraction of solves that started warm (0.0 when idle)."""
        return self.warm_solves / self.solves if self.solves else 0.0

    def absorb(self, stats: "SessionStats | dict") -> None:
        """Fold another session's stats (object or ``as_dict``) in.

        The one aggregation point shared by the portfolio's member
        roll-up and the service-level tracker.
        """
        if isinstance(stats, SessionStats):
            stats = stats.as_dict()
        for key in self._COUNTERS:
            setattr(self, key, getattr(self, key) + int(stats.get(key, 0)))

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (benchmarks, service diagnostics)."""
        snapshot = {
            "solves": self.solves,
            "warm_solves": self.warm_solves,
            "warm_ratio": self.warm_ratio,
            "pivots": self.pivots,
            "rows_appended": self.rows_appended,
            "refactorizations": self.refactorizations,
            "bases_installed": self.bases_installed,
            "bound_flips": self.bound_flips,
            "fallback_solves": self.fallback_solves,
        }
        snapshot.update(self.notes)
        return snapshot


class LPSession:
    """One stateful solving context over a single form lineage.

    See the module docstring for the full lifecycle/invalidation
    contract.  Subclasses implement :meth:`set_bounds`,
    :meth:`add_rows` and :meth:`solve`; the basis methods have sensible
    defaults for backends without warm-start support.
    """

    #: Name of the owning backend (diagnostics).
    backend_name = "abstract"

    #: Whether this session reuses bases across solves.
    supports_warm_start = False

    def __init__(self, form: StandardForm) -> None:
        #: The form the session was created from (pre-``add_rows``).
        self.form = form
        #: Reuse accounting, updated by every operation.
        self.stats = SessionStats()
        #: Optional :class:`repro.cancel.CancelToken` polled by warm
        #: backends inside their pivot loops; set by the driving solver
        #: (branch-and-bound threads ``SolverOptions.cancel_token``
        #: through here).  ``None`` means never cancel.
        self.cancel_token = None

    def _validated_bounds(
        self, lb: np.ndarray, ub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Coerce and shape-check bound vectors (shared by backends).

        Rejecting short vectors here matters: numpy would otherwise
        broadcast a size-1 array over every variable and produce a
        plausible-looking wrong feasible region.
        """
        lb = np.asarray(lb, dtype=float)
        ub = np.asarray(ub, dtype=float)
        n = self.form.num_variables
        if lb.shape != (n,) or ub.shape != (n,):
            raise SolverError(
                f"bound vectors must have shape ({n},), got "
                f"{lb.shape} and {ub.shape}"
            )
        return lb.copy(), ub.copy()

    def _validated_rows(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Coerce and shape-check an ``a @ x <= b`` row block."""
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_1d(np.asarray(b, dtype=float))
        if a.shape[1] != self.form.num_variables:
            raise SolverError(
                f"appended rows have {a.shape[1]} columns, session has "
                f"{self.form.num_variables} variables"
            )
        if a.shape[0] != b.shape[0]:
            raise SolverError(
                f"row matrix and rhs vector lengths differ "
                f"({a.shape[0]} vs {b.shape[0]})"
            )
        return a, b

    def set_bounds(self, lb: np.ndarray, ub: np.ndarray) -> None:
        """Replace the structural variable bounds for the next solve."""
        raise NotImplementedError

    def add_rows(
        self,
        a: np.ndarray,
        b: np.ndarray,
        form: StandardForm | None = None,
    ) -> None:
        """Append ``a @ x <= b`` rows to the session's relaxation.

        ``a`` is ``(k, num_variables)`` over the structural variables,
        ``b`` is ``(k,)``.  Warm backends extend the current basis with
        the new rows' slack columns so the next solve stays warm.
        ``form`` optionally passes the already-materialized extended
        :class:`StandardForm` for the same rows (callers like the cut
        loop build it anyway for fallback solves); cold sessions adopt
        it instead of rebuilding, warm sessions ignore it.
        """
        raise NotImplementedError

    def solve(self) -> LPResult:
        """Optimize under the current bounds and rows."""
        raise NotImplementedError

    def export_basis(self) -> SimplexBasis | None:
        """Snapshot the current basis (``None`` when unsupported/cold)."""
        return None

    def install_basis(self, basis: SimplexBasis | None) -> bool:
        """Seed the next solve with ``basis`` (``None`` forces cold).

        Returns whether the basis was accepted; a rejected basis leaves
        the session cold, never wrong.
        """
        return basis is None

    def close(self) -> None:
        """Release backend resources (optional; default no-op)."""


class ColdLPSession(LPSession):
    """Session adapter over a stateless backend: correct, never warm.

    Keeps the (possibly row-extended) form and current bounds, and
    delegates every :meth:`solve` to the backend's one-shot ``solve``.
    This makes the session API uniform across backends — callers drive
    ``set_bounds``/``add_rows``/``solve`` identically and simply get no
    reuse on backends that cannot provide it.
    """

    supports_warm_start = False

    def __init__(self, backend: "LPBackend", form: StandardForm) -> None:
        super().__init__(form)
        self.backend_name = backend.name
        self._backend = backend
        self._current_form = form
        self._lb = np.asarray(form.lb, dtype=float).copy()
        self._ub = np.asarray(form.ub, dtype=float).copy()

    def set_bounds(self, lb: np.ndarray, ub: np.ndarray) -> None:
        self._lb, self._ub = self._validated_bounds(lb, ub)

    def add_rows(
        self,
        a: np.ndarray,
        b: np.ndarray,
        form: StandardForm | None = None,
    ) -> None:
        a, b = self._validated_rows(a, b)
        if a.shape[0] == 0:
            return
        self._current_form = (
            form if form is not None
            else extend_form_with_rows(self._current_form, a, b)
        )
        self.stats.rows_appended += a.shape[0]

    def solve(self) -> LPResult:
        result = self._backend.solve(self._current_form, self._lb, self._ub)
        self.stats.solves += 1
        self.stats.pivots += result.iterations
        return result


class LPBackend:
    """Interface for LP relaxation solvers."""

    name = "abstract"

    #: Whether the backend's sessions reuse bases across solves.
    supports_warm_start = False

    def create_session(self, form: StandardForm) -> LPSession:
        """Open a stateful session on ``form`` (the primary API).

        The default wraps the backend's one-shot ``solve`` in a
        :class:`ColdLPSession`; warm backends override this to return a
        genuinely stateful session.
        """
        if type(self).solve is LPBackend.solve:
            raise NotImplementedError(
                "backend must implement solve() or create_session()"
            )
        return ColdLPSession(self, form)

    def solve(
        self,
        form: StandardForm,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
    ) -> LPResult:
        """One-shot solve of ``form`` under ``[lb, ub]``.

        .. deprecated:: PR 3
            Thin shim over a throwaway session, kept for out-of-tree
            callers; create a session via :meth:`create_session` and
            drive it directly instead.  ``basis`` is advisory, exactly
            as under the old warm-start contract.
        """
        session = self.create_session(form)
        session.set_bounds(lb, ub)
        if basis is not None:
            session.install_basis(basis)
        return session.solve()


class ScipyHighsBackend(LPBackend):
    """LP backend delegating to ``scipy.optimize.linprog(method='highs')``.

    HiGHS re-solves from scratch on every call (scipy exposes no basis
    interface), so ``create_session`` returns the correct-but-cold
    :class:`ColdLPSession` adapter and ``basis`` is accepted and
    ignored.  ``LPResult.iterations`` carries scipy's ``nit`` so solver
    effort is visible on this path too.
    """

    name = "scipy-highs"
    supports_warm_start = False

    #: scipy status codes: 0 ok, 1 iteration limit, 2 infeasible, 3 unbounded.
    _STATUS_MAP = {
        0: LPStatus.OPTIMAL,
        2: LPStatus.INFEASIBLE,
        3: LPStatus.UNBOUNDED,
    }

    def solve(
        self,
        form: StandardForm,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
    ) -> LPResult:
        fault = faultinject.check(faultinject.HIGHS_SOLVE)
        if fault is not None:
            if fault.kind == "slow":
                time.sleep(fault.delay)
            elif fault.kind == "exception":
                raise SolverError(f"injected: {fault.message}")
            elif fault.kind == "error":
                return LPResult(
                    LPStatus.ERROR, None, float("inf"),
                    message=f"injected: {fault.message}",
                )
        bounds = np.column_stack([lb, ub])
        result = linprog(
            form.c,
            A_ub=form.a_ub,
            b_ub=form.b_ub if form.a_ub is not None else None,
            A_eq=form.a_eq,
            b_eq=form.b_eq if form.a_eq is not None else None,
            bounds=bounds,
            method="highs",
        )
        status = self._STATUS_MAP.get(result.status, LPStatus.ERROR)
        iterations = int(getattr(result, "nit", 0) or 0)
        if status is LPStatus.OPTIMAL:
            return LPResult(
                status=status,
                x=np.asarray(result.x),
                objective=float(result.fun) + form.c0,
                message=str(result.message),
                iterations=iterations,
            )
        return LPResult(
            status=status,
            x=None,
            objective=float("inf"),
            message=str(result.message),
            iterations=iterations,
        )


class BasisExchangePool:
    """Thread-safe basis pool shared by solvers attacking related forms.

    Two sharing patterns go through the pool:

    * **Portfolio members** all solve the *same* model: the first member
      to finish its root LP publishes the optimal basis and later
      members seed their own sessions from it via
      :meth:`LPSession.install_basis` instead of cold-solving.
    * **Cross-query sharing** (the serving layer): concurrent requests
      over *different* queries of the same shape — e.g. two star-6
      join-ordering formulations — produce equal-signature standard
      forms, so one query's root basis warm-starts another query's
      root LP.  Bases are therefore kept per
      :attr:`SimplexBasis.signature` (bounded by
      ``max_signatures``, FIFO eviction), and :meth:`fetch` takes the
      caller's form signature so a star-6 request never thrashes a
      chain-10 slot.

    Installers validate compatibility anyway — a mismatched basis
    degrades to a cold solve, never a wrong answer.  ``fetch()`` without
    a signature keeps the legacy "most recently published" behaviour the
    portfolio relies on (its members share one form, so one slot is
    enough there).
    """

    def __init__(self, max_signatures: int = 64) -> None:
        if max_signatures < 1:
            raise ValueError("max_signatures must be >= 1")
        self._lock = threading.Lock()
        self._latest: SimplexBasis | None = None
        self._by_signature: "OrderedDict[tuple, SimplexBasis]" = (
            OrderedDict()
        )
        self._max_signatures = max_signatures
        self.publishes = 0
        self.hits = 0
        self.misses = 0

    def publish(self, basis: SimplexBasis | None) -> None:
        """Offer a basis to the pool (``None`` is silently ignored)."""
        if basis is None:
            return
        with self._lock:
            self._latest = basis
            signature = tuple(basis.signature)
            self._by_signature[signature] = basis
            self._by_signature.move_to_end(signature)
            while len(self._by_signature) > self._max_signatures:
                self._by_signature.popitem(last=False)
            self.publishes += 1

    def fetch(
        self, signature: "tuple[int, ...] | None" = None
    ) -> SimplexBasis | None:
        """A published basis usable for ``signature`` (``None`` if none).

        Without a signature, the most recently published basis of any
        shape is returned (legacy single-form behaviour).  With one,
        only a basis published for exactly that form shape is returned —
        a miss rather than a guaranteed-rejected candidate.

        The returned snapshot is a *defensive copy*: callers own their
        arrays outright, so a solver mutating its warm-start in place
        (or a store-seeded snapshot shared by many requests) can never
        bleed into another request's fetch of the same slot.
        """
        with self._lock:
            if signature is None:
                found = self._latest
            else:
                found = self._by_signature.get(tuple(signature))
            if found is None:
                self.misses += 1
            else:
                self.hits += 1
        if found is not None:
            found = replace(
                found,
                basic=np.array(found.basic, copy=True),
                status=np.array(found.status, copy=True),
            )
            fault = faultinject.check(faultinject.POOL_FETCH)
            if fault is not None and fault.kind == "corrupt":
                # Models snapshot rot in transit: the pool keeps its
                # pristine copy, only this caller sees the corruption
                # (and must survive it via install-time validation).
                found = faultinject.corrupt_basis(
                    found, faultinject.active().rng_for(fault)
                )
        return found

    def signatures(self) -> int:
        """Number of distinct form shapes currently held."""
        with self._lock:
            return len(self._by_signature)

    def entries(self) -> "list[tuple[tuple, SimplexBasis]]":
        """Every held ``(signature, basis)`` pair, oldest first.

        Snapshots are defensive copies like :meth:`fetch` returns.  The
        serving layer's store flush walks this to persist the pool.
        """
        with self._lock:
            items = list(self._by_signature.items())
        return [
            (
                signature,
                replace(
                    basis,
                    basic=np.array(basis.basic, copy=True),
                    status=np.array(basis.status, copy=True),
                ),
            )
            for signature, basis in items
        ]

    def as_dict(self) -> dict:
        """JSON-friendly stats snapshot."""
        with self._lock:
            return {
                "publishes": self.publishes,
                "hits": self.hits,
                "misses": self.misses,
                "signatures": len(self._by_signature),
            }


def get_backend(name: str = "scipy") -> LPBackend:
    """Return an LP backend by name (case- and whitespace-insensitive).

    ``scipy``/``scipy-highs``/``highs`` map to :class:`ScipyHighsBackend`;
    ``simplex``/``revised``/``revised-simplex``/``dense-simplex`` map to
    the warm-start capable revised simplex.
    """
    normalized = name.strip().lower()
    if normalized in ("scipy", "scipy-highs", "highs"):
        return ScipyHighsBackend()
    if normalized in ("simplex", "revised", "revised-simplex", "dense-simplex"):
        from repro.milp.simplex import RevisedSimplexBackend

        return RevisedSimplexBackend()
    raise SolverError(f"unknown LP backend {name!r}")
