"""LP relaxation backends and the warm-start contract.

The branch-and-bound solver is backend-agnostic: it calls ``solve`` on an
:class:`LPBackend` with per-node bound vectors.  Two backends exist:

* :class:`ScipyHighsBackend` wraps ``scipy.optimize.linprog`` (HiGHS).  It
  is robust and fast on large models but solves every node from scratch.
* :class:`~repro.milp.simplex.RevisedSimplexBackend` is the self-contained
  revised simplex with bounded variables.  It supports **warm starts**: a
  :class:`SimplexBasis` returned from one solve can seed the next.

Warm-start contract
-------------------
``solve(form, lb, ub, basis=None)`` may be given the :attr:`LPResult.basis`
of a *previous* solve of the **same** :class:`StandardForm` object (or an
equal-shaped one).  The contract is:

* The basis is advisory.  A backend that cannot use it (wrong backend,
  shape mismatch after cuts were appended, numerically singular) silently
  falls back to a cold solve; correctness never depends on the basis.
* Bound changes between solves are unrestricted.  Branch-and-bound only
  tightens bounds, which leaves the parent basis dual-feasible, so the
  re-optimization is a short dual-simplex run (often zero pivots); but the
  backend must also produce correct answers for arbitrary new bounds.
* ``LPResult.basis`` of an ``OPTIMAL`` result is always reusable for the
  same form; for other statuses it may be ``None``.
* ``LPResult.iterations`` counts simplex pivots (0 for backends that do
  not report them), which branch-and-bound aggregates into
  ``MILPSolution.lp_pivots`` for the benchmark trajectory.

Backends advertise warm-start support via :attr:`LPBackend.supports_warm_start`
so the solver can skip threading bases through backends that ignore them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import SolverError
from repro.milp.standard_form import StandardForm


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class SimplexBasis:
    """A simplex basis snapshot: the warm-start token.

    Attributes
    ----------
    basic:
        Indices of the ``m`` basic columns in the backend's internal
        column layout (structural variables followed by one slack per
        row).  Opaque to callers: thread it back into ``solve``.
    status:
        Per-column nonbasic status (``BASIC``/``AT_LOWER``/``AT_UPPER``/
        ``FREE`` from :mod:`repro.milp.simplex`).
    signature:
        ``(num_le_rows, num_eq_rows, num_structural)`` of the form the
        basis was produced for; a mismatch invalidates the basis (e.g.
        after cutting planes appended rows).
    """

    basic: np.ndarray
    status: np.ndarray
    signature: tuple[int, int, int]


@dataclass(frozen=True, slots=True)
class LPResult:
    """Result of one LP relaxation solve.

    ``objective`` includes the model's constant objective term.
    ``basis`` (when the backend supports warm starts) can seed the next
    solve of the same form; ``iterations`` counts simplex pivots.
    """

    status: LPStatus
    x: np.ndarray | None
    objective: float
    message: str = ""
    basis: SimplexBasis | None = None
    iterations: int = 0


class LPBackend:
    """Interface for LP relaxation solvers."""

    name = "abstract"

    #: Whether ``solve`` honours the ``basis`` warm-start parameter.
    supports_warm_start = False

    def solve(
        self,
        form: StandardForm,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
    ) -> LPResult:
        """Solve the LP relaxation of ``form`` under bounds ``[lb, ub]``.

        ``basis`` is an optional warm start (see the module docstring for
        the contract); backends without warm-start support ignore it.
        """
        raise NotImplementedError


class ScipyHighsBackend(LPBackend):
    """LP backend delegating to ``scipy.optimize.linprog(method='highs')``.

    HiGHS re-solves from scratch on every call (scipy exposes no basis
    interface), so ``basis`` is accepted and ignored.
    """

    name = "scipy-highs"
    supports_warm_start = False

    #: scipy status codes: 0 ok, 1 iteration limit, 2 infeasible, 3 unbounded.
    _STATUS_MAP = {
        0: LPStatus.OPTIMAL,
        2: LPStatus.INFEASIBLE,
        3: LPStatus.UNBOUNDED,
    }

    def solve(
        self,
        form: StandardForm,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
    ) -> LPResult:
        bounds = np.column_stack([lb, ub])
        result = linprog(
            form.c,
            A_ub=form.a_ub,
            b_ub=form.b_ub if form.a_ub is not None else None,
            A_eq=form.a_eq,
            b_eq=form.b_eq if form.a_eq is not None else None,
            bounds=bounds,
            method="highs",
        )
        status = self._STATUS_MAP.get(result.status, LPStatus.ERROR)
        if status is LPStatus.OPTIMAL:
            return LPResult(
                status=status,
                x=np.asarray(result.x),
                objective=float(result.fun) + form.c0,
            )
        return LPResult(
            status=status,
            x=None,
            objective=float("inf"),
            message=str(result.message),
        )


def get_backend(name: str = "scipy") -> LPBackend:
    """Return an LP backend by name.

    ``scipy``/``scipy-highs``/``highs`` map to :class:`ScipyHighsBackend`;
    ``simplex``/``revised``/``revised-simplex``/``dense-simplex`` map to
    the warm-start capable revised simplex.
    """
    if name in ("scipy", "scipy-highs", "highs"):
        return ScipyHighsBackend()
    if name in ("simplex", "revised", "revised-simplex", "dense-simplex"):
        from repro.milp.simplex import RevisedSimplexBackend

        return RevisedSimplexBackend()
    raise SolverError(f"unknown LP backend {name!r}")
