"""Sparse linear expressions over MILP variables.

A :class:`LinExpr` is a sparse mapping ``variable index -> coefficient`` plus
a constant term.  Expressions support the natural arithmetic operators, so
model-building code reads close to the paper's mathematical notation::

    lco[j] == lin_sum(log_card[t] * tio[t, j] for t in tables) + ...
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import ModelError
from repro.milp.variables import Variable

Termable = "LinExpr | Variable | float | int"


class LinExpr:
    """A sparse linear expression ``sum(coef_i * x_i) + constant``."""

    __slots__ = ("coefficients", "constant")

    def __init__(
        self,
        coefficients: dict[int, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self.coefficients: dict[int, float] = coefficients or {}
        self.constant = float(constant)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_var(cls, variable: Variable, coefficient: float = 1.0) -> LinExpr:
        """Expression consisting of a single weighted variable."""
        return cls({variable.index: float(coefficient)})

    @classmethod
    def constant_expr(cls, value: float) -> LinExpr:
        """Expression with no variables."""
        return cls({}, value)

    @staticmethod
    def coerce(value) -> LinExpr:
        """Convert a variable or number into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return LinExpr.from_var(value)
        if isinstance(value, (int, float)):
            return LinExpr.constant_expr(float(value))
        raise ModelError(f"cannot use {value!r} in a linear expression")

    def copy(self) -> LinExpr:
        """Return an independent copy of this expression."""
        return LinExpr(dict(self.coefficients), self.constant)

    # ------------------------------------------------------------------
    # In-place building (used by hot formulation loops)
    # ------------------------------------------------------------------

    def add_term(self, variable: Variable, coefficient: float) -> LinExpr:
        """Add ``coefficient * variable`` in place and return ``self``."""
        index = variable.index
        updated = self.coefficients.get(index, 0.0) + float(coefficient)
        if updated == 0.0:
            self.coefficients.pop(index, None)
        else:
            self.coefficients[index] = updated
        return self

    def add_constant(self, value: float) -> LinExpr:
        """Add a constant in place and return ``self``."""
        self.constant += float(value)
        return self

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def __add__(self, other) -> LinExpr:
        other = LinExpr.coerce(other)
        coefficients = dict(self.coefficients)
        for index, coefficient in other.coefficients.items():
            updated = coefficients.get(index, 0.0) + coefficient
            if updated == 0.0:
                coefficients.pop(index, None)
            else:
                coefficients[index] = updated
        return LinExpr(coefficients, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other) -> LinExpr:
        return self + (LinExpr.coerce(other) * -1.0)

    def __rsub__(self, other) -> LinExpr:
        return (self * -1.0) + other

    def __mul__(self, scalar) -> LinExpr:
        if not isinstance(scalar, (int, float)):
            raise ModelError(
                "linear expressions can only be multiplied by numbers; "
                "products of variables must be linearized explicitly "
                "(see repro.core.linearize)"
            )
        scalar = float(scalar)
        if scalar == 0.0:
            return LinExpr()
        return LinExpr(
            {index: coefficient * scalar
             for index, coefficient in self.coefficients.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __neg__(self) -> LinExpr:
        return self * -1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(
            f"{coefficient:g}*x{index}"
            for index, coefficient in sorted(self.coefficients.items())
        )
        if self.constant or not terms:
            terms = f"{terms} + {self.constant:g}" if terms else f"{self.constant:g}"
        return f"LinExpr({terms})"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def value(self, assignment) -> float:
        """Evaluate under ``assignment`` (indexable by variable index)."""
        return self.constant + sum(
            coefficient * assignment[index]
            for index, coefficient in self.coefficients.items()
        )

    @property
    def is_constant(self) -> bool:
        """Whether the expression contains no variables."""
        return not self.coefficients


def lin_sum(terms: Iterable) -> LinExpr:
    """Sum an iterable of variables/expressions/numbers into one expression.

    Faster than ``sum(...)`` because it accumulates in place.
    """
    result = LinExpr()
    for term in terms:
        if isinstance(term, Variable):
            result.add_term(term, 1.0)
        elif isinstance(term, LinExpr):
            for index, coefficient in term.coefficients.items():
                updated = result.coefficients.get(index, 0.0) + coefficient
                if updated == 0.0:
                    result.coefficients.pop(index, None)
                else:
                    result.coefficients[index] = updated
            result.constant += term.constant
        else:
            result.add_constant(term)
    return result
