"""MILP solver substrate.

The paper solves its formulation with Gurobi; this package is the
self-contained replacement: a model-building API (:class:`Model`,
:class:`LinExpr`), LP relaxation backends (scipy HiGHS and a warm-start
capable revised simplex), presolve, and an anytime branch-and-bound search
(:class:`BranchAndBoundSolver`) that re-optimizes each node from its
parent's basis.
"""

from repro.milp.branch_and_bound import (
    BranchAndBoundSolver,
    SolverOptions,
    solve_milp,
)
from repro.milp.constraints import Constraint, Sense
from repro.milp.cuts import Cut, CutGenerator, append_cuts, check_cut_validity
from repro.milp.expr import LinExpr, lin_sum
from repro.milp.io import read_lp, write_lp
from repro.milp.lp_backend import (
    LPBackend,
    LPResult,
    LPStatus,
    ScipyHighsBackend,
    SimplexBasis,
    get_backend,
)
from repro.milp.model import FEASIBILITY_TOL, Model
from repro.milp.mps import read_mps, write_mps
from repro.milp.portfolio import (
    PortfolioMember,
    PortfolioResult,
    PortfolioSolver,
    default_portfolio,
    solve_portfolio,
)
from repro.milp.presolve import PresolveResult, presolve
from repro.milp.simplex import DenseSimplexBackend, RevisedSimplexBackend
from repro.milp.solution import (
    IncumbentEvent,
    MILPSolution,
    SolveStatus,
    relative_gap,
)
from repro.milp.standard_form import StandardForm, to_standard_form
from repro.milp.variables import Variable, VarType

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "Cut",
    "CutGenerator",
    "append_cuts",
    "check_cut_validity",
    "default_portfolio",
    "DenseSimplexBackend",
    "FEASIBILITY_TOL",
    "IncumbentEvent",
    "LPBackend",
    "LPResult",
    "LPStatus",
    "LinExpr",
    "MILPSolution",
    "Model",
    "PortfolioMember",
    "PortfolioResult",
    "PortfolioSolver",
    "PresolveResult",
    "RevisedSimplexBackend",
    "ScipyHighsBackend",
    "Sense",
    "SimplexBasis",
    "SolveStatus",
    "SolverOptions",
    "StandardForm",
    "Variable",
    "VarType",
    "get_backend",
    "lin_sum",
    "presolve",
    "read_lp",
    "read_mps",
    "relative_gap",
    "solve_milp",
    "solve_portfolio",
    "to_standard_form",
    "write_lp",
    "write_mps",
]
