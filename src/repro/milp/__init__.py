"""MILP solver substrate.

The paper solves its formulation with Gurobi; this package is the
self-contained replacement: a model-building API (:class:`Model`,
:class:`LinExpr`), LP relaxation backends behind the stateful
:class:`LPSession` API (scipy HiGHS via a cold session adapter, and a
warm revised simplex whose sessions support incremental bounds, hot cut
rows, and cross-session basis exchange), presolve, and an anytime
branch-and-bound search (:class:`BranchAndBoundSolver`) that drives one
session per tree and re-optimizes each node from its parent's basis.
"""

from repro.milp.branch_and_bound import (
    BranchAndBoundSolver,
    SolverOptions,
    solve_milp,
)
from repro.milp.constraints import Constraint, Sense
from repro.milp.cuts import (
    Cut,
    CutGenerator,
    append_cuts,
    check_cut_validity,
    cuts_to_rows,
)
from repro.milp.expr import LinExpr, lin_sum
from repro.milp.io import read_lp, write_lp
from repro.milp.lp_backend import (
    AUTO_SIMPLEX_MAX_VARS,
    BasisExchangePool,
    PRICING_RULES,
    form_signature,
    ColdLPSession,
    LPBackend,
    LPResult,
    LPSession,
    LPStatus,
    ScipyHighsBackend,
    SessionStats,
    SimplexBasis,
    auto_simplex_max_vars,
    get_backend,
    simplex_pricing,
    simplex_refactor_interval,
    validate_pricing,
)
from repro.milp.model import FEASIBILITY_TOL, Model
from repro.milp.mps import read_mps, write_mps
from repro.milp.portfolio import (
    PortfolioMember,
    PortfolioResult,
    PortfolioSolver,
    default_portfolio,
    solve_portfolio,
)
from repro.milp.presolve import PresolveResult, presolve
from repro.milp.simplex import (
    DenseSimplexBackend,
    RevisedSimplexBackend,
    SimplexSession,
)
from repro.milp.solution import (
    IncumbentEvent,
    MILPSolution,
    SolveStatus,
    relative_gap,
)
from repro.milp.standard_form import (
    StandardForm,
    extend_form_with_rows,
    to_standard_form,
)
from repro.milp.variables import Variable, VarType

__all__ = [
    "AUTO_SIMPLEX_MAX_VARS",
    "BasisExchangePool",
    "PRICING_RULES",
    "form_signature",
    "BranchAndBoundSolver",
    "ColdLPSession",
    "Constraint",
    "Cut",
    "CutGenerator",
    "append_cuts",
    "auto_simplex_max_vars",
    "check_cut_validity",
    "cuts_to_rows",
    "default_portfolio",
    "DenseSimplexBackend",
    "extend_form_with_rows",
    "FEASIBILITY_TOL",
    "IncumbentEvent",
    "LPBackend",
    "LPResult",
    "LPSession",
    "LPStatus",
    "LinExpr",
    "MILPSolution",
    "Model",
    "PortfolioMember",
    "PortfolioResult",
    "PortfolioSolver",
    "PresolveResult",
    "RevisedSimplexBackend",
    "ScipyHighsBackend",
    "Sense",
    "SessionStats",
    "SimplexBasis",
    "SimplexSession",
    "SolveStatus",
    "SolverOptions",
    "StandardForm",
    "Variable",
    "VarType",
    "get_backend",
    "lin_sum",
    "presolve",
    "read_lp",
    "read_mps",
    "relative_gap",
    "simplex_pricing",
    "simplex_refactor_interval",
    "solve_milp",
    "solve_portfolio",
    "validate_pricing",
    "to_standard_form",
    "write_lp",
    "write_mps",
]
