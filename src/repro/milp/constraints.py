"""Linear constraints for MILP models."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.exceptions import ModelError
from repro.milp.expr import LinExpr


class Sense(enum.Enum):
    """Comparison direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True, slots=True)
class Constraint:
    """A normalized linear constraint ``expr (sense) rhs``.

    The stored expression carries no constant term: any constant is folded
    into ``rhs`` during construction by :meth:`Model.add_constraint`.
    """

    name: str
    expr: LinExpr
    sense: Sense
    rhs: float

    def __post_init__(self) -> None:
        if math.isnan(self.rhs) or math.isinf(self.rhs):
            raise ModelError(f"constraint {self.name!r}: non-finite rhs")
        if self.expr.constant != 0.0:
            raise ModelError(
                f"constraint {self.name!r}: expression constant must be "
                "folded into rhs (use Model.add_constraint)"
            )

    def activity_scale(self, assignment) -> float:
        """Magnitude of the row's terms, for relative tolerance checks.

        Rows mixing coefficients of very different magnitudes (cardinality
        deltas reach 1e12 in the join-ordering MILP) cannot be checked with
        an absolute tolerance: an LP solver's perfectly acceptable residual
        would register as a violation.
        """
        scale = 1.0 + abs(self.rhs)
        for index, coefficient in self.expr.coefficients.items():
            scale = max(scale, abs(coefficient * assignment[index]))
        return scale

    def satisfied_by(self, assignment, tolerance: float = 1e-6) -> bool:
        """Whether ``assignment`` satisfies the constraint within a
        row-relative tolerance."""
        lhs = self.expr.value(assignment)
        slack = tolerance * self.activity_scale(assignment)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + slack
        if self.sense is Sense.GE:
            return lhs >= self.rhs - slack
        return abs(lhs - self.rhs) <= slack

    def violation(self, assignment) -> float:
        """Amount by which ``assignment`` violates the constraint (>= 0)."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)
