"""Cutting planes for the branch-and-bound solver (cut-and-branch).

Commercial solvers owe much of their factor-450,000 speedup (the paper's
Section 1 argument for mapping join ordering onto MILP) to cutting planes.
This module implements the two classic families that can be separated from
the constraint matrix and a fractional LP point alone — no simplex tableau
required, so they work with any LP backend:

* **Knapsack cover cuts.**  For a row ``sum_i a_i x_i <= b`` over binary
  variables, any *cover* ``C`` (a subset whose coefficients sum to more than
  ``b``) yields the valid inequality ``sum_{i in C} x_i <= |C| - 1``.
  Negative coefficients are handled by complementing variables.
* **Clique cuts.**  Rows such as ``x_i + x_j <= 1`` and the formulation's
  many ``sum_t tii[t,j] = 1`` rows induce a *conflict graph* in which at most
  one variable per clique can be 1.  A clique spanning several original rows
  yields ``sum_{i in K} x_i <= 1``, which can be strictly stronger than
  every single row (e.g. three pairwise conflicts admit the fractional point
  ``(0.5, 0.5, 0.5)``; the triangle clique cut removes it).

Cuts are separated at the root node and appended to the standard form, after
which branch-and-bound proceeds on the tightened relaxation (cut-and-branch,
the scheme used by early Gurobi/CPLEX versions).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.milp.constraints import Sense
from repro.milp.model import Model
from repro.milp.standard_form import StandardForm, extend_form_with_rows
from repro.milp.variables import VarType

#: Minimum violation for a cut to be worth adding.
VIOLATION_TOL = 1e-4

#: Fractional values below this are treated as zero during separation.
ZERO_TOL = 1e-6


def _is_unit(value: float) -> bool:
    """Whether a model coefficient is (numerically) one."""
    return abs(value - 1.0) <= ZERO_TOL


@dataclass(frozen=True)
class Cut:
    """A globally valid inequality ``sum coefficients[i] * x_i <= rhs``.

    Attributes
    ----------
    coefficients:
        Sparse row, keyed by variable index.
    rhs:
        Right-hand side of the ``<=`` inequality.
    name:
        Identifier recording the family and separation round.
    """

    coefficients: dict[int, float]
    rhs: float
    name: str

    def violation(self, x: Sequence[float]) -> float:
        """Amount by which ``x`` violates the cut (negative means slack)."""
        activity = sum(
            coefficient * x[index]
            for index, coefficient in self.coefficients.items()
        )
        return activity - self.rhs

    def is_violated_by(self, x: Sequence[float], tol: float = VIOLATION_TOL) -> bool:
        """Whether ``x`` violates the cut by more than ``tol``."""
        return self.violation(x) > tol


@dataclass(frozen=True)
class _KnapsackRow:
    """One candidate row for cover separation, in complemented form.

    All coefficients are positive; ``complemented[k]`` records whether the
    k-th item stands for ``1 - x`` instead of ``x``.
    """

    indices: tuple[int, ...]
    weights: tuple[float, ...]
    complemented: tuple[bool, ...]
    capacity: float
    source: str


class CutGenerator:
    """Separates cover and clique cuts for one model.

    The generator inspects the model's rows once at construction; separation
    against successive fractional points is then cheap, which matters because
    cut-and-branch runs several rounds at the root.

    Parameters
    ----------
    model:
        The MILP whose structure to mine for cuts.
    max_clique_size:
        Cap on greedy clique extension (the join-ordering conflict graph has
        hub vertices; uncapped cliques would cost more than they prune).
    """

    def __init__(self, model: Model, max_clique_size: int = 64) -> None:
        self.model = model
        self.max_clique_size = max_clique_size
        self._binary = np.array(
            [variable.vtype is VarType.BINARY for variable in model.variables]
        )
        self._knapsacks = self._collect_knapsack_rows()
        self._conflicts = self._build_conflict_graph()
        self._counter = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def separate(
        self, x: Sequence[float], max_cuts: int = 50
    ) -> list[Cut]:
        """Return violated cuts at the fractional point ``x``.

        Cuts are deduplicated by their support and sorted by decreasing
        violation, then truncated to ``max_cuts``.
        """
        candidates = list(self.separate_cover_cuts(x))
        candidates.extend(self.separate_clique_cuts(x))
        unique: dict[tuple, Cut] = {}
        for cut in candidates:
            key = tuple(sorted(cut.coefficients.items())) + (round(cut.rhs, 9),)
            if key not in unique:
                unique[key] = cut
        ranked = sorted(
            unique.values(), key=lambda cut: -cut.violation(x)
        )
        return ranked[:max_cuts]

    def separate_cover_cuts(self, x: Sequence[float]) -> Iterable[Cut]:
        """Greedy separation of minimal cover cuts from knapsack rows."""
        cuts: list[Cut] = []
        for row in self._knapsacks:
            cut = self._separate_cover(row, x)
            if cut is not None and cut.is_violated_by(x):
                cuts.append(cut)
        return cuts

    def separate_clique_cuts(self, x: Sequence[float]) -> Iterable[Cut]:
        """Greedy separation of violated clique cuts from the conflict graph."""
        graph = self._conflicts
        if graph.number_of_edges() == 0:
            return []
        cuts: list[Cut] = []
        seen_cliques: set[frozenset[int]] = set()
        # Seeds: fractional vertices in decreasing x* order.
        seeds = sorted(
            (v for v in graph.nodes if x[v] > ZERO_TOL),
            key=lambda v: -x[v],
        )
        for seed in seeds:
            clique = self._grow_clique(seed, x)
            if len(clique) < 3:
                # Two-vertex cliques duplicate existing rows.
                continue
            key = frozenset(clique)
            if key in seen_cliques:
                continue
            seen_cliques.add(key)
            weight = sum(x[v] for v in clique)
            if weight > 1.0 + VIOLATION_TOL:
                cuts.append(
                    Cut(
                        coefficients={v: 1.0 for v in clique},
                        rhs=1.0,
                        name=self._next_name("clique"),
                    )
                )
        return cuts

    # ------------------------------------------------------------------
    # Row mining
    # ------------------------------------------------------------------

    def _collect_knapsack_rows(self) -> list[_KnapsackRow]:
        """Rows eligible for cover separation, complemented to positive form."""
        rows: list[_KnapsackRow] = []
        for constraint in self.model.constraints:
            if constraint.sense is Sense.EQ:
                continue
            sign = 1.0 if constraint.sense is Sense.LE else -1.0
            items = list(constraint.expr.coefficients.items())
            if len(items) < 3:
                continue
            if not all(self._binary[index] for index, _ in items):
                continue
            capacity = sign * constraint.rhs
            indices: list[int] = []
            weights: list[float] = []
            complemented: list[bool] = []
            for index, coefficient in items:
                weight = sign * coefficient
                if weight > 0:
                    indices.append(index)
                    weights.append(weight)
                    complemented.append(False)
                elif weight < 0:
                    # a*x with a<0 becomes |a|*(1-x) - |a|.
                    indices.append(index)
                    weights.append(-weight)
                    complemented.append(True)
                    capacity += -weight
            if capacity <= 0 or not indices:
                continue
            # A row no subset can overflow yields no covers.
            if sum(weights) <= capacity:
                continue
            rows.append(
                _KnapsackRow(
                    indices=tuple(indices),
                    weights=tuple(weights),
                    complemented=tuple(complemented),
                    capacity=capacity,
                    source=constraint.name,
                )
            )
        return rows

    def _build_conflict_graph(self) -> nx.Graph:
        """Conflict edges between binary variables.

        A row ``sum_{i in S} x_i <= 1`` (or ``= 1``) over binaries makes every
        pair in ``S`` conflicting.
        """
        graph = nx.Graph()
        for constraint in self.model.constraints:
            items = list(constraint.expr.coefficients.items())
            if len(items) < 2:
                continue
            if not all(
                self._binary[index] and _is_unit(coefficient)
                for index, coefficient in items
            ):
                continue
            is_set_packing = (
                constraint.sense is Sense.LE and _is_unit(constraint.rhs)
            )
            is_partitioning = (
                constraint.sense is Sense.EQ and _is_unit(constraint.rhs)
            )
            if not (is_set_packing or is_partitioning):
                continue
            members = [index for index, _ in items]
            for position, u in enumerate(members):
                for v in members[position + 1:]:
                    graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------
    # Separation internals
    # ------------------------------------------------------------------

    def _separate_cover(
        self, row: _KnapsackRow, x: Sequence[float]
    ) -> Cut | None:
        """Greedy minimal cover for one knapsack row.

        A cover ``C`` yields a violated cut iff ``sum_{C}(1 - z*) < 1``
        where ``z*`` are the (complemented) LP values, so we greedily pick
        items with the smallest ``1 - z*`` per unit of remaining need.
        """
        values = [
            1.0 - x[index] if comp else x[index]
            for index, comp in zip(row.indices, row.complemented)
        ]
        order = sorted(
            range(len(row.indices)),
            key=lambda k: (1.0 - values[k]) / row.weights[k],
        )
        cover: list[int] = []
        total_weight = 0.0
        for k in order:
            cover.append(k)
            total_weight += row.weights[k]
            if total_weight > row.capacity:
                break
        if total_weight <= row.capacity:
            return None
        # Minimalize: drop items (largest 1 - z* first) while still a cover.
        for k in sorted(cover, key=lambda k: -(1.0 - values[k])):
            if total_weight - row.weights[k] > row.capacity:
                cover.remove(k)
                total_weight -= row.weights[k]
        slack = sum(1.0 - values[k] for k in cover)
        if slack >= 1.0 - VIOLATION_TOL:
            return None
        # Map the cover inequality back through the complementation.
        coefficients: dict[int, float] = {}
        rhs = float(len(cover) - 1)
        for k in cover:
            index = row.indices[k]
            if row.complemented[k]:
                coefficients[index] = coefficients.get(index, 0.0) - 1.0
                rhs -= 1.0
            else:
                coefficients[index] = coefficients.get(index, 0.0) + 1.0
        return Cut(
            coefficients=coefficients,
            rhs=rhs,
            name=self._next_name(f"cover[{row.source}]"),
        )

    def _grow_clique(self, seed: int, x: Sequence[float]) -> list[int]:
        """Greedily extend ``seed`` to a heavy clique (by x* weight)."""
        graph = self._conflicts
        clique = [seed]
        candidates = sorted(
            (v for v in graph.neighbors(seed) if x[v] > ZERO_TOL),
            key=lambda v: -x[v],
        )
        for vertex in candidates:
            if len(clique) >= self.max_clique_size:
                break
            if all(graph.has_edge(vertex, member) for member in clique):
                clique.append(vertex)
        return clique

    def _next_name(self, family: str) -> str:
        self._counter += 1
        return f"cut_{family}_{self._counter}"


# ----------------------------------------------------------------------
# Applying cuts to a standard form
# ----------------------------------------------------------------------


def cuts_to_rows(
    cuts: Sequence[Cut], num_variables: int
) -> tuple[np.ndarray, np.ndarray]:
    """Densify ``cuts`` into ``(a, b)`` row arrays for ``<=`` appending.

    This is the payload :meth:`~repro.milp.lp_backend.LPSession.add_rows`
    takes: the cut loop feeds it to the live session (which extends its
    basis with the new slack columns and stays warm) while
    :func:`append_cuts` mirrors the same rows onto the standard form.
    """
    a = np.zeros((len(cuts), num_variables))
    b = np.empty(len(cuts))
    for row, cut in enumerate(cuts):
        for index, coefficient in cut.coefficients.items():
            a[row, index] = coefficient
        b[row] = cut.rhs
    return a, b


def append_cuts(form: StandardForm, cuts: Sequence[Cut]) -> StandardForm:
    """Return a new standard form with ``cuts`` appended as ``<=`` rows.

    The original form is unchanged; branch-and-bound mirrors the session's
    appended rows onto the returned form so fallback solves and later
    node LPs see the tightened relaxation.
    """
    if not cuts:
        return form
    a, b = cuts_to_rows(cuts, form.num_variables)
    return extend_form_with_rows(form, a, b)


def check_cut_validity(
    model: Model, cut: Cut, assignments: Iterable[Sequence[float]]
) -> list[int]:
    """Indices of integer-feasible ``assignments`` the cut wrongly removes.

    Test helper: a correct cut must be satisfied by every integer-feasible
    point of the model, so the returned list should always be empty.
    """
    removed: list[int] = []
    for position, assignment in enumerate(assignments):
        if not model.is_feasible(assignment):
            continue
        if cut.violation(assignment) > 1e-9:
            removed.append(position)
    return removed
