"""Solution objects returned by the MILP solver."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Final status of a branch-and-bound run."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"  # stopped early without an incumbent

    @property
    def has_solution(self) -> bool:
        """Whether a usable assignment is available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass(frozen=True, slots=True)
class IncumbentEvent:
    """One anytime event: a new incumbent or an improved bound.

    Attributes
    ----------
    time:
        Seconds since the solve started.
    objective:
        Objective of the best incumbent at that moment (``inf`` if none).
    bound:
        Best proven lower bound at that moment.
    kind:
        ``"incumbent"`` or ``"bound"``.
    """

    time: float
    objective: float
    bound: float
    kind: str

    @property
    def gap(self) -> float:
        """Relative optimality gap at this event (``inf`` if no incumbent)."""
        return relative_gap(self.objective, self.bound)


def relative_gap(objective: float, bound: float) -> float:
    """Relative gap ``(obj - bound) / max(|bound|, eps)``; 0 when closed."""
    if math.isinf(objective):
        return math.inf
    if math.isinf(bound):
        return math.inf
    denominator = max(abs(bound), 1e-10)
    return max(0.0, (objective - bound) / denominator)


def optimality_factor(objective: float, bound: float) -> float:
    """Guaranteed ``objective / bound`` factor (the paper's Figure 2 metric).

    ``inf`` without an incumbent or a useful positive bound; 1.0 at
    proven optimality.  Shared by every result type that reports the
    metric (MILP solutions, portfolio outcomes, unified plan results).
    """
    if math.isinf(objective):
        return math.inf
    if bound <= 0 or math.isinf(bound):
        # A zero/negative bound proves nothing useful for positive cost
        # objectives; report the weakest finite statement.
        return math.inf if objective > 0 else 1.0
    return max(1.0, objective / bound)


@dataclass
class MILPSolution:
    """Result of a branch-and-bound solve.

    Attributes
    ----------
    status:
        Final :class:`SolveStatus`.
    objective:
        Objective of the returned assignment (``inf`` without incumbent).
    best_bound:
        Best proven lower bound on the optimal objective.
    x:
        Assignment vector (``None`` without incumbent).
    values:
        Name-keyed view of the assignment (``{}`` without incumbent).
    node_count:
        Number of branch-and-bound nodes processed.
    solve_time:
        Wall-clock seconds spent.
    events:
        Chronological anytime events (incumbents and bound improvements).
    lp_solves, lp_pivots, lp_time:
        LP relaxation accounting: number of backend calls, total simplex
        pivots across them (0 for backends that do not report pivots),
        and wall-clock seconds inside the LP backend.  The benchmark
        trajectory (``BENCH_milp.json``) tracks these across PRs.
    session_stats:
        Reuse accounting of the solver's LP session
        (:meth:`~repro.milp.lp_backend.SessionStats.as_dict`: solves,
        warm ratio, rows appended, refactorizations); ``None`` when the
        solve never created a session (e.g. presolve infeasibility).
        Counts only the primary session's work — per-node HiGHS
        *fallback* solves appear in ``lp_solves``/``lp_pivots`` but not
        here, so the two sets of counters can differ on numerically
        hard models.
    """

    status: SolveStatus
    objective: float
    best_bound: float
    x: np.ndarray | None = None
    values: dict[str, float] = field(default_factory=dict)
    node_count: int = 0
    solve_time: float = 0.0
    events: list[IncumbentEvent] = field(default_factory=list)
    lp_solves: int = 0
    lp_pivots: int = 0
    lp_time: float = 0.0
    session_stats: dict | None = None

    @property
    def gap(self) -> float:
        """Final relative optimality gap."""
        return relative_gap(self.objective, self.best_bound)

    @property
    def optimality_factor(self) -> float:
        """Guaranteed factor ``objective / bound`` (paper's Figure 2 metric).

        The paper compares algorithms on the factor by which the current
        plan's cost provably exceeds the optimum at most.  ``inf`` when no
        incumbent exists yet; 1.0 at proven optimality.
        """
        return optimality_factor(self.objective, self.best_bound)

    def value(self, name: str, default: float = 0.0) -> float:
        """Value of the named variable in the incumbent."""
        return self.values.get(name, default)
