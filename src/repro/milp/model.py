"""MILP model container: variables, constraints, objective.

The :class:`Model` plays the role that a ``gurobipy.Model`` plays in the
paper's prototype: formulation code adds variables and constraints, then a
solver (:mod:`repro.milp.branch_and_bound`) minimizes the objective.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.milp.constraints import Constraint, Sense
from repro.milp.expr import LinExpr
from repro.milp.variables import Variable, VarType

#: Default feasibility tolerance used when checking assignments.
FEASIBILITY_TOL = 1e-6


class Model:
    """A mixed integer linear program ``min c'x  s.t.  Ax (<=,=,>=) b``.

    Variables and constraints must carry unique names; this is what lets
    solution objects be keyed by meaningful names and makes formulation bugs
    visible early.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._variable_names: dict[str, int] = {}
        self._constraint_names: set[str] = set()

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
        priority: int = 0,
    ) -> Variable:
        """Create, register and return a new decision variable."""
        if name in self._variable_names:
            raise ModelError(f"duplicate variable name {name!r}")
        variable = Variable(
            len(self.variables), name, float(lb), float(ub), vtype, priority
        )
        self.variables.append(variable)
        self._variable_names[name] = variable.index
        return variable

    def add_binary(self, name: str, priority: int = 0) -> Variable:
        """Create a binary variable with bounds ``[0, 1]``."""
        return self.add_var(name, 0.0, 1.0, VarType.BINARY, priority)

    def add_continuous(
        self, name: str, lb: float = 0.0, ub: float = math.inf
    ) -> Variable:
        """Create a continuous variable."""
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def var_by_name(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self.variables[self._variable_names[name]]
        except KeyError:
            raise ModelError(f"model has no variable named {name!r}") from None

    def has_var(self, name: str) -> bool:
        """Whether a variable with this name exists."""
        return name in self._variable_names

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    def add_constraint(
        self, expr, sense: Sense, rhs: float, name: str
    ) -> Constraint:
        """Add a constraint ``expr (sense) rhs``.

        Constants inside ``expr`` are folded into the right-hand side, and
        right-hand sides built from expressions are supported by passing the
        difference: ``add_le(lhs - rhs_expr, 0.0)``.
        """
        if name in self._constraint_names:
            raise ModelError(f"duplicate constraint name {name!r}")
        expr = LinExpr.coerce(expr)
        folded_rhs = float(rhs) - expr.constant
        normalized = LinExpr(dict(expr.coefficients), 0.0)
        constraint = Constraint(name, normalized, sense, folded_rhs)
        self.constraints.append(constraint)
        self._constraint_names.add(name)
        return constraint

    def add_le(self, expr, rhs: float, name: str) -> Constraint:
        """Add ``expr <= rhs``."""
        return self.add_constraint(expr, Sense.LE, rhs, name)

    def add_ge(self, expr, rhs: float, name: str) -> Constraint:
        """Add ``expr >= rhs``."""
        return self.add_constraint(expr, Sense.GE, rhs, name)

    def add_eq(self, expr, rhs: float, name: str) -> Constraint:
        """Add ``expr == rhs``."""
        return self.add_constraint(expr, Sense.EQ, rhs, name)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------

    def set_objective(self, expr) -> None:
        """Set the (minimization) objective."""
        self.objective = LinExpr.coerce(expr).copy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Total number of decision variables."""
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        """Total number of linear constraints."""
        return len(self.constraints)

    @property
    def num_binary(self) -> int:
        """Number of binary variables."""
        return sum(
            1 for variable in self.variables if variable.vtype is VarType.BINARY
        )

    @property
    def num_integral(self) -> int:
        """Number of integer-restricted variables (binary + integer)."""
        return sum(1 for variable in self.variables if variable.is_integral)

    @property
    def integral_indices(self) -> list[int]:
        """Indices of integer-restricted variables."""
        return [
            variable.index
            for variable in self.variables
            if variable.is_integral
        ]

    def bounds_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bound vectors as numpy arrays."""
        lb = np.array([variable.lb for variable in self.variables])
        ub = np.array([variable.ub for variable in self.variables])
        return lb, ub

    # ------------------------------------------------------------------
    # Evaluation / feasibility
    # ------------------------------------------------------------------

    def objective_value(self, assignment: Sequence[float]) -> float:
        """Evaluate the objective under a full assignment vector."""
        return self.objective.value(assignment)

    def assignment_from_names(
        self, values: dict[str, float], default: float = 0.0
    ) -> np.ndarray:
        """Build a dense assignment vector from a name-keyed dict.

        Unknown names raise; unassigned variables take ``default``.
        """
        assignment = np.full(self.num_variables, float(default))
        for name, value in values.items():
            assignment[self.var_by_name(name).index] = float(value)
        return assignment

    def check_feasible(
        self,
        assignment: Sequence[float],
        tolerance: float = FEASIBILITY_TOL,
    ) -> list[str]:
        """Return the names of violated constraints/bounds (empty if feasible).

        Integer restrictions are checked as well.
        """
        violations: list[str] = []
        for variable in self.variables:
            value = assignment[variable.index]
            if value < variable.lb - tolerance or value > variable.ub + tolerance:
                violations.append(f"bound:{variable.name}")
            if variable.is_integral and abs(value - round(value)) > tolerance:
                violations.append(f"integrality:{variable.name}")
        for constraint in self.constraints:
            if not constraint.satisfied_by(assignment, tolerance):
                violations.append(constraint.name)
        return violations

    def is_feasible(
        self,
        assignment: Sequence[float],
        tolerance: float = FEASIBILITY_TOL,
    ) -> bool:
        """Whether the assignment satisfies all bounds and constraints."""
        return not self.check_feasible(assignment, tolerance)

    def stats(self) -> dict[str, int]:
        """Summary statistics (used by the Figure 1 experiment)."""
        return {
            "variables": self.num_variables,
            "binary_variables": self.num_binary,
            "continuous_variables": self.num_variables - self.num_integral,
            "constraints": self.num_constraints,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )


def names_of(variables: Iterable[Variable]) -> list[str]:
    """Names of an iterable of variables (test helper)."""
    return [variable.name for variable in variables]
