"""Self-contained revised simplex with bounded variables and warm starts.

This backend exists so the MILP substrate is complete without any external
solver: it is used as a cross-check against the HiGHS backend in tests and
as the default node-LP engine for small-to-medium models, where warm
starting beats scipy's per-call overhead.  The iteration machinery follows
the design used by open-source LP codes:

* **Bounded variables are handled natively.**  Every column carries a
  ``[lb, ub]`` interval; a nonbasic column rests *at* its lower or upper
  bound (status ``AT_LOWER``/``AT_UPPER``) and never materializes an
  explicit ``x <= ub`` row.  Columns with no finite bound on the side
  their reduced cost asks for are parked with status ``FREE`` (the
  revised-form equivalent of the textbook ``x = x⁺ − x⁻`` split: the
  column may move in both directions, without doubling the column count).
  ``-inf`` lower bounds are therefore supported, not rejected.
* **Revised form with Forrest–Tomlin updates.**  Only the basis matrix
  ``B`` is factorized (dense LU via ``scipy.linalg.lu_factor``); each
  pivot updates the stored upper factor in place — a Forrest–Tomlin
  column replacement: spike the entering column into ``U``, cyclically
  permute the pivot row/column to the border, and eliminate the row
  spike with one compact row-eta (:class:`_FTFactor`).  FTRAN/BTRAN
  therefore stay two triangular solves plus ``O(k·n)`` for ``k``
  accumulated updates, instead of degrading along a growing
  product-form eta chain; a stability trigger (vanishing updated
  diagonal or exploding eta multipliers) forces an early
  refactorization, and the update chain is capped by the env-tunable
  ``REPRO_SIMPLEX_REFACTOR_INTERVAL``.  The factorization survives
  *across* solves of one session: a warm re-solve that starts from the
  retained basis adopts the live factor instead of paying a fresh
  ``O(n³)`` factorization per node.
* **Devex pricing.**  The primal phase prices with reference-framework
  Devex weights by default (``d²/γ`` scoring, weights updated from the
  pivot row, framework reset on overflow), which takes far fewer pivots
  than Dantzig pricing on the degenerate join-ordering LPs.  Dantzig
  and Bland remain available behind the ``pricing=`` knob
  (:data:`~repro.milp.lp_backend.PRICING_RULES`), and a run of
  degenerate pivots still engages Bland's rule as the anti-cycling
  escape hatch under any pricing rule.
* **Harris ratio tests.**  Both phases use two-pass Harris ratio tests:
  pass one computes the maximum step under tolerance-relaxed bounds,
  pass two picks the largest pivot element among the candidates whose
  exact ratio fits under it — trading a bounded, tolerance-sized bound
  violation for much better-conditioned pivots on degenerate models.
  The dual phase additionally runs the **bound-flip ratio test**
  (BFRT): breakpoints belonging to boxed columns are consumed by
  flipping those columns to their opposite bound (one batched FTRAN
  repairs ``x_B``), so a boundary-infeasible LP converges in a handful
  of long dual steps instead of grinding through one breakpoint per
  pivot and exhausting its pivot budget.
* **Dual simplex + warm starts.**  The primary surface is
  :class:`SimplexSession` (via ``create_session``): the session retains
  the optimal basis between solves, so a branch-and-bound bound change
  re-optimizes with a handful of dual-simplex pivots (zero when the old
  solution is still feasible) instead of a full cold solve, and
  ``add_rows`` extends the retained basis with the appended rows' slack
  columns so the cutting-plane loop stays warm too.  The deprecated
  one-shot ``solve`` still accepts an explicit
  :class:`~repro.milp.lp_backend.SimplexBasis`.  Cold solves start from
  the all-slack basis, which the same dual phase drives to primal
  feasibility before a primal-simplex polish proves optimality or
  unboundedness.

The solve pipeline is ``install basis -> dual phase (restore primal
feasibility) -> primal phase (restore dual feasibility)``; either phase
exits immediately when it has nothing to do.  ``INFEASIBLE`` is detected
by the dual phase (no eligible entering column for a violated row, with
an independent Farkas-style certificate), ``UNBOUNDED`` by the primal
phase (no blocking ratio).
"""

from __future__ import annotations

import math
import time
import warnings

import numpy as np
from scipy.linalg import (
    LinAlgError,
    LinAlgWarning,
    lu_factor,
)
from scipy.linalg.lapack import dtrtrs as _dtrtrs

from repro import faultinject, obs
from repro.exceptions import SolverError
from repro.milp.lp_backend import (
    LPBackend,
    LPResult,
    LPSession,
    LPStatus,
    SimplexBasis,
    simplex_pricing,
    simplex_refactor_interval,
    validate_pricing,
)
from repro.milp.standard_form import StandardForm

#: Nonbasic/basic column statuses (stored in ``SimplexBasis.status``).
BASIC, AT_LOWER, AT_UPPER, FREE = 0, 1, 2, 3

_FEAS_TOL = 1e-7
_DUAL_TOL = 1e-7
_PIVOT_TOL = 1e-8
#: FTRAN/BTRAN disagreement (relative to the involved magnitudes) that
#: triggers a refactorization.
_CONSISTENCY_TOL = 1e-9
_MAX_ITERATIONS = 20000
#: Absolute floor for the per-column polish tolerances: converting the
#: raw-space tolerance through extreme equilibration scales can ask for
#: thresholds below double-precision noise; anything tighter than this
#: is unverifiable and would just churn pivots.
_POLISH_TOL_FLOOR = 1e-12
#: Consecutive (near-)degenerate pivots before Bland's rule engages.
_BLAND_SWITCH = 30
#: Per-solve phase buckets accumulated under
#: ``REPRO_TRACE_SIMPLEX_PHASES`` (surfaced via
#: ``SessionStats.notes["phase_times"]``).
_PHASE_KEYS = ("pricing", "btran", "ratio_test", "ftran")
#: Forrest–Tomlin stability gates: an updated diagonal smaller than
#: this (relative to the spike) or an eta multiplier larger than the
#: growth cap marks the update as untrustworthy; the caller
#: refactorizes instead.
_FT_DIAG_TOL = 1e-11
_FT_GROWTH_CAP = 1e8
#: Devex reference-framework reset threshold: weights beyond this have
#: drifted too far from the framework for the scores to mean anything.
_DEVEX_RESET = 1e8
#: A live factor is only adopted across solves while it carries at most
#: this many Forrest–Tomlin updates.  Measured on the big-M
#: join-ordering forms: older chains carry enough accumulated rounding
#: that adopting them trades the saved refactorization for numerical
#: failures (ERROR fallbacks) a fresh LU would have avoided.
_LIVE_ADOPT_MAX_UPDATES = 8


class SimplexSession(LPSession):
    """Warm stateful session of the revised simplex.

    The session owns the equilibrated row matrix (a private
    :class:`_Workspace`, grown in place by :meth:`add_rows`), the
    retained optimal basis, the live Forrest–Tomlin factorization of
    that basis (adopted by the next solve, so sequential warm solves
    skip refactorization entirely), and a pristine-factor cache keyed
    by basis — so consecutive solves that revisit a basis (both
    children of a branch-and-bound node, dive steps) skip the dense
    factorization.  ``add_rows`` extends the retained basis with the
    new rows' slack columns: the extended basis matrix is block
    lower-triangular over the old basis and an identity, hence
    nonsingular, and the new duals are zero, so dual feasibility is
    preserved exactly and the next solve is a short dual-simplex run
    that drives the violated cut rows feasible.

    ``pricing`` and ``refactor_interval`` default to the process-wide
    knobs (``REPRO_SIMPLEX_PRICING`` /
    ``REPRO_SIMPLEX_REFACTOR_INTERVAL``, see
    :mod:`repro.milp.lp_backend`).
    """

    backend_name = "revised-simplex"
    supports_warm_start = True

    def __init__(
        self,
        form: StandardForm,
        pricing: str | None = None,
        refactor_interval: int | None = None,
    ) -> None:
        super().__init__(form)
        self._pricing = (
            validate_pricing(pricing) if pricing else simplex_pricing()
        )
        if refactor_interval is None:
            self._refactor_interval = simplex_refactor_interval()
        elif int(refactor_interval) < 1:
            # Same contract as the env knob: silently accepting 0 or a
            # negative would disable FT updates (every pivot paying a
            # full refactorization) without any signal.
            raise SolverError(
                f"refactor_interval must be >= 1, got {refactor_interval}"
            )
        else:
            self._refactor_interval = int(refactor_interval)
        self._ws = _Workspace(form)
        self._lu_cache: dict = {}
        self._lb = np.asarray(form.lb, dtype=float).copy()
        self._ub = np.asarray(form.ub, dtype=float).copy()
        self._basis: SimplexBasis | None = None
        #: Live factorization of the retained basis: ``(factor,
        #: basic.tobytes())`` from the last OPTIMAL solve, adopted by
        #: the next solve that re-installs exactly that basis.
        self._live: "tuple[_FTFactor, bytes] | None" = None
        #: Opt-in per-phase wall-time accumulation
        #: (``REPRO_TRACE_SIMPLEX_PHASES``): resolved once per session,
        #: so the pivot loop's only disabled-path cost is a None check.
        self._trace_phases = obs.simplex_phases_enabled()
        self.stats.notes["pricing"] = self._pricing

    def set_bounds(self, lb: np.ndarray, ub: np.ndarray) -> None:
        self._lb, self._ub = self._validated_bounds(lb, ub)

    def add_rows(
        self,
        a: np.ndarray,
        b: np.ndarray,
        form: StandardForm | None = None,
    ) -> None:
        # ``form`` (a pre-built extended StandardForm) is a cold-session
        # affordance; the warm session grows its workspace directly.
        a, b = self._validated_rows(a, b)
        k = a.shape[0]
        if k == 0:
            return
        old_columns = self._ws.num_columns
        self._ws.append_le_rows(a, b)
        if self._basis is not None:
            # Extend the basis with the new slack columns (basic).
            new_slacks = np.arange(
                old_columns, old_columns + k, dtype=np.int64
            )
            basic = np.concatenate([self._basis.basic, new_slacks])
            status = np.concatenate(
                [self._basis.status, np.full(k, BASIC, dtype=np.int8)]
            )
            self._basis = SimplexBasis(basic, status, self._ws.signature)
        # Old factorizations have the wrong dimension now.
        self._lu_cache.clear()
        self._live = None
        self.stats.rows_appended += k

    def export_basis(self) -> SimplexBasis | None:
        return self._basis

    def install_basis(self, basis: SimplexBasis | None) -> bool:
        if basis is None:
            self._basis = None
            return True
        fault = faultinject.check(faultinject.INSTALL_BASIS)
        if fault is not None and fault.kind == "corrupt":
            basis = faultinject.corrupt_basis(
                basis, faultinject.active().rng_for(fault)
            )
        validated = self._validated_snapshot(basis)
        if validated is None:
            # Corrupt/foreign snapshots are refused here, not trusted
            # until they fail mid-solve: the caller falls back to a
            # clean cold start and the retained state stays untouched.
            return False
        self._basis = validated
        self.stats.bases_installed += 1
        return True

    def _validated_snapshot(
        self, basis: SimplexBasis
    ) -> SimplexBasis | None:
        """Structural validation of an externally supplied basis.

        Snapshots cross trust boundaries (the serving layer's
        :class:`~repro.milp.lp_backend.BasisExchangePool`, cached plans)
        and can rot: truncated arrays, indices past the column count,
        duplicated basics, NaN-poisoned or out-of-range status codes.
        Every check here is O(n) against arrays already in hand — far
        cheaper than the refactorization failure a bad snapshot causes
        ten pivots into a solve.  Returns the snapshot with arrays
        normalized to the solver's integer dtypes, or ``None`` when it
        is unusable.
        """
        ws = self._ws
        if basis.signature != ws.signature:
            return None
        basic = np.asarray(basis.basic)
        status = np.asarray(basis.status)
        if basic.ndim != 1 or status.ndim != 1:
            return None
        if basic.shape[0] != ws.num_rows:
            return None
        if status.shape[0] != ws.num_columns:
            return None
        # Float-typed arrays smuggle NaN/inf past integer comparisons;
        # require finiteness before trusting any value check.
        if not np.issubdtype(basic.dtype, np.integer):
            if not np.all(np.isfinite(basic)):
                return None
        if not np.issubdtype(status.dtype, np.integer):
            if not np.all(np.isfinite(status)):
                return None
        basic = basic.astype(np.int64, copy=False)
        status = status.astype(np.int8, copy=False)
        if basic.size and (
            basic.min() < 0 or basic.max() >= ws.num_columns
        ):
            return None
        if np.unique(basic).size != basic.size:
            return None
        if status.size and (status.min() < BASIC or status.max() > FREE):
            return None
        return SimplexBasis(basic, status, basis.signature)

    def solve(self) -> LPResult:
        ws = self._ws
        self.stats.solves += 1
        fault = faultinject.check(faultinject.SIMPLEX_SOLVE)
        if fault is not None:
            if fault.kind == "slow":
                time.sleep(fault.delay)
            elif fault.kind == "exception":
                raise SolverError(f"injected: {fault.message}")
            elif fault.kind == "error":
                return LPResult(
                    LPStatus.ERROR, None, math.inf,
                    message=f"injected: {fault.message}",
                )
        if np.any(self._lb > self._ub + _FEAS_TOL):
            return LPResult(LPStatus.INFEASIBLE, None, math.inf, "lb > ub")
        if ws.num_rows == 0:
            result = _solve_unconstrained(self.form, self._lb, self._ub, ws)
            self._basis = result.basis
            return result
        run = _SimplexRun(
            ws,
            self._lb,
            self._ub,
            self._lu_cache,
            pricing=self._pricing,
            refactor_interval=self._refactor_interval,
            live=self._live,
            cancel_token=self.cancel_token,
            phase_times=(
                dict.fromkeys(_PHASE_KEYS, 0.0)
                if self._trace_phases else None
            ),
        )
        with obs.span("lp.solve", backend=self.backend_name) as lp_span:
            status = run.optimize(self._basis)
            lp_span.annotate(
                status=status.name,
                pivots=run.pivots,
                refactorizations=run.refactorizations,
                bound_flips=run.bound_flips,
                warm=run.installed_warm,
            )
        if run.installed_warm:
            self.stats.warm_solves += 1
        self.stats.pivots += run.pivots
        self.stats.refactorizations += run.refactorizations
        self.stats.bound_flips += run.bound_flips
        if run.phase_times is not None:
            totals = self.stats.notes.setdefault(
                "phase_times", dict.fromkeys(_PHASE_KEYS, 0.0)
            )
            for phase, seconds in run.phase_times.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        if status is LPStatus.OPTIMAL:
            x = run.x[: ws.num_structural] * ws.col_scale
            objective = float(self.form.c @ x) + self.form.c0
            self._basis = run.export_basis()
            self._live = run.export_live()
            return LPResult(
                LPStatus.OPTIMAL,
                x,
                objective,
                basis=self._basis,
                iterations=run.pivots,
            )
        # A failed run only ever mutated its own snapshot of the live
        # factor, so the retained (basis, factor) pair is still valid
        # for the next solve that re-installs the retained basis.
        bound = -math.inf if status is LPStatus.UNBOUNDED else math.inf
        return LPResult(status, None, bound, iterations=run.pivots)

    def close(self) -> None:
        self._lu_cache.clear()
        self._basis = None
        self._live = None


class RevisedSimplexBackend(LPBackend):
    """Revised bounded-variable simplex backend (see module docstring).

    ``create_session`` returns the warm :class:`SimplexSession`; the
    deprecated one-shot ``solve`` is a shim over a per-form session kept
    alive between calls, so its workspace and factorization caches
    survive across node solves exactly as the old implementation's did.
    ``pricing``/``refactor_interval`` override the process-wide env
    defaults for every session the backend creates (``None`` keeps the
    env-resolved default).
    """

    name = "revised-simplex"
    supports_warm_start = True

    def __init__(
        self,
        pricing: str | None = None,
        refactor_interval: int | None = None,
    ) -> None:
        self.pricing = validate_pricing(pricing) if pricing else None
        self.refactor_interval = refactor_interval
        # One live session per form; keyed by id() with a strong
        # reference kept (session.form), so ids cannot be recycled.
        self._sessions: dict[int, SimplexSession] = {}

    def create_session(self, form: StandardForm) -> SimplexSession:
        return SimplexSession(
            form,
            pricing=self.pricing,
            refactor_interval=self.refactor_interval,
        )

    def solve(
        self,
        form: StandardForm,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: SimplexBasis | None = None,
    ) -> LPResult:
        session = self._session_for(form)
        session.set_bounds(lb, ub)
        # Legacy contract: basis=None means a cold solve, and a
        # mismatched basis silently degrades to cold.
        if basis is None or not session.install_basis(basis):
            session.install_basis(None)
        return session.solve()

    def _session_for(self, form: StandardForm) -> SimplexSession:
        cached = self._sessions.get(id(form))
        if cached is not None and cached.form is form:
            return cached
        session = self.create_session(form)
        if len(self._sessions) >= 8:
            self._sessions.pop(next(iter(self._sessions)))
        self._sessions[id(form)] = session
        return session


#: Backwards-compatible alias: the dense tableau backend this replaced.
DenseSimplexBackend = RevisedSimplexBackend


class _Workspace:
    """Per-form dense data shared by every solve of one standard form.

    The join-ordering formulations mix unit coefficients with big-M rows
    around ``1e10``, which wrecks fixed simplex tolerances.  The
    workspace therefore stores a geometrically equilibrated copy
    (``A' = R A C`` with power-of-two scale factors, so scaling is exact
    in floating point) and the solver runs entirely in scaled space:
    bounds come in as ``lb / C``, the solution leaves as ``C x'``.  Slack
    columns stay exactly unit because each slack absorbs its row scale.
    """

    def __init__(self, form: StandardForm) -> None:
        self.form = form
        rows, b, num_le = form.equality_form()
        self.num_le = num_le
        self.num_rows = rows.shape[0]
        self.num_structural = form.num_variables
        self.num_columns = self.num_structural + self.num_rows
        row_scale, col_scale = _geometric_scales(rows)
        self.a_struct = rows * row_scale[:, None] * col_scale[None, :]
        self.b = b * row_scale
        #: Per-column solution scale: x_original = col_scale * x_scaled.
        self.col_scale = col_scale
        self.c_full = np.concatenate(
            [form.c * col_scale, np.zeros(self.num_rows)]
        )
        # Slack bounds: [0, inf) for <= rows, fixed 0 for == rows
        # (scale-invariant: row scales are positive).
        self.slack_lb = np.zeros(self.num_rows)
        self.slack_ub = np.where(
            np.arange(self.num_rows) < num_le, math.inf, 0.0
        )
        #: Rows grown past the original form via append_le_rows.
        self.appended = 0
        self.signature = (
            num_le, self.num_rows - num_le, self.num_structural,
        )
        # Anti-degeneracy cost perturbation (deterministic): the
        # join-ordering models are heavily degenerate (many ties, often
        # an all-zero objective), which makes pure Dantzig/Bland pricing
        # crawl.  Each solve runs on perturbed costs and finishes with a
        # clean-up primal pass on the true costs.
        rng = np.random.default_rng(0x5EED)
        magnitude = 1e-7 * (1.0 + np.abs(self.c_full))
        self.perturbation = magnitude * rng.uniform(0.5, 1.0, self.num_columns)
        self._build_polish_tols(row_scale, col_scale)

    def _build_polish_tols(
        self, row_scale: np.ndarray, col_scale: np.ndarray
    ) -> None:
        """Per-column tolerances equivalent to *raw-space* tolerances.

        The solver works in equilibrated space, where the scalar
        ``_FEAS_TOL``/``_DUAL_TOL`` mean different raw-space amounts per
        column: a structural bound violation unscales as ``col_scale *
        v`` and a slack (row residual) as ``v / row_scale``; a reduced
        cost unscales as ``d / col_scale`` (structural) and ``d *
        row_scale`` (slack).  On big-M forms those factors reach 1e5+,
        so the scalar tolerances silently accept raw infeasibility
        (claimed optima *below* the HiGHS reference) or miss profitable
        moves whose scaled reduced cost is tiny (the perturbation
        clean-up stopping early).  These vectors tighten each column to
        whichever of raw/scaled tolerance is stricter, floored at 1e-12
        to stay above double-precision noise; the final polish pass
        (:meth:`_SimplexRun._polish`) enforces them.
        """
        self.feas_tol = np.maximum(
            np.concatenate([
                _FEAS_TOL * np.minimum(1.0, 1.0 / col_scale),
                _FEAS_TOL * np.minimum(1.0, row_scale),
            ]),
            _POLISH_TOL_FLOOR,
        )
        self.dual_tol = np.maximum(
            np.concatenate([
                _DUAL_TOL * np.minimum(1.0, col_scale),
                _DUAL_TOL * np.minimum(1.0, 1.0 / row_scale),
            ]),
            _POLISH_TOL_FLOOR,
        )

    def append_le_rows(self, a_new: np.ndarray, b_new: np.ndarray) -> None:
        """Append ``a_new @ x <= b_new`` rows in place (session growth).

        New rows are equilibrated against the *existing* column scales
        (cut coefficients are near-unit, so one power-of-two row scale
        per row suffices) and appended at the bottom of the row block;
        their slacks take the next column indices, so every existing
        column index — and hence any live basis — stays valid.
        """
        a_new = np.atleast_2d(np.asarray(a_new, dtype=float))
        b_new = np.atleast_1d(np.asarray(b_new, dtype=float))
        k = a_new.shape[0]
        if k == 0:
            return
        if a_new.shape[1] != self.num_structural:
            raise ValueError(
                f"appended rows have {a_new.shape[1]} columns, "
                f"workspace has {self.num_structural} structural variables"
            )
        scaled = a_new * self.col_scale[None, :]
        magnitude = np.abs(scaled)
        row_scale = np.ones(k)
        for i in range(k):
            present = magnitude[i][magnitude[i] > 0]
            if present.size:
                factor = 1.0 / math.sqrt(
                    float(present.max()) * float(present.min())
                )
                row_scale[i] = math.exp2(round(math.log2(factor)))
        self.a_struct = np.vstack([self.a_struct, scaled * row_scale[:, None]])
        self.b = np.concatenate([self.b, b_new * row_scale])
        self.slack_lb = np.concatenate([self.slack_lb, np.zeros(k)])
        self.slack_ub = np.concatenate([self.slack_ub, np.full(k, math.inf)])
        self.c_full = np.concatenate([self.c_full, np.zeros(k)])
        # New slack columns take the tolerance implied by their row scale
        # (appended at the end, so existing column tolerances stay put).
        self.feas_tol = np.concatenate([
            self.feas_tol,
            np.maximum(
                _FEAS_TOL * np.minimum(1.0, row_scale), _POLISH_TOL_FLOOR
            ),
        ])
        self.dual_tol = np.concatenate([
            self.dual_tol,
            np.maximum(
                _DUAL_TOL * np.minimum(1.0, 1.0 / row_scale),
                _POLISH_TOL_FLOOR,
            ),
        ])
        # Deterministic perturbation for the new slack columns, seeded by
        # the growth step so repeated append sequences reproduce exactly.
        rng = np.random.default_rng(0x5EED ^ (self.num_rows + k))
        self.perturbation = np.concatenate(
            [self.perturbation, 1e-7 * rng.uniform(0.5, 1.0, k)]
        )
        self.num_le += k
        self.num_rows += k
        self.num_columns += k
        self.appended += k
        # Grown lineages get a fourth signature element: a fresh
        # workspace of the equal-shaped extended form orders its rows
        # differently ([all LE; EQ] vs cut rows appended after the EQ
        # block), so a 3-tuple match would install a layout-scrambled
        # basis.  The count keeps equal-growth sessions exchangeable.
        self.signature = (
            self.num_le, self.num_rows - self.num_le, self.num_structural,
            self.appended,
        )

    def column(self, j: int) -> np.ndarray:
        """Dense column ``j`` of ``[A | I]``."""
        if j < self.num_structural:
            return self.a_struct[:, j]
        unit = np.zeros(self.num_rows)
        unit[j - self.num_structural] = 1.0
        return unit

    def mat_t(self, y: np.ndarray) -> np.ndarray:
        """``[A | I]^T @ y`` without materializing the slack block."""
        return np.concatenate([self.a_struct.T @ y, y])


def _geometric_scales(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Alternating geometric-mean equilibration, rounded to powers of 2.

    Each pass rescales every row (then column) by
    ``1 / sqrt(max |a| * min_nonzero |a|)``; power-of-two rounding keeps
    the scaled matrix bit-exact with respect to the original entries.
    """
    m, n = rows.shape
    row_scale = np.ones(m)
    col_scale = np.ones(n)
    if m == 0 or n == 0:
        return row_scale, col_scale
    magnitude = np.abs(rows)
    for _ in range(3):
        for axis, scale in ((1, row_scale), (0, col_scale)):
            scaled = magnitude * row_scale[:, None] * col_scale[None, :]
            present = scaled > 0
            largest = np.where(present, scaled, 0.0).max(axis=axis)
            smallest = np.where(present, scaled, math.inf).min(axis=axis)
            factor = np.ones_like(scale)
            nonempty = np.isfinite(smallest) & (largest > 0)
            factor[nonempty] = 1.0 / np.sqrt(
                largest[nonempty] * smallest[nonempty]
            )
            scale *= np.exp2(np.round(np.log2(factor)))
    return row_scale, col_scale


def _solve_unconstrained(
    form: StandardForm, lb: np.ndarray, ub: np.ndarray, ws: _Workspace
) -> LPResult:
    """Row-free model: each variable independently sits at its best bound."""
    x = np.empty(ws.num_structural)
    status = np.full(ws.num_structural, AT_LOWER, dtype=np.int8)
    for j in range(ws.num_structural):
        c_j = form.c[j]
        if c_j > _DUAL_TOL:
            if not math.isfinite(lb[j]):
                return LPResult(LPStatus.UNBOUNDED, None, -math.inf)
            x[j] = lb[j]
        elif c_j < -_DUAL_TOL:
            if not math.isfinite(ub[j]):
                return LPResult(LPStatus.UNBOUNDED, None, -math.inf)
            x[j] = ub[j]
            status[j] = AT_UPPER
        else:
            x[j] = min(max(0.0, lb[j]), ub[j])
            if not math.isfinite(lb[j]) and not math.isfinite(ub[j]):
                status[j] = FREE
    basis = SimplexBasis(
        np.empty(0, dtype=np.int64), status, ws.signature
    )
    objective = float(form.c @ x) + form.c0
    return LPResult(LPStatus.OPTIMAL, x, objective, basis=basis)


class _NumericalTrouble(Exception):
    """Internal signal: the factorization can no longer be trusted."""


def _tri_solve(
    a: np.ndarray, b: np.ndarray, lower: int, trans: int, unit: int
) -> np.ndarray:
    """Triangular solve through raw LAPACK ``dtrtrs``.

    The scipy ``solve_triangular`` wrapper costs tens of microseconds
    of validation per call; at simplex call rates (four solves per
    pivot) that overhead dominates the actual O(n²) arithmetic on
    mid-sized bases.  An exactly-singular diagonal yields NaNs (the
    callers' finiteness/consistency checks catch them) instead of an
    exception.
    """
    x, info = _dtrtrs(a, b, lower=lower, trans=trans, unitdiag=unit)
    if info != 0:
        return np.full_like(b, np.nan)
    return x


class _FTFactor:
    """Dense LU factors of one basis, updated in place Forrest–Tomlin
    style.

    The representation after ``k`` column replacements is::

        B[rowperm, :] = L · (Q₁ᵀ R₁) · … · (Q_kᵀ R_k) · U · (Q_k … Q₁)

    where ``L`` is the unit-lower factor of the initial LU (never
    mutated), each ``Q_i`` is the cyclic permutation that borders the
    replaced row/column, each ``R_i = I + e_last m_iᵀ`` is one compact
    row-eta, and ``U`` is the *current* upper factor, physically
    permuted and mutated by every update.  ``upos``/``posinv`` track the
    accumulated column permutation (U coordinate ↔ basis position), so
    FTRAN/BTRAN are two triangular solves plus ``O(k·n)`` for the
    update ops — never a growing product-form chain in the solves
    themselves.

    Pristine factors (zero updates) are cached and shared between runs;
    :meth:`fork` hands out cheap views whose ``U`` is copied lazily on
    the first update (copy-on-write), so cached factors are never
    corrupted.  :meth:`replace_column` returning ``False`` means the
    update failed a stability gate and **left the factor unusable** —
    the caller must refactorize from scratch.
    """

    __slots__ = (
        "n", "lower", "upper", "rowperm",
        "ops", "updates", "upos", "posinv", "_shared_upper", "_spike",
    )

    @classmethod
    def build(cls, b_mat: np.ndarray) -> "_FTFactor | None":
        """Factorize ``b_mat``; ``None`` when it is (exactly) singular."""
        try:
            with warnings.catch_warnings():
                # scipy warns (not raises) on a singular basis; the
                # diagonal check below handles it explicitly.
                warnings.simplefilter("ignore", LinAlgWarning)
                lu, piv = lu_factor(b_mat, check_finite=False)
        except (LinAlgError, ValueError):
            return None
        # lu_factor only *warns* on exact singularity; inspect U's
        # diagonal ourselves so a degenerate basis is rejected instead
        # of silently producing inf/nan solves.  Only exact zeros are
        # fatal: the big-M rows make these matrices legitimately
        # ill-scaled, and mere ill-conditioning is caught by the pivot
        # consistency checks.
        diag = np.abs(np.diag(lu))
        if diag.size and diag.min() == 0.0:
            return None
        self = cls.__new__(cls)
        n = b_mat.shape[0]
        self.n = n
        # LAPACK ipiv (successive row swaps) -> permutation array with
        # b_mat[rowperm, :] == L @ U.
        perm = np.arange(n)
        for i, p in enumerate(piv):
            perm[i], perm[p] = perm[p], perm[i]
        self.rowperm = perm
        # The unit diagonal is implied by the solver's unitdiag flag, so
        # the strictly-lower part alone is enough.  Fortran order lets
        # LAPACK take the factors without a full-matrix copy per solve.
        self.lower = np.asfortranarray(np.tril(lu, -1))
        self.upper = np.asfortranarray(np.triu(lu))
        self.ops: list[tuple[int, np.ndarray]] = []
        #: Successful column replacements since the factorization.  Not
        #: ``len(ops)``: a replacement in the already-bordered position
        #: mutates ``upper`` without appending an op.
        self.updates = 0
        self.upos = np.arange(n)
        self.posinv = np.arange(n)
        self._shared_upper = False
        self._spike: np.ndarray | None = None
        return self

    def fork(self) -> "_FTFactor":
        """A cheap update-capable view sharing the pristine arrays."""
        clone = _FTFactor.__new__(_FTFactor)
        clone.n = self.n
        clone.lower = self.lower
        clone.upper = self.upper
        clone.rowperm = self.rowperm
        clone.ops = []
        clone.updates = 0
        clone.upos = np.arange(self.n)
        clone.posinv = np.arange(self.n)
        clone._shared_upper = True
        clone._spike = None
        return clone

    def snapshot(self) -> "_FTFactor":
        """An independently-updatable copy of the *current* state.

        Unlike :meth:`fork` (pristine view), this preserves accumulated
        updates: the session hands snapshots of its live factor to new
        runs, so both branch-and-bound children of one node can adopt
        the parent's factorization — an ``O(n²)`` copy of ``U`` instead
        of the ``O(n³)`` refactorization each child used to pay.  The
        eta vectors inside ``ops`` are immutable after creation, so the
        list is copied shallowly.
        """
        clone = _FTFactor.__new__(_FTFactor)
        clone.n = self.n
        clone.lower = self.lower
        clone.upper = self.upper
        clone.rowperm = self.rowperm
        clone.ops = list(self.ops)
        clone.updates = self.updates
        clone.upos = self.upos.copy()
        clone.posinv = self.posinv.copy()
        clone._shared_upper = True
        clone._spike = None
        # The source must no longer mutate the shared upper in place.
        self._shared_upper = True
        return clone

    # -- solves --------------------------------------------------------

    def _forward(self, rhs: np.ndarray) -> np.ndarray:
        """``rhs`` through the row permutation, ``L`` and the update
        ops — i.e. everything *before* the final ``U`` solve."""
        t = _tri_solve(self.lower, rhs[self.rowperm], 1, 0, 1)
        for j, m in self.ops:
            tj = t[j]
            t[j:-1] = t[j + 1:]
            t[-1] = tj - m @ t[j:-1]
        return t

    def ftran(self, rhs: np.ndarray, want_spike: bool = False) -> np.ndarray:
        """Solve ``B z = rhs``.  ``want_spike`` stashes the pre-``U``
        intermediate for a following :meth:`replace_column` (the spike
        of the entering column), saving a redundant forward pass.

        Always the decomposed L/ops/U route — never the packed
        packed-LU shortcut: the simplex cross-checks FTRAN pivots
        against BTRAN pivots, and on ill-conditioned big-M bases the
        two routes must carry *matching* rounding or the consistency
        check rejects healthy pivots.
        """
        t = self._forward(rhs)
        if want_spike:
            self._spike = t.copy()
        y = _tri_solve(self.upper, t, 0, 0, 0)
        z = np.empty(self.n)
        z[self.upos] = y
        return z

    def btran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``Bᵀ y = rhs`` (decomposed route, matching ftran)."""
        s = _tri_solve(self.upper, rhs[self.upos], 0, 1, 0)
        for j, m in reversed(self.ops):
            s[j:-1] -= m * s[-1]
            last = s[-1]
            s[j + 1:] = s[j:-1]  # overlap-buffered shift-up
            s[j] = last
        w = _tri_solve(self.lower, s, 1, 1, 1)
        y = np.empty(self.n)
        y[self.rowperm] = w
        return y

    def take_spike(self) -> np.ndarray | None:
        spike, self._spike = self._spike, None
        return spike

    # -- update --------------------------------------------------------

    def replace_column(
        self,
        r: int,
        col: np.ndarray | None,
        spike: np.ndarray | None = None,
    ) -> bool:
        """Forrest–Tomlin update: basis position ``r`` takes a new
        column (``col``, or its pre-computed forward ``spike``).

        Returns ``False`` when a stability gate rejects the update —
        the factor is then unusable and the caller must refactorize.
        """
        t = spike if spike is not None else self._forward(col)
        n = self.n
        j = int(self.posinv[r])
        if self._shared_upper:
            self.upper = self.upper.copy(order="F")
            self._shared_upper = False
        upper = self.upper
        upper[:, j] = t
        tmax = float(np.abs(t).max()) if n else 0.0
        if j == n - 1:
            # Bordered already: no permutation, no row spike.
            if abs(upper[n - 1, n - 1]) <= _FT_DIAG_TOL * (1.0 + tmax):
                return False
            self.updates += 1
            return True
        # Cyclic shift of rows and columns j..n-1 (j moves to the
        # border), done with block moves — numpy buffers overlapping
        # basic-slice assignments, and block memmoves beat a full
        # fancy-index gather by a wide margin at this call rate.  Rows
        # below j carry nothing left of column j (triangularity; the
        # spike itself sits in column j), so the row move only touches
        # the j: column range.
        row_spike = upper[j, j:].copy()
        upper[j:n - 1, j:] = upper[j + 1:n, j:]
        upper[n - 1, j:] = row_spike
        col_spike = upper[:, j].copy()
        upper[:, j:n - 1] = upper[:, j + 1:n]
        upper[:, n - 1] = col_spike
        spike_row = upper[n - 1, j:n - 1].copy()
        if np.any(spike_row != 0.0):
            m = _tri_solve(upper[j:n - 1, j:n - 1], spike_row, 0, 1, 0)
            if not np.all(np.isfinite(m)):
                return False
            if m.size and float(np.abs(m).max()) > _FT_GROWTH_CAP:
                return False
            upper[n - 1, n - 1] -= m @ upper[j:n - 1, n - 1]
            upper[n - 1, j:n - 1] = 0.0
        else:
            m = np.zeros(n - 1 - j)
        diag = upper[n - 1, n - 1]
        if not np.isfinite(diag) or abs(diag) <= _FT_DIAG_TOL * (1.0 + tmax):
            return False
        self.upper = upper
        self.ops.append((j, m))
        self.updates += 1
        upos = self.upos
        moved = upos[j]
        upos[j:n - 1] = upos[j + 1:n]
        upos[n - 1] = moved
        self.posinv[upos] = np.arange(n)
        return True


class _SimplexRun:
    """State of one solve: basis, factorization, values, statuses."""

    def __init__(
        self,
        ws: _Workspace,
        lb: np.ndarray,
        ub: np.ndarray,
        lu_cache: dict | None = None,
        pricing: str = "devex",
        refactor_interval: int = 64,
        live: "tuple[_FTFactor, bytes] | None" = None,
        cancel_token=None,
        phase_times: dict | None = None,
    ):
        self.ws = ws
        self._lu_cache = lu_cache if lu_cache is not None else {}
        self.pricing = pricing
        self._refactor_interval = refactor_interval
        self._live = live
        #: Opt-in pricing/BTRAN/ratio-test/FTRAN wall-time buckets
        #: (``None`` = disabled; the pivot loop then pays only a None
        #: check per segment, so pivot sequences are bit-identical with
        #: profiling on or off).
        self.phase_times = phase_times
        #: Cooperative cancellation token polled every few dozen pivots
        #: (:class:`repro.cancel.CancelToken`; ``None`` = never cancel).
        self._cancel = cancel_token
        # Per-node work: scale the bound vectors into equilibrated space.
        self.lb = np.concatenate([lb / ws.col_scale, ws.slack_lb])
        self.ub = np.concatenate([ub / ws.col_scale, ws.slack_ub])
        # Solve with perturbed costs (anti-degeneracy); the driver swaps
        # the true costs back in for the final clean-up pass.
        self.c = ws.c_full + ws.perturbation
        self._perturbed = True
        # Pivot budget scaled to the basis size: a run that exceeds it is
        # almost certainly stalling, and branch-and-bound's per-node
        # fallback backend is cheaper than letting it crawl.
        self.pivot_limit = min(_MAX_ITERATIONS, 200 + 25 * ws.num_rows)
        self.x = np.zeros(ws.num_columns)
        self.basic = np.empty(0, dtype=np.int64)
        self.status = np.empty(0, dtype=np.int8)
        self.pivots = 0
        self.refactorizations = 0
        self.bound_flips = 0
        #: Whether the finished solve actually started from the caller's
        #: basis (False when it was rejected/singular and the run fell
        #: back to the cold all-slack start) — keeps warm_solves honest.
        self.installed_warm = False
        self.bland = pricing == "bland"
        self._degenerate_run = 0
        self._factor: _FTFactor | None = None
        self._devex = np.ones(ws.num_columns)
        self._dual_devex = np.ones(ws.num_rows)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def optimize(self, basis: SimplexBasis | None) -> LPStatus:
        # One retry from the cold slack basis when the warm (or drifted)
        # factorization turns out numerically untrustworthy.
        for attempt, start in enumerate((basis, None)):
            if attempt and basis is None:
                break
            self._reset_attempt_state()
            try:
                return self._optimize_once(start)
            except _NumericalTrouble:
                self._live = None  # a drifted live factor never retries
                continue
        return LPStatus.ERROR

    def _reset_attempt_state(self) -> None:
        """Give each solve attempt a clean slate.

        A failed warm attempt may have consumed the pivot budget, swapped
        in the true (unperturbed) costs, or engaged Bland pricing; the
        cold retry must not inherit any of that.  ``pivots`` keeps
        accumulating so reported iterations cover all attempts.
        """
        ws = self.ws
        self.c = ws.c_full + ws.perturbation
        self._perturbed = True
        self.bland = self.pricing == "bland"
        self._degenerate_run = 0
        self._devex.fill(1.0)
        self._dual_devex.fill(1.0)
        self.pivot_limit = self.pivots + min(
            _MAX_ITERATIONS, 200 + 25 * ws.num_rows
        )

    def _drop_perturbation(self) -> None:
        """Swap the true costs in, with budget headroom for the polish."""
        self.c = self.ws.c_full
        self._perturbed = False
        self.pivot_limit = max(self.pivot_limit, self.pivots + 100)

    def _optimize_once(self, basis: SimplexBasis | None) -> LPStatus:
        if not self._install(basis):
            raise _NumericalTrouble
        # Two self-correcting phases: the dual phase removes primal bound
        # violations while preserving dual feasibility; the primal phase
        # then removes any remaining dual infeasibility (FREE-parked
        # columns, numerical drift) while preserving primal feasibility.
        # Extra rounds repair rare numerical drift.
        for _ in range(4):
            status = self._dual_phase()
            if status is not LPStatus.OPTIMAL:
                return status
            status = self._primal_phase()
            if status is LPStatus.UNBOUNDED and self._perturbed:
                # The improving ray may have zero *true* cost (the
                # perturbation gave it a fake one): re-verify on the true
                # costs before claiming unboundedness.
                self._drop_perturbation()
                status = self._primal_phase()
            if status is not LPStatus.OPTIMAL:
                return status
            if self._max_violation() <= 10 * _FEAS_TOL:
                return self._cleanup_perturbation()
        raise _NumericalTrouble

    def _cleanup_perturbation(self) -> LPStatus:
        """Finish on the true costs, then polish to raw-space tolerances.

        The perturbed optimum is primal feasible for the true problem;
        one more primal pass removes any profitable move the perturbation
        was hiding (usually zero pivots).  The polish rounds then enforce
        the per-column raw-equivalent tolerances — without them, big-M
        column/row scales let this clean-up stop early: scaled reduced
        costs below ``_DUAL_TOL`` can unscale to O(0.1) raw improvements,
        and scaled-feasible slacks can hide raw infeasibility whose
        claimed objective undercuts the true optimum.
        """
        if self._perturbed:
            self._drop_perturbation()
            status = self._primal_phase()
            if status is not LPStatus.OPTIMAL:
                return status
        if self._max_violation() > 10 * _FEAS_TOL:
            raise _NumericalTrouble
        return self._polish()

    def _polish(self) -> LPStatus:
        """Re-optimize under the per-column raw-equivalent tolerances.

        On well-conditioned forms every column's polish tolerance equals
        the scalar one, both phases find nothing to do, and this costs
        one reduced-cost evaluation.  On big-M forms it runs the extra
        dual/primal pivots the scalar tolerances cannot see (the
        ROADMAP'd cold-solve inaccuracy on cut-extended big-M forms).
        A point that cannot be polished clean in a few rounds is
        numerically untrustworthy — better ERROR (callers fall back to
        HiGHS) than a confidently wrong optimum.
        """
        ws = self.ws
        for _ in range(3):
            self.pivot_limit = max(self.pivot_limit, self.pivots + 200)
            status = self._dual_phase(ws.feas_tol, ws.dual_tol)
            if status is not LPStatus.OPTIMAL:
                return status
            status = self._primal_phase(ws.dual_tol)
            if status is not LPStatus.OPTIMAL:
                return status
            self._refine_basics()
            violation = self._violations()
            if np.all(violation <= 10 * ws.feas_tol[self.basic]):
                return LPStatus.OPTIMAL
        raise _NumericalTrouble

    def _refine_basics(self) -> None:
        """Iterative refinement of ``x_B`` against the equation residual.

        ``x_B`` carries the factorization's solve error (amplified by
        the basis condition number on big-M forms), so the equations
        ``A x + s = b`` can be off by orders more than the bound checks
        ever see — the reported point then violates raw-space rows while
        every *bound* looks satisfied.  A couple of residual-correction
        steps push the equation error to machine level; if that moves a
        basic variable out of bounds, the hidden infeasibility becomes
        visible and the polish loop's dual phase repairs it honestly.
        """
        ws = self.ws
        ns = ws.num_structural
        scale = max(1.0, float(np.abs(ws.b).max())) if ws.b.size else 1.0
        for _ in range(3):
            resid = ws.b - ws.a_struct @ self.x[:ns] - self.x[ns:]
            if not resid.size or np.abs(resid).max() <= 1e-14 * scale:
                return
            self.x[self.basic] += self._ftran(resid)

    def export_basis(self) -> SimplexBasis:
        return SimplexBasis(
            self.basic.copy(), self.status.copy(), self.ws.signature
        )

    def export_live(self) -> "tuple[_FTFactor, bytes] | None":
        """The finished factorization, keyed by its basis, for the
        session to hand to the next solve (skipping refactorization
        when that solve re-installs exactly this basis)."""
        if self._factor is None:
            return None
        return self._factor, self.basic.tobytes()

    # ------------------------------------------------------------------
    # Basis installation
    # ------------------------------------------------------------------

    def _install(self, basis: SimplexBasis | None) -> bool:
        ws = self.ws
        self.installed_warm = False
        if basis is not None and not self._basis_usable(basis):
            basis = None
        if basis is not None:
            self.basic = basis.basic.astype(np.int64, copy=True)
            prior = basis.status.astype(np.int8, copy=True)
        else:
            self.basic = np.arange(
                ws.num_structural, ws.num_columns, dtype=np.int64
            )
            prior = np.full(ws.num_columns, AT_LOWER, dtype=np.int8)
        if not self._adopt_live() and not self._refactor():
            if basis is None:
                return False
            # Singular warm basis: fall back to the cold slack basis.
            return self._install(None)
        self.status = np.full(ws.num_columns, AT_LOWER, dtype=np.int8)
        self.status[self.basic] = BASIC
        self._place_nonbasic(prior)
        self._recompute_basics()
        self.installed_warm = basis is not None
        return True

    def _adopt_live(self) -> bool:
        """Adopt the session's still-valid live factorization.

        The session exports ``(factor, basic.tobytes())`` after each
        OPTIMAL solve; when the next solve re-installs exactly that
        basis (every sequential warm re-solve does, and *both*
        branch-and-bound children of a node install the same parent
        basis), the factorization — LU plus accumulated Forrest–Tomlin
        updates — carries over as a copy-on-write snapshot and the
        ``O(n³)`` per-solve refactorization disappears.
        """
        if self._live is None:
            return False
        factor, basic_bytes = self._live
        if factor is None or factor.n != self.ws.num_rows:
            return False
        if factor.updates > _LIVE_ADOPT_MAX_UPDATES:
            # Too much accumulated update rounding to carry across a
            # solve boundary; a fresh LU is cheaper than the ERROR
            # fallback an over-aged chain tends to end in.
            return False
        if self.basic.tobytes() != basic_bytes:
            return False
        self._factor = factor.snapshot()
        return True

    def _basis_usable(self, basis: SimplexBasis) -> bool:
        ws = self.ws
        if basis.signature != ws.signature:
            return False
        basic = basis.basic
        if basic.shape[0] != ws.num_rows:
            return False
        if basis.status.shape[0] != ws.num_columns:
            return False
        if basic.size and (basic.min() < 0 or basic.max() >= ws.num_columns):
            return False
        return np.unique(basic).size == basic.size

    def _place_nonbasic(self, prior: np.ndarray) -> None:
        """Choose dual-feasible nonbasic statuses and resting values.

        A column whose reduced cost asks for a side with no finite bound
        cannot be placed dual-feasibly; it is parked ``FREE`` at a value
        clamped into its bounds and the primal phase moves it later.
        """
        d = self._reduced_costs()
        nonbasic = self.status != BASIC
        lo_ok = np.isfinite(self.lb)
        up_ok = np.isfinite(self.ub)

        # Dual-feasible side by reduced-cost sign; ties keep the prior
        # status when its bound is still finite.
        want = np.where(
            (prior == AT_LOWER) & lo_ok,
            AT_LOWER,
            np.where(
                (prior == AT_UPPER) & up_ok,
                AT_UPPER,
                np.where(lo_ok, AT_LOWER, np.where(up_ok, AT_UPPER, FREE)),
            ),
        )
        want = np.where(
            d > _DUAL_TOL, np.where(lo_ok, AT_LOWER, FREE), want
        )
        want = np.where(
            d < -_DUAL_TOL, np.where(up_ok, AT_UPPER, FREE), want
        )
        self.status[nonbasic] = want.astype(np.int8)[nonbasic]

        values = np.where(
            want == AT_LOWER,
            self.lb,
            np.where(
                want == AT_UPPER,
                self.ub,
                np.minimum(
                    np.maximum(0.0, np.where(lo_ok, self.lb, 0.0)), self.ub
                ),
            ),
        )
        self.x[nonbasic] = values[nonbasic]

    # ------------------------------------------------------------------
    # Factorization (LU + Forrest–Tomlin updates)
    # ------------------------------------------------------------------

    def _refactor(self) -> bool:
        ws = self.ws
        # The pristine-factor cache is shared across solves of this
        # form: both branch-and-bound children (and dive steps)
        # re-install their parent's basis, whose LU was already
        # computed.  Cached factors are never mutated (forks copy the
        # upper factor on their first update), so sharing is safe.
        # Keyed by the workspace *object* (not id()): the tuple holds a
        # strong reference, so an evicted workspace's id can never be
        # recycled into a stale cache hit.
        key = (ws, self.basic.tobytes())
        cached = self._lu_cache.get(key)
        if cached is not None:
            self._factor = cached.fork()
            return True
        b_mat = np.zeros((ws.num_rows, ws.num_rows))
        structural = self.basic < ws.num_structural
        b_mat[:, structural] = ws.a_struct[:, self.basic[structural]]
        slack_positions = np.nonzero(~structural)[0]
        b_mat[
            self.basic[slack_positions] - ws.num_structural, slack_positions
        ] = 1.0
        factor = _FTFactor.build(b_mat)
        if factor is None:
            return False
        self.refactorizations += 1
        if len(self._lu_cache) >= 16:
            self._lu_cache.pop(next(iter(self._lu_cache)))
        self._lu_cache[key] = factor
        self._factor = factor.fork()
        return True

    def _ftran(self, rhs: np.ndarray, want_spike: bool = False) -> np.ndarray:
        """Solve ``B z = rhs`` through the factorization."""
        return self._factor.ftran(rhs, want_spike)

    def _btran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B^T y = rhs``."""
        return self._factor.btran(rhs)

    def _apply_pivot(self, r: int) -> bool:
        """Fold the basis change at row ``r`` into the factorization.

        Prefers a Forrest–Tomlin column replacement (reusing the spike
        stashed by the entering column's FTRAN); refactorizes when the
        update chain is full or a stability gate rejects the update.
        Returns ``True`` when a fresh refactorization replaced the
        chain — callers must refresh any cached reduced costs.
        """
        factor = self._factor
        spike = factor.take_spike()
        if factor.updates < self._refactor_interval and factor.replace_column(
            r,
            self.ws.column(int(self.basic[r])) if spike is None else None,
            spike=spike,
        ):
            return False
        if not self._refactor():
            raise _NumericalTrouble
        self._recompute_basics()
        return True

    def _recompute_basics(self) -> None:
        """Recompute ``x_B = B^{-1}(b - N x_N)`` from nonbasic values."""
        saved = self.x[self.basic].copy()
        self.x[self.basic] = 0.0
        residual = (
            self.ws.b
            - self.ws.a_struct @ self.x[: self.ws.num_structural]
            - self.x[self.ws.num_structural:]
        )
        self.x[self.basic] = saved  # keep values sane if ftran fails
        self.x[self.basic] = self._ftran(residual)

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------

    def _duals(self) -> np.ndarray:
        return self._btran(self.c[self.basic])

    def _reduced_costs(self) -> np.ndarray:
        return self.c - self.ws.mat_t(self._duals())

    def _violations(self) -> np.ndarray:
        """Per-basic-column bound violation (positive where violated)."""
        xb = self.x[self.basic]
        over = xb - self.ub[self.basic]
        under = self.lb[self.basic] - xb
        return np.maximum(over, under)

    def _max_violation(self) -> float:
        worst = self._violations()
        return float(worst.max()) if worst.size else 0.0

    @staticmethod
    def _pivot_trustworthy(
        w: np.ndarray, pivot: float, cross_check: float
    ) -> bool:
        """Accept a pivot only when both solve routes agree on it.

        The agreement tolerance grows with the transformed column's
        magnitude: on an ill-conditioned basis both routes carry rounding
        of that order while still being usable, so a fixed relative test
        would reject healthy pivots.
        """
        norm = float(np.abs(w).max()) if w.size else 0.0
        if abs(pivot - cross_check) > _CONSISTENCY_TOL * (1.0 + norm):
            return False
        if abs(pivot) < _PIVOT_TOL:
            return False
        # Loose relative floor: reject only pivots that are vanishing
        # against the whole transformed column.
        return abs(pivot) >= 1e-14 * norm

    def _note_degenerate(self, step: float) -> None:
        if abs(step) <= 1e-10:
            self._degenerate_run += 1
            if self._degenerate_run >= _BLAND_SWITCH:
                self.bland = True
        else:
            self._degenerate_run = 0

    # ------------------------------------------------------------------
    # Dual simplex phase
    # ------------------------------------------------------------------

    def _dual_phase(
        self,
        tol: np.ndarray | None = None,
        dtol: np.ndarray | None = None,
    ) -> LPStatus:
        """Drive out primal bound violations, keeping dual feasibility.

        ``tol``/``dtol`` optionally supply the per-column feasibility
        and dual tolerances of the polish pass; the defaults are the
        scalar ``_FEAS_TOL``/``_DUAL_TOL`` for every column.
        """
        # Reduced costs are maintained incrementally across dual pivots
        # (d' = d - theta * alpha, both already in hand) and recomputed
        # fresh only after a refactorization — by far the cheapest of the
        # per-pivot linear algebra.
        d = self._reduced_costs()
        pt = self.phase_times
        while self.pivots < self.pivot_limit:
            # Cancellation poll, amortized to every 64 pivots: cheap
            # enough to leave in the hot loop, frequent enough that an
            # abandoned request stops mid-solve instead of running its
            # full pivot budget.
            if self._cancel is not None and (self.pivots & 0x3F) == 0:
                self._cancel.check()
            t0 = time.perf_counter() if pt is not None else 0.0
            xb = self.x[self.basic]
            over = xb - self.ub[self.basic]
            under = self.lb[self.basic] - xb
            violation = np.maximum(over, under)
            excess = violation - (
                _FEAS_TOL if tol is None else tol[self.basic]
            )
            if self.bland:
                offending = np.nonzero(excess > 0.0)[0]
                if not offending.size:
                    return LPStatus.OPTIMAL
                r = int(offending[0])
            else:
                if not np.any(excess > 0.0):
                    return LPStatus.OPTIMAL
                # Dual Devex row pricing: weight each violated row by
                # its reference framework norm (maintained from the
                # pivot column, which is already in hand — unlike
                # primal Devex this costs no extra solves).  Plain
                # most-violated selection re-chases the same big-M
                # rows; the weights steer toward rows whose pivot
                # actually moves the iterate.
                scores = np.where(
                    excess > 0.0,
                    violation * violation / self._dual_devex,
                    -math.inf,
                )
                r = int(np.argmax(scores))
            leaves_at_upper = over[r] >= under[r]
            delta = float(violation[r])
            if pt is not None:
                now = time.perf_counter()
                pt["pricing"] += now - t0
                t0 = now

            unit = np.zeros(self.ws.num_rows)
            unit[r] = 1.0
            rho = self._btran(unit)
            alpha = self.ws.mat_t(rho)
            if pt is not None:
                pt["btran"] += time.perf_counter() - t0
            # An untrustworthy pivot (FTRAN/BTRAN disagreement, or an
            # element negligible against its column) is first retried on
            # fresh factors — restarting the iteration, since the fresh
            # basics can move the violated row.  If it stays bad on fresh
            # factors, the column is banned for this row and the
            # next-best entering candidate is used.
            banned: set[int] = set()
            refreshed = False
            flips: list[int] = []
            while True:
                t0 = time.perf_counter() if pt is not None else 0.0
                q, flips = self._dual_select(
                    alpha, leaves_at_upper, banned, d, delta, dtol
                )
                if pt is not None:
                    now = time.perf_counter()
                    pt["ratio_test"] += now - t0
                    t0 = now
                if q < 0:
                    break
                w = self._ftran(self.ws.column(q), want_spike=True)
                if pt is not None:
                    pt["ftran"] += time.perf_counter() - t0
                if self._pivot_trustworthy(w, w[r], alpha[q]):
                    break
                if self._factor.updates:
                    if not self._refactor():
                        raise _NumericalTrouble
                    self._recompute_basics()
                    refreshed = True
                    break
                banned.add(q)
            if refreshed:
                d = self._reduced_costs()
                continue
            if q < 0:
                if banned:
                    # Every eligible column is numerically unusable.
                    raise _NumericalTrouble
                if self._certified_infeasible(rho, alpha):
                    return LPStatus.INFEASIBLE
                # No entering column but no independent certificate
                # either: treat as numerical trouble rather than prune a
                # possibly-feasible subtree on tolerance noise.
                raise _NumericalTrouble
            if flips:
                # Bound-flip ratio test: consume the breakpoints before
                # the entering column by flipping those boxed columns to
                # their opposite bound (one batched FTRAN repairs x_B),
                # so this single pivot takes the whole long dual step.
                self._apply_bound_flips(flips)
            leaving_col = int(self.basic[r])
            target = (
                self.ub[leaving_col] if leaves_at_upper
                else self.lb[leaving_col]
            )
            delta_q = (self.x[leaving_col] - target) / w[r]
            self.x[self.basic] = self.x[self.basic] - delta_q * w
            self.x[q] += delta_q
            self.x[leaving_col] = target
            self.status[leaving_col] = AT_UPPER if leaves_at_upper else AT_LOWER
            self.status[q] = BASIC
            # Dual update of the reduced costs (alpha_leaving == 1).
            theta = d[q] / w[r]
            d = d - theta * alpha
            d[q] = 0.0
            d[leaving_col] = -theta
            # Dual Devex weight update from the pivot column
            # (Forrest–Goldfarb, dual form): rows move relative to the
            # leaving row's reference weight; the new basic at r
            # restarts from the transferred weight.
            if not self.bland:
                self._devex_update(
                    self._dual_devex, r, r, w, float(w[r])
                )
            # Update the basis before folding the pivot into the
            # factorization: a refactorization inside _apply_pivot
            # rebuilds B from self.basic.
            self.basic[r] = q
            if self._apply_pivot(r):
                d = self._reduced_costs()  # refactored: refresh d
            self.pivots += 1
            self._note_degenerate(delta_q)
        return LPStatus.ERROR

    def _apply_bound_flips(self, flips: list[int]) -> None:
        """Move every column in ``flips`` to its opposite bound and
        repair ``x_B`` with one batched FTRAN."""
        ws = self.ws
        ns = ws.num_structural
        delta_vec = np.zeros(ws.num_rows)
        for j in flips:
            if self.status[j] == AT_LOWER:
                dx = self.ub[j] - self.lb[j]
                self.status[j] = AT_UPPER
                self.x[j] = self.ub[j]
            else:
                dx = self.lb[j] - self.ub[j]
                self.status[j] = AT_LOWER
                self.x[j] = self.lb[j]
            if j < ns:
                delta_vec += dx * ws.a_struct[:, j]
            else:
                delta_vec[j - ns] += dx
        self.x[self.basic] -= self._ftran(delta_vec)
        self.bound_flips += len(flips)

    def _effective_magnitudes(self) -> np.ndarray:
        """Per-column magnitude cap valid for every *feasible* point.

        Structural columns are capped by their own bounds.  A slack
        satisfies ``s = b_i - A_i x`` at any feasible point, so its
        magnitude is bounded by ``|b_i| + sum_j |A_ij| * cap_j`` even
        though its declared upper bound is infinite.  Rows touching a
        genuinely free structural column stay infinite.  Cached per run
        (the bounds are fixed for one solve).
        """
        cached = getattr(self, "_eff_mag", None)
        if cached is not None:
            return cached
        ws = self.ws
        n = ws.num_structural
        struct_mag = np.maximum(
            np.abs(self.lb[:n]), np.abs(self.ub[:n])
        )
        finite = np.isfinite(struct_mag)
        abs_rows = np.abs(ws.a_struct)
        row_range = abs_rows @ np.where(finite, struct_mag, 0.0) + np.abs(
            ws.b
        )
        if not np.all(finite):
            touched = (abs_rows[:, ~finite] > _PIVOT_TOL).any(axis=1)
            row_range[touched] = math.inf
        magnitudes = np.concatenate([struct_mag, row_range])
        self._eff_mag = magnitudes
        return magnitudes

    def _certified_infeasible(
        self, rho: np.ndarray, alpha: np.ndarray
    ) -> bool:
        """Farkas-style certificate for a dual-phase infeasibility claim.

        ``rho`` is a row combination, so every feasible point satisfies
        ``alpha . x == rho . b`` exactly (``alpha = [A|I]^T rho``).  If
        the *minimum* of ``alpha . x`` over the set of feasible column
        values already exceeds ``rho . b`` (or the maximum falls short),
        no feasible point exists — verified from the problem data,
        independent of the (possibly drifted) factorization that produced
        the claim.  Column values are capped by effective magnitudes (see
        :meth:`_effective_magnitudes`) so infinite declared slack bounds
        do not block certification, and the contribution of
        sub-pivot-tolerance alphas is charged to the margin instead of
        being silently dropped.
        """
        magnitudes = self._effective_magnitudes()
        sig = np.abs(alpha) > _PIVOT_TOL
        small = ~sig & (alpha != 0.0)
        # Error budget for the neglected near-zero coefficients.
        small_error = alpha[small] * magnitudes[small]
        if not np.all(np.isfinite(small_error)):
            return False
        rhs = float(rho @ self.ws.b)
        margin = (
            1e-6 * max(1.0, abs(rhs))
            + float(np.abs(small_error).sum())
        )

        # Only significant columns contribute; alpha there is nonzero, so
        # products with infinite effective bounds are +-inf, never nan.
        idx = np.nonzero(sig)[0]
        a_sig = alpha[idx]
        eff_lb = np.maximum(self.lb[idx], -magnitudes[idx])
        eff_ub = np.minimum(self.ub[idx], magnitudes[idx])
        low = np.where(a_sig >= 0, a_sig * eff_lb, a_sig * eff_ub)
        if np.all(np.isfinite(low)) and float(low.sum()) > rhs + margin:
            return True
        high = np.where(a_sig >= 0, a_sig * eff_ub, a_sig * eff_lb)
        return bool(
            np.all(np.isfinite(high)) and float(high.sum()) < rhs - margin
        )

    def _dual_select(
        self,
        alpha: np.ndarray,
        leaves_at_upper: bool,
        banned: set[int],
        d: np.ndarray,
        delta: float,
        dtol: np.ndarray | None = None,
    ) -> tuple[int, list[int]]:
        """Harris two-pass dual ratio test with bound flips.

        Returns ``(entering_column, columns_to_flip)``; entering is -1
        when no eligible column exists (infeasibility candidate).

        Eligibility keeps the reduced-cost signs dual-feasible after the
        pivot.  Breakpoints are walked in ratio order (``|d|/|alpha|``):
        a *boxed* candidate whose flip to the opposite bound still
        leaves the leaving row infeasible is consumed as a bound flip
        (its reduced cost changes sign as the dual step passes its
        breakpoint, and the flip restores its dual feasibility); the
        walk stops at the first breakpoint that would restore primal
        feasibility — there, a Harris second pass picks the
        largest-``|alpha|`` candidate whose exact ratio fits under the
        tolerance-relaxed minimum ratio.  Under Bland's rule the test
        degrades to the textbook first-eligible-column pivot (no flips,
        no relaxation) so the anti-cycling guarantee holds.
        """
        status = self.status
        nonbasic = status != BASIC
        # x_Br must move toward its violated bound: the entering column's
        # own move direction and alpha sign determine eligibility.
        if leaves_at_upper:
            eligible = nonbasic & (
                ((status == AT_LOWER) & (alpha > _PIVOT_TOL))
                | ((status == AT_UPPER) & (alpha < -_PIVOT_TOL))
                | ((status == FREE) & (np.abs(alpha) > _PIVOT_TOL))
            )
        else:
            eligible = nonbasic & (
                ((status == AT_LOWER) & (alpha < -_PIVOT_TOL))
                | ((status == AT_UPPER) & (alpha > _PIVOT_TOL))
                | ((status == FREE) & (np.abs(alpha) > _PIVOT_TOL))
            )
        if banned:
            eligible[list(banned)] = False
        candidates = np.nonzero(eligible)[0]
        if not candidates.size:
            return -1, []
        free_candidates = candidates[status[candidates] == FREE]
        if free_candidates.size:
            # Ratio 0: a FREE column enters immediately (largest pivot).
            if self.bland:
                return int(free_candidates[0]), []
            return int(
                free_candidates[np.argmax(np.abs(alpha[free_candidates]))]
            ), []
        if self.bland:
            return int(candidates[0]), []
        mag = np.abs(alpha[candidates])
        ratios = np.abs(d[candidates]) / mag
        dual_tol = (
            _DUAL_TOL if dtol is None else dtol[candidates]
        )
        relaxed = (np.abs(d[candidates]) + dual_tol) / mag
        order = np.argsort(ratios, kind="stable")
        # Bound-flip walk: flipping the first k breakpoints is allowed
        # while the leaving row stays infeasible afterwards.  Unboxed
        # (and fixed) candidates have an infinite (zero-progress) drop
        # and always stop the walk.
        span = self.ub[candidates] - self.lb[candidates]
        span_sorted = span[order]
        drop = np.where(
            np.isfinite(span_sorted) & (span_sorted > 0),
            mag[order] * span_sorted,
            math.inf,
        )
        consumed = np.cumsum(drop)
        can_flip = consumed <= delta - _FEAS_TOL
        if bool(can_flip.all()):
            # Even flipping every boxed candidate cannot restore this
            # row: no entering column — infeasibility candidate, to be
            # confirmed by the caller's independent certificate.
            return -1, []
        stop = int(np.argmin(can_flip))  # first False in the prefix
        flips = [int(candidates[p]) for p in order[:stop]]
        pool = order[stop:]
        theta_max = float(relaxed[pool].min())
        fits = pool[ratios[pool] <= theta_max]
        pick = int(fits[np.argmax(mag[fits])])
        return int(candidates[pick]), flips

    # ------------------------------------------------------------------
    # Primal simplex phase
    # ------------------------------------------------------------------

    def _primal_phase(self, tol: np.ndarray | None = None) -> LPStatus:
        """Drive out dual infeasibility from a primal-feasible point.

        ``tol`` optionally supplies the per-column dual tolerances of
        the polish pass; the default is the scalar ``_DUAL_TOL``.
        """
        # Columns whose BTRAN-route reduced cost looked profitable but
        # whose (more accurate) FTRAN cross-check said otherwise: noise,
        # not improvement.  Banned until the next basis change moves the
        # duals.  Under Devex pricing the reduced costs are maintained
        # incrementally from the pivot row (which the weight update
        # needs anyway), so a basis change costs one BTRAN + matvec
        # total; Dantzig/Bland recompute d fresh per basis change (the
        # historical behaviour, kept bit-comparable for the benchmark's
        # per-pricing pivot tracking).
        devex = self.pricing == "devex"
        banned: set[int] = set()
        d: np.ndarray | None = None
        pt = self.phase_times
        while self.pivots < self.pivot_limit:
            # Same amortized cancellation poll as the dual phase.
            if self._cancel is not None and (self.pivots & 0x3F) == 0:
                self._cancel.check()
            t0 = time.perf_counter() if pt is not None else 0.0
            if d is None:
                d = self._reduced_costs()
            entering = self._primal_entering(d, banned, tol)
            if pt is not None:
                now = time.perf_counter()
                pt["pricing"] += now - t0
                t0 = now
            if entering < 0:
                return LPStatus.OPTIMAL
            q = entering
            tol_q = _DUAL_TOL if tol is None else float(tol[q])
            w = self._ftran(self.ws.column(q), want_spike=True)
            if pt is not None:
                pt["ftran"] += time.perf_counter() - t0
            # Re-derive the reduced cost through the FTRAN route
            # (c_q - c_B . w): it is exact for the pivot column and
            # filters out BTRAN rounding noise near the tolerance.
            d_ftran = float(self.c[q] - self.c[self.basic] @ w)
            if self.status[q] == AT_LOWER:
                profitable = d_ftran < -tol_q
                direction = 1.0
            elif self.status[q] == AT_UPPER:
                profitable = d_ftran > tol_q
                direction = -1.0
            else:
                profitable = abs(d_ftran) > tol_q
                direction = -1.0 if d_ftran > 0 else 1.0
            if not profitable:
                banned.add(q)
                continue
            t0 = time.perf_counter() if pt is not None else 0.0
            step, leaving, leaves_at_upper = self._primal_ratio(
                q, direction, w, tol
            )
            if pt is not None:
                pt["ratio_test"] += time.perf_counter() - t0
            if step == math.inf:
                return LPStatus.UNBOUNDED
            # The ratio test guarantees |w[leaving]| > _PIVOT_TOL; the
            # remaining risk is a pivot vanishing against the whole
            # transformed column (entering-column accuracy was already
            # cross-checked through d_ftran above).
            if leaving >= 0 and abs(w[leaving]) < 1e-14 * float(
                np.abs(w).max()
            ):
                if self._factor.updates:
                    if not self._refactor():
                        raise _NumericalTrouble
                    self._recompute_basics()
                    d = None  # fresh factors: recompute the duals
                else:
                    # Bad pivot even on fresh factors: try another column.
                    banned.add(q)
                continue
            self.x[self.basic] = self.x[self.basic] - direction * step * w
            self.x[q] += direction * step
            if leaving < 0:
                # Bound flip: the entering column hit its opposite bound.
                # The basis (and the duals) are unchanged, so the cached
                # d and the ban list stay valid.
                self.status[q] = AT_UPPER if direction > 0 else AT_LOWER
                self.x[q] = self.ub[q] if direction > 0 else self.lb[q]
            else:
                leaving_col = int(self.basic[leaving])
                bound = (
                    self.ub[leaving_col] if leaves_at_upper
                    else self.lb[leaving_col]
                )
                self.x[leaving_col] = bound
                self.status[leaving_col] = (
                    AT_UPPER if leaves_at_upper else AT_LOWER
                )
                self.status[q] = BASIC
                if devex and not self.bland:
                    # Pivot row through the *old* basis: one BTRAN +
                    # matvec drives both the Devex weight update and the
                    # incremental dual update.
                    t0 = time.perf_counter() if pt is not None else 0.0
                    unit = np.zeros(self.ws.num_rows)
                    unit[leaving] = 1.0
                    alpha = self.ws.mat_t(self._btran(unit))
                    if pt is not None:
                        pt["btran"] += time.perf_counter() - t0
                    piv = float(w[leaving])
                    theta = d_ftran / piv
                    d = d - theta * alpha
                    d[q] = 0.0
                    d[leaving_col] = -theta
                    self._devex_update(
                        self._devex, q, leaving_col, alpha, piv
                    )
                else:
                    d = None  # basis change: the duals moved
                self.basic[leaving] = q
                if self._apply_pivot(leaving):
                    d = None  # refactored: drop the incremental duals
                banned.clear()
            self.pivots += 1
            self._note_degenerate(step)
        return LPStatus.ERROR

    @staticmethod
    def _devex_update(
        weights: np.ndarray,
        reference: int,
        restart: int,
        vector: np.ndarray,
        pivot: float,
    ) -> None:
        """Devex reference-framework weight update (Forrest–Goldfarb).

        ``gamma_j = max(gamma_j, (vector_j/pivot)^2 * gamma_ref)`` for
        every entry, and ``weights[restart]`` restarts at
        ``max(gamma_ref/pivot^2, 1)``.  Shared by the primal update
        (weights over columns, ``vector`` = pivot row ``alpha``) and the
        dual update (weights over rows, ``vector`` = pivot column ``w``
        — free, since the column is already in hand).  Entries the
        respective pricing loop ignores (basic columns / feasible rows)
        may be touched freely.  The framework resets to all-ones when
        any weight overflows the drift threshold — the standard
        recovery, since overgrown weights no longer approximate
        steepest-edge norms.
        """
        gamma = max(float(weights[reference]), 1.0)
        ref = vector / pivot
        np.maximum(weights, ref * ref * gamma, out=weights)
        weights[restart] = max(gamma / (pivot * pivot), 1.0)
        if float(weights.max()) > _DEVEX_RESET:
            weights.fill(1.0)

    def _primal_entering(
        self,
        d: np.ndarray,
        banned: set[int],
        tol: np.ndarray | None = None,
    ) -> int:
        status = self.status
        threshold = _DUAL_TOL if tol is None else tol
        eligible = (
            ((status == AT_LOWER) & (d < -threshold))
            | ((status == AT_UPPER) & (d > threshold))
            | ((status == FREE) & (np.abs(d) > threshold))
        )
        if banned:
            eligible[list(banned)] = False
        candidates = np.nonzero(eligible)[0]
        if not candidates.size:
            return -1
        if self.bland:
            return int(candidates[0])
        dc = d[candidates]
        if self.pricing == "devex":
            score = dc * dc / self._devex[candidates]
            return int(candidates[np.argmax(score)])
        return int(candidates[np.argmax(np.abs(dc))])

    def _primal_ratio(
        self,
        q: int,
        direction: float,
        w: np.ndarray,
        tol: np.ndarray | None = None,
    ) -> tuple[float, int, bool]:
        """Harris two-pass bounded-variable ratio test.

        Returns ``(step, leaving_row, leaves_at_upper)``; ``leaving_row``
        is -1 for a bound flip (the entering column reaches its own bound
        before any basic column hits one).  Pass one computes the
        maximum step under tolerance-relaxed basic bounds; pass two
        picks the largest-``|w|`` basic candidate whose *exact* ratio
        fits under it (clamped at zero), trading a bounded, tolerance-
        sized bound violation for a much better-conditioned pivot.  The
        entering column's own limit is the distance from its *current
        value* to the bound in the move direction — not the lb..ub span,
        which would let a FREE-parked column (resting away from its
        bounds) overshoot a finite bound.  Under Bland's rule the test
        degrades to the exact lowest-index tie-break (anti-cycling).
        """
        if direction > 0:
            own_limit = self.ub[q] - self.x[q]
        else:
            own_limit = self.x[q] - self.lb[q]
        own_limit = max(own_limit, 0.0) if math.isfinite(own_limit) else math.inf

        xb = self.x[self.basic]
        wb = direction * w
        lo = self.lb[self.basic]
        hi = self.ub[self.basic]
        tau = _FEAS_TOL if tol is None else tol[self.basic]
        with np.errstate(divide="ignore", invalid="ignore"):
            dec = np.where(wb > _PIVOT_TOL, (xb - lo) / wb, math.inf)
            inc = np.where(wb < -_PIVOT_TOL, (hi - xb) / (-wb), math.inf)
            dec_rel = np.where(
                wb > _PIVOT_TOL, (xb - lo + tau) / wb, math.inf
            )
            inc_rel = np.where(
                wb < -_PIVOT_TOL, (hi - xb + tau) / (-wb), math.inf
            )
        limits = np.minimum(dec, inc)
        limits = np.where(np.isnan(limits), math.inf, limits)
        relaxed = np.minimum(dec_rel, inc_rel)
        relaxed = np.where(np.isnan(relaxed), math.inf, relaxed)

        if self.bland:
            # Exact ratio test, lowest basic index among ties: the
            # termination-guaranteeing textbook rule.
            if limits.size:
                tightest = float(limits.min())
                if tightest < own_limit:
                    near = np.nonzero(limits <= tightest + 1e-9)[0]
                    row = int(near[np.argmin(self.basic[near])])
                    return (
                        max(tightest, 0.0), row, bool(inc[row] <= dec[row])
                    )
            return own_limit, -1, False

        theta_max = float(relaxed.min()) if relaxed.size else math.inf
        if own_limit <= theta_max:
            # The entering column's own bound binds first (exactly —
            # bound flips carry no tolerance relaxation).
            blocking = (
                np.nonzero(limits < own_limit)[0] if limits.size else
                np.empty(0, dtype=np.int64)
            )
            if not blocking.size:
                return own_limit, -1, False
        else:
            blocking = np.nonzero(limits <= theta_max)[0]
            if not blocking.size:
                # Every relaxed ratio was driven by sub-tolerance slack;
                # fall back to the exact minimum to stay feasible.
                blocking = np.nonzero(limits <= float(limits.min()))[0]
        row = int(blocking[np.argmax(np.abs(wb[blocking]))])
        step = max(float(limits[row]), 0.0)
        if own_limit <= step:
            return own_limit, -1, False
        return step, row, bool(inc[row] <= dec[row])
