"""Self-contained dense two-phase simplex LP solver.

This backend exists so the MILP substrate is complete without any external
solver: it is used as a cross-check against the HiGHS backend in tests and
as a fallback when scipy is unavailable or distrusted.  It implements the
textbook two-phase primal simplex method with Bland's anti-cycling rule on a
dense numpy tableau.  It is intended for small and medium models (hundreds
of variables); the branch-and-bound solver defaults to the HiGHS backend.

Bounded variables are handled by shifting every variable by its (finite)
lower bound and materializing finite upper bounds as explicit rows.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SolverError
from repro.milp.lp_backend import LPBackend, LPResult, LPStatus
from repro.milp.standard_form import StandardForm

_TOL = 1e-9
_MAX_ITERATIONS = 20000


class DenseSimplexBackend(LPBackend):
    """Two-phase dense simplex backend (see module docstring)."""

    name = "dense-simplex"

    def solve(
        self, form: StandardForm, lb: np.ndarray, ub: np.ndarray
    ) -> LPResult:
        if np.any(np.isneginf(lb)):
            raise SolverError(
                "dense simplex backend requires finite lower bounds"
            )
        if np.any(ub < lb - _TOL):
            return LPResult(LPStatus.INFEASIBLE, None, math.inf, "lb > ub")
        try:
            x, objective, status = _solve_shifted(form, lb, ub)
        except _Unbounded:
            return LPResult(LPStatus.UNBOUNDED, None, -math.inf)
        if status is LPStatus.OPTIMAL:
            return LPResult(LPStatus.OPTIMAL, x, objective + form.c0)
        return LPResult(status, None, math.inf)


class _Unbounded(Exception):
    """Internal signal: phase-2 found an unbounded improving ray."""


def _solve_shifted(
    form: StandardForm, lb: np.ndarray, ub: np.ndarray
) -> tuple[np.ndarray | None, float, LPStatus]:
    """Shift variables by lb, build the equality system and run two phases."""
    num_x = form.num_variables
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []  # "le" or "eq"

    if form.a_ub is not None:
        dense_ub = form.a_ub.toarray()
        shifted = form.b_ub - dense_ub @ lb
        for i in range(dense_ub.shape[0]):
            rows.append(dense_ub[i])
            rhs.append(float(shifted[i]))
            senses.append("le")
    if form.a_eq is not None:
        dense_eq = form.a_eq.toarray()
        shifted = form.b_eq - dense_eq @ lb
        for i in range(dense_eq.shape[0]):
            rows.append(dense_eq[i])
            rhs.append(float(shifted[i]))
            senses.append("eq")
    span = ub - lb
    for j in range(num_x):
        if math.isfinite(span[j]):
            row = np.zeros(num_x)
            row[j] = 1.0
            rows.append(row)
            rhs.append(float(span[j]))
            senses.append("le")

    num_slack = sum(1 for sense in senses if sense == "le")
    num_rows = len(rows)
    num_cols = num_x + num_slack
    a = np.zeros((num_rows, num_cols))
    b = np.array(rhs)
    slack_index = num_x
    for i, (row, sense) in enumerate(zip(rows, senses)):
        a[i, :num_x] = row
        if sense == "le":
            a[i, slack_index] = 1.0
            slack_index += 1

    # Normalize to b >= 0 so artificials start feasible.
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    costs = np.zeros(num_cols)
    costs[:num_x] = form.c

    solution = _two_phase(a, b, costs)
    if solution is None:
        return None, math.inf, LPStatus.INFEASIBLE
    y = solution[:num_x]
    x = y + lb
    objective = float(form.c @ x)
    return x, objective, LPStatus.OPTIMAL


def _two_phase(
    a: np.ndarray, b: np.ndarray, costs: np.ndarray
) -> np.ndarray | None:
    """Run phase 1 + phase 2; return the full column solution or None."""
    num_rows, num_cols = a.shape
    # Phase 1 tableau: [A | I | b] with artificial basis.
    tableau = np.zeros((num_rows, num_cols + num_rows + 1))
    tableau[:, :num_cols] = a
    tableau[:, num_cols:num_cols + num_rows] = np.eye(num_rows)
    tableau[:, -1] = b
    basis = list(range(num_cols, num_cols + num_rows))

    phase1_costs = np.zeros(num_cols + num_rows)
    phase1_costs[num_cols:] = 1.0
    objective = _iterate(tableau, basis, phase1_costs)
    if objective > 1e-7:
        return None

    _drive_out_artificials(tableau, basis, num_cols)
    # Drop artificial columns (keep rhs).
    tableau = np.hstack([tableau[:, :num_cols], tableau[:, -1:]])
    # Rows whose basic variable is still artificial are redundant zero rows.
    keep = [i for i, var in enumerate(basis) if var < num_cols]
    tableau = tableau[keep]
    basis = [basis[i] for i in keep]

    try:
        _iterate(tableau, basis, costs)
    except _Unbounded:
        raise
    solution = np.zeros(num_cols)
    for i, var in enumerate(basis):
        solution[var] = tableau[i, -1]
    return solution


def _iterate(
    tableau: np.ndarray, basis: list[int], costs: np.ndarray
) -> float:
    """Primal simplex iterations with Bland's rule; returns the objective."""
    num_rows = tableau.shape[0]
    num_cols = tableau.shape[1] - 1
    for _ in range(_MAX_ITERATIONS):
        basic_costs = costs[basis]
        reduced = costs[:num_cols] - basic_costs @ tableau[:, :num_cols]
        entering = -1
        for j in range(num_cols):
            if reduced[j] < -_TOL and j not in basis:
                entering = j
                break
        if entering < 0:
            return float(basic_costs @ tableau[:, -1])
        column = tableau[:, entering]
        best_ratio = math.inf
        leaving_row = -1
        for i in range(num_rows):
            if column[i] > _TOL:
                ratio = tableau[i, -1] / column[i]
                better = ratio < best_ratio - _TOL
                tie = (
                    abs(ratio - best_ratio) <= _TOL
                    and leaving_row >= 0
                    and basis[i] < basis[leaving_row]
                )
                if better or tie:
                    best_ratio = ratio
                    leaving_row = i
        if leaving_row < 0:
            raise _Unbounded()
        _pivot(tableau, leaving_row, entering)
        basis[leaving_row] = entering
    raise SolverError("simplex iteration limit exceeded")


def _drive_out_artificials(
    tableau: np.ndarray, basis: list[int], num_real_cols: int
) -> None:
    """Pivot zero-valued artificial basics onto real columns when possible."""
    for i, var in enumerate(basis):
        if var < num_real_cols:
            continue
        row = tableau[i, :num_real_cols]
        candidates = np.nonzero(np.abs(row) > _TOL)[0]
        if candidates.size:
            _pivot(tableau, i, int(candidates[0]))
            basis[i] = int(candidates[0])


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col)."""
    tableau[row] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _TOL:
            tableau[i] -= tableau[i, col] * tableau[row]
