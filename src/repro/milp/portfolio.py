"""Parallel portfolio solving.

The paper's Section 1 argues that mapping join ordering onto MILP buys
parallel optimization "for free" because MILP solvers exploit parallelism.
This module supplies that feature for our self-contained solver in the form
commercial solvers shipped first (Gurobi's concurrent MIP): a *portfolio*
of differently-configured branch-and-bound searches runs on the same model,
incumbents and bounds are shared, and everyone stops as soon as one
configuration closes the gap.

Sharing is sound because every member solves the *same* model:

* the best incumbent over all members is a feasible solution,
* every member's proven lower bound is a valid global lower bound, so the
  maximum over members is too.

Members run in Python threads; the LP backends release the GIL during the
numerical work (HiGHS inside scipy, LAPACK/BLAS inside the revised
simplex), which is where the time goes.  Every member inherits the
default ``backend="auto"`` node-LP engine, so each search in the
portfolio warm-starts its node LPs from parent bases independently — and
because all members solve the *same* standard form, the solver also
wires a shared :class:`~repro.milp.lp_backend.BasisExchangePool` into
every member: the first member to finish its root LP publishes the
optimal basis and the others seed their own sessions from it
(``export_basis``/``install_basis``) instead of each paying the cold
start.  A ``parallel=False`` mode runs members sequentially for
deterministic tests (and maximal pool reuse: every member after the
first fetches a published basis).
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.milp.branch_and_bound import BranchAndBoundSolver, SolverOptions
from repro.milp.lp_backend import BasisExchangePool, SessionStats
from repro.milp.model import Model
from repro.milp.solution import (
    IncumbentEvent,
    MILPSolution,
    SolveStatus,
    optimality_factor,
    relative_gap,
)


@dataclass(frozen=True)
class PortfolioMember:
    """One configuration in the portfolio."""

    name: str
    options: SolverOptions


@dataclass(frozen=True, slots=True)
class PortfolioEvent:
    """An anytime event annotated with the member that produced it."""

    member: str
    time: float
    objective: float
    bound: float
    kind: str


@dataclass
class PortfolioResult:
    """Aggregated outcome of a portfolio solve.

    ``objective``/``values`` come from the best incumbent over all members;
    ``best_bound`` is the strongest proven lower bound.  ``winner`` names
    the member that produced the final incumbent.
    """

    status: SolveStatus
    objective: float
    best_bound: float
    values: dict[str, float]
    winner: str | None
    solve_time: float
    member_results: dict[str, MILPSolution]
    events: list[PortfolioEvent] = field(default_factory=list)
    #: Stats of the shared root-basis exchange pool (``None`` when
    #: sharing was disabled): publishes, hits, misses.
    basis_pool_stats: dict | None = None

    @property
    def gap(self) -> float:
        """Final relative optimality gap."""
        return relative_gap(self.objective, self.best_bound)

    @property
    def optimality_factor(self) -> float:
        """Guaranteed ``cost / lower-bound`` factor (Figure 2's metric)."""
        return optimality_factor(self.objective, self.best_bound)

    def to_milp_solution(self, model: Model | None = None) -> MILPSolution:
        """Fold the portfolio outcome into a single :class:`MILPSolution`.

        Solver-effort counters (nodes, LP solves/pivots/time) sum over the
        members; the incumbent and bound are the pooled best.  Pass the
        solved ``model`` to also materialize the assignment vector ``x``
        from the name-keyed incumbent values.
        """
        x = None
        if model is not None and self.values:
            x = model.assignment_from_names(self.values)
        members = self.member_results.values()
        per_member = [m.session_stats for m in members if m.session_stats]
        session_stats = None
        if per_member:
            pooled = SessionStats()
            for member_stats in per_member:
                pooled.absorb(member_stats)
            session_stats = pooled.as_dict()
        return MILPSolution(
            status=self.status,
            objective=self.objective,
            best_bound=self.best_bound,
            x=x,
            values=dict(self.values),
            node_count=sum(member.node_count for member in members),
            lp_solves=sum(member.lp_solves for member in members),
            lp_pivots=sum(member.lp_pivots for member in members),
            lp_time=sum(member.lp_time for member in members),
            solve_time=self.solve_time,
            events=[
                IncumbentEvent(e.time, e.objective, e.bound, e.kind)
                for e in self.events
            ],
            session_stats=session_stats,
        )


def default_portfolio(
    time_limit: float = 60.0, gap_tolerance: float = 1e-6
) -> list[PortfolioMember]:
    """The standard four-member portfolio.

    Diversity follows the concurrent-MIP playbook: vary node selection,
    branching rule, and root-level effort so that different problem shapes
    favour different members.
    """
    common = {"time_limit": time_limit, "gap_tolerance": gap_tolerance}
    return [
        PortfolioMember(
            "best_bound",
            SolverOptions(**common),
        ),
        PortfolioMember(
            "dfs_pseudocost",
            SolverOptions(
                **common, node_selection="dfs", branching="pseudocost"
            ),
        ),
        PortfolioMember(
            "cut_and_branch",
            SolverOptions(**common, cuts=True),
        ),
        PortfolioMember(
            "aggressive_diving",
            SolverOptions(**common, dive_frequency=10, max_dive_depth=800),
        ),
    ]


class _SharedState:
    """Thread-safe incumbent/bound pool with cooperative stop."""

    def __init__(self, gap_tolerance: float) -> None:
        self._lock = threading.Lock()
        self._gap_tolerance = gap_tolerance
        self.best_objective = math.inf
        self.best_values: dict[str, float] = {}
        self.best_member: str | None = None
        self.best_bound = -math.inf
        self.stop_event = threading.Event()
        self.events: list[PortfolioEvent] = []
        # Objective of the incumbent whose values are currently stored;
        # event callbacks can lower best_objective before the full value
        # vector is available from the member's final result.
        self._values_objective = math.inf

    def record(self, member: str, event: IncumbentEvent, elapsed: float) -> None:
        """Merge one member event into the pool; trip the stop when done."""
        with self._lock:
            self.events.append(
                PortfolioEvent(
                    member=member,
                    time=elapsed,
                    objective=event.objective,
                    bound=event.bound,
                    kind=event.kind,
                )
            )
            if (
                event.kind == "incumbent"
                and event.objective < self.best_objective - 1e-12
            ):
                self.best_objective = event.objective
            if event.bound > self.best_bound:
                self.best_bound = event.bound
            gap = relative_gap(self.best_objective, self.best_bound)
            if gap <= self._gap_tolerance:
                self.stop_event.set()

    def absorb_result(self, member: str, result: MILPSolution) -> None:
        """Fold a member's final incumbent/bound into the pool."""
        with self._lock:
            if result.status.has_solution:
                if result.objective < self.best_objective - 1e-12:
                    self.best_objective = result.objective
                if result.objective < self._values_objective - 1e-12:
                    self._values_objective = result.objective
                    self.best_values = dict(result.values)
                    self.best_member = member
            if (
                result.status is not SolveStatus.INFEASIBLE
                and result.best_bound > self.best_bound
            ):
                self.best_bound = result.best_bound
            if result.status is SolveStatus.OPTIMAL:
                self.stop_event.set()


class PortfolioSolver:
    """Run several solver configurations on one model concurrently.

    Parameters
    ----------
    model:
        The MILP to minimize.  The model is shared read-only between
        members.
    members:
        Portfolio configurations; defaults to :func:`default_portfolio`.
    gap_tolerance:
        Portfolio-level stop criterion on the shared gap.
    parallel:
        Run members in threads (default) or sequentially (deterministic,
        used by tests and ablations).
    share_bases:
        Wire a shared :class:`BasisExchangePool` into every member so
        their root LPs seed each other (on by default; disable for A/B
        measurements of the exchange).
    """

    def __init__(
        self,
        model: Model,
        members: Sequence[PortfolioMember] | None = None,
        gap_tolerance: float = 1e-6,
        parallel: bool = True,
        share_bases: bool = True,
    ) -> None:
        self.model = model
        self.members = (
            list(members) if members is not None else default_portfolio()
        )
        if not self.members:
            raise ValueError("portfolio needs at least one member")
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise ValueError("portfolio member names must be unique")
        self.gap_tolerance = gap_tolerance
        self.parallel = parallel
        self.share_bases = share_bases

    def solve(
        self, warm_start: "dict[str, float] | None" = None
    ) -> PortfolioResult:
        """Minimize the model with every member; return the pooled result."""
        started = time.monotonic()
        shared = _SharedState(self.gap_tolerance)
        basis_pool = BasisExchangePool() if self.share_bases else None
        results: dict[str, MILPSolution] = {}

        def run_member(member: PortfolioMember) -> None:
            options = self._member_options(member, shared, basis_pool)
            solver = BranchAndBoundSolver(self.model, options)

            def callback(event: IncumbentEvent) -> None:
                shared.record(member.name, event, time.monotonic() - started)

            result = solver.solve(warm_start=warm_start, callback=callback)
            results[member.name] = result
            shared.absorb_result(member.name, result)

        if self.parallel:
            threads = [
                threading.Thread(
                    target=run_member, args=(member,), daemon=True
                )
                for member in self.members
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for member in self.members:
                if shared.stop_event.is_set():
                    break
                run_member(member)

        solve_time = time.monotonic() - started
        return self._aggregate(shared, results, solve_time, basis_pool)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _member_options(
        self,
        member: PortfolioMember,
        shared: _SharedState,
        basis_pool: BasisExchangePool | None,
    ) -> SolverOptions:
        """Clone the member options with the cooperative stop and the
        shared basis pool installed."""
        options = member.options
        user_stop = options.stop_check
        stop_event = shared.stop_event

        def stop_check() -> bool:
            if stop_event.is_set():
                return True
            return user_stop() if user_stop is not None else False

        cloned = SolverOptions(**{
            name: getattr(options, name)
            for name in SolverOptions.__dataclass_fields__
        })
        cloned.stop_check = stop_check
        if basis_pool is not None and cloned.basis_pool is None:
            cloned.basis_pool = basis_pool
        return cloned

    def _aggregate(
        self,
        shared: _SharedState,
        results: dict[str, MILPSolution],
        solve_time: float,
        basis_pool: BasisExchangePool | None = None,
    ) -> PortfolioResult:
        best_objective = shared.best_objective
        best_bound = shared.best_bound
        if all(
            result.status is SolveStatus.INFEASIBLE
            for result in results.values()
        ):
            status = SolveStatus.INFEASIBLE
        elif math.isinf(best_objective):
            status = SolveStatus.NO_SOLUTION
        else:
            # Never report a bound above the incumbent.
            best_bound = min(best_bound, best_objective)
            closed = relative_gap(best_objective, best_bound) <= max(
                self.gap_tolerance, 1e-9
            )
            proved = any(
                result.status is SolveStatus.OPTIMAL
                and result.objective <= best_objective + 1e-9
                for result in results.values()
            )
            status = (
                SolveStatus.OPTIMAL
                if (closed or proved)
                else SolveStatus.FEASIBLE
            )
            if status is SolveStatus.OPTIMAL:
                best_bound = best_objective
        return PortfolioResult(
            status=status,
            objective=best_objective,
            best_bound=best_bound,
            values=dict(shared.best_values),
            winner=shared.best_member,
            solve_time=solve_time,
            member_results=results,
            events=list(shared.events),
            basis_pool_stats=(
                basis_pool.as_dict() if basis_pool is not None else None
            ),
        )


def solve_portfolio(
    model: Model,
    members: Sequence[PortfolioMember] | None = None,
    time_limit: float = 60.0,
    parallel: bool = True,
) -> PortfolioResult:
    """Convenience wrapper mirroring :func:`repro.milp.solve_milp`."""
    if members is None:
        members = default_portfolio(time_limit)
    return PortfolioSolver(model, members, parallel=parallel).solve()
