"""End-to-end tracing for the optimizer and its serving stack.

The serving pipeline spans six layers (HTTP → scheduler → coalescer →
resilience ladder → ``OptimizerService`` → B&B/simplex); aggregate
counters cannot say *which* layer a slow request spent its time in.
This package records one derivation trace per request — the span/event
model of *Provenance Traces* (Cheney et al.), applied to optimizer
decisions instead of database tuples: every span names the decision
point that consumed the time, every event a discrete solver fact
(node opened, incumbent improved, basis adopted, fault injected).

Design constraints, in the order they drove the shape:

* **Disabled tracing is one global read** — the same discipline as
  :func:`repro.faultinject.check`.  Every public entry point reads
  ``_active`` once; when no tracer is installed the call returns a
  shared no-op object and touches nothing else, so instrumentation can
  stay in production hot paths permanently.
* **Dependency-light leaf** (ARCH-002): stdlib only, importable from
  the deepest simplex loop and the HTTP front end alike without
  creating a cycle.
* **Monotonic clocks**: span intervals use ``time.perf_counter``; one
  wall-clock anchor per trace converts to absolute microseconds at
  export time, so intra-trace ordering is immune to clock steps.
* **Thread-local span stacks with explicit handoff**: nesting inside
  one thread is implicit (:func:`span`); crossing the serve worker
  pool is explicit — the submitting thread captures a :class:`Span`,
  parks it on the request, and the worker re-enters it with
  :func:`attach`.  The stack is thread-local, so a context survives
  blocking waits (``CancelToken.wait`` in the retry ladder's backoff)
  on the same thread by construction.
* **Bounded, lock-cheap ring buffer**: completed traces land in a
  preallocated ring; the lock is held only to claim a slot index.
  Memory is O(capacity × per-trace span cap) regardless of traffic.
* **Sampling**: ``all`` keeps everything, ``head`` keeps every N-th
  trace (decided at start — unsampled requests pay nothing further),
  ``slow`` records everything but keeps only traces whose root
  exceeded a threshold (decided at completion; the right mode for
  "why was *that* request slow?" in production).

Usage, serving side::

    obs.install(Tracer(sample="slow", slow_ms=250.0))
    root = obs.start_trace("request", algorithm="milp")   # submit thread
    ...
    with obs.attach(root):                                 # worker thread
        with obs.span("rung", rung="warm-simplex"):
            obs.event("bnb.incumbent", objective=41.5)
    root.finish()

Exports: Chrome trace-event JSON (Perfetto-loadable) and JSONL — see
:mod:`repro.obs.export` — surfaced through ``GET /debug/traces`` and
the ``repro trace`` CLI subcommand.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, ContextManager, Iterator

__all__ = [
    "EVENT_CAP",
    "SAMPLE_MODES",
    "SPAN_CAP",
    "Span",
    "Trace",
    "Tracer",
    "active",
    "attach",
    "clear",
    "continue_trace",
    "current",
    "current_trace_id",
    "enabled",
    "event",
    "install",
    "serialize_context",
    "simplex_phases_enabled",
    "span",
    "start_trace",
    "tracer_from_env",
    "tracing",
]

#: Sampling modes accepted by :class:`Tracer` (``slow-only`` is a
#: documented alias for ``slow``).
SAMPLE_MODES = ("all", "head", "slow")

#: Per-span bound on recorded events: a B&B run can open thousands of
#: nodes, and a trace must stay O(1) memory per request.  Overflow is
#: counted, never silently dropped (``events_dropped`` attribute).
EVENT_CAP = 512

#: Per-trace bound on spans, same rationale.
SPAN_CAP = 2048

_ids = itertools.count(1)


def _next_id(prefix: str) -> str:
    # itertools.count.__next__ is atomic under the GIL: no lock needed.
    return f"{prefix}{next(_ids):08x}"


class _NullSpan:
    """Shared no-op stand-in when tracing is off or unsampled.

    Every method returns cheaply (child spans return the singleton
    itself), so call sites never branch on whether tracing is live.
    """

    __slots__ = ()

    trace_id: str | None = None
    span_id = ""
    name = ""

    def annotate(self, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def child(self, name: str, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self, **attrs: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: The singleton no-op span.
NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager for the disabled/unsampled path.

    A ``@contextmanager`` allocates a generator plus a wrapper object on
    every call even when tracing is off; this singleton keeps the
    dormant cost of a ``with obs.span(...)`` site to the enabled check
    itself.
    """

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class Span:
    """One timed interval inside a :class:`Trace`.

    Spans are created via :meth:`child` (explicit, cross-thread safe)
    or the :func:`span` context manager (implicit nesting through the
    thread-local stack).  ``start``/``end`` are ``perf_counter``
    readings; the owning trace's wall anchor converts them at export.
    """

    __slots__ = (
        "trace", "span_id", "parent_id", "name",
        "start", "end", "thread", "attrs", "events", "events_dropped",
    )

    def __init__(
        self, trace: "Trace", name: str, parent_id: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self.trace = trace
        self.span_id = _next_id("s")
        self.parent_id = parent_id
        self.name = name
        self.start = time.perf_counter()
        self.end: float | None = None
        self.thread = threading.get_ident()
        self.attrs = attrs
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self.events_dropped = 0

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value attributes (breaker state, hit/miss, ...)."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event on this span, bounded by
        :data:`EVENT_CAP` (overflow is counted, not silently lost)."""
        if len(self.events) >= EVENT_CAP:
            self.events_dropped += 1
            return
        self.events.append((time.perf_counter(), name, attrs))

    def child(self, name: str, **attrs: Any) -> "Span | _NullSpan":
        """Start a child span (caller finishes it explicitly).

        Safe across threads: the child records the *creating* thread
        and registers with the trace under the trace's lock.  This is
        the primitive for spans that start on one thread and end on
        another (queue-wait: submitted on the client thread, finished
        by the worker that dequeues the request).
        """
        return self.trace._open(name, self.span_id, attrs)

    def finish(self, **attrs: Any) -> None:
        """Close the span; finishing a root span completes the trace
        (sampling verdict + ring-buffer publication).  Idempotent."""
        if self.end is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        self.end = time.perf_counter()
        if self.events_dropped:
            self.attrs["events_dropped"] = self.events_dropped
        if self.parent_id is None:
            self.trace._complete()

    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration_ms():.2f}ms"
        return f"<Span {self.name} {self.span_id} {state}>"


class Trace:
    """All spans of one traced request, shareable across threads."""

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        trace_id: str | None = None,
    ) -> None:
        self.tracer = tracer
        #: ``trace_id`` override: a trace continued from a serialized
        #: context (another process's root) keeps the originator's id,
        #: so hub and shard halves of one request correlate by id.
        self.trace_id = trace_id or _next_id("t")
        #: Wall-clock anchor paired with the root's ``perf_counter``
        #: start: exports map monotonic offsets onto absolute time.
        self.started_wall = time.time()
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.spans_dropped = 0
        self.root = self._open(name, None, attrs)

    def _open(
        self, name: str, parent_id: str | None, attrs: dict[str, Any]
    ) -> Span | _NullSpan:
        span = Span(self, name, parent_id, attrs)
        with self._lock:
            if len(self.spans) >= SPAN_CAP:
                self.spans_dropped += 1
                return NULL_SPAN
            self.spans.append(span)
        return span

    def _complete(self) -> None:
        self.tracer._completed(self)

    def duration_ms(self) -> float:
        return self.root.duration_ms()

    def snapshot_spans(self) -> list[Span]:
        with self._lock:
            return list(self.spans)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (the JSONL export row)."""
        root_start = self.root.start
        spans = []
        for span in self.snapshot_spans():
            end = span.end if span.end is not None else span.start
            spans.append({
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "thread": span.thread,
                "start_ms": (span.start - root_start) * 1000.0,
                "duration_ms": max(0.0, (end - span.start) * 1000.0),
                "attrs": dict(span.attrs),
                "events": [
                    {
                        "name": name,
                        "at_ms": (at - root_start) * 1000.0,
                        "attrs": dict(attrs),
                    }
                    for at, name, attrs in span.events
                ],
            })
        with self._lock:
            dropped = self.spans_dropped
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "started_unix": self.started_wall,
            "duration_ms": self.duration_ms(),
            "spans": spans,
        }
        if dropped:
            out["spans_dropped"] = dropped
        return out

    def breakdown(self) -> list[tuple[str, float, int]]:
        """``(span name, total ms, count)`` rows, slowest first — the
        slow-request log line's payload.

        Aggregated by name: a B&B request holds hundreds of ``lp.solve``
        spans, and a log line listing each one individually is unreadable
        and truncation-prone.
        """
        totals: dict[str, tuple[float, int]] = {}
        for span in self.snapshot_spans():
            total, count = totals.get(span.name, (0.0, 0))
            totals[span.name] = (total + span.duration_ms(), count + 1)
        return sorted(
            (
                (name, round(total, 2), count)
                for name, (total, count) in totals.items()
            ),
            key=lambda row: row[1],
            reverse=True,
        )


class Tracer:
    """Sampling policy plus the bounded ring buffer of kept traces.

    Thread-safe.  The ring lock is held only to claim a slot index and
    bump counters; the trace object itself is already fully built when
    published, so writers never block each other on payload work.
    """

    def __init__(
        self,
        sample: str = "all",
        head_rate: int = 10,
        slow_ms: float = 250.0,
        capacity: int = 256,
    ) -> None:
        mode = sample.strip().lower().replace("slow-only", "slow")
        if mode not in SAMPLE_MODES:
            raise ValueError(
                f"sample must be one of {SAMPLE_MODES}, got {sample!r}"
            )
        if head_rate < 1:
            raise ValueError("head_rate must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample = mode
        self.head_rate = head_rate
        self.slow_ms = float(slow_ms)
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: list[Trace | None] = [None] * capacity
        self._next = 0
        self._started = 0
        self._kept = 0
        self._discarded = 0

    def start_trace(
        self, name: str, **attrs: Any
    ) -> Span | _NullSpan:
        """Root span of a new trace, or :data:`NULL_SPAN` when head
        sampling skips this request (everything downstream no-ops)."""
        with self._lock:
            index = self._started
            self._started += 1
        if self.sample == "head" and index % self.head_rate:
            return NULL_SPAN
        return Trace(self, name, attrs).root

    def continue_trace(
        self, name: str, context: dict[str, Any], **attrs: Any
    ) -> Span | _NullSpan:
        """Root span of a trace *continued* from a serialized context.

        The cross-process half of trace handoff: the hub serializes its
        root span with :func:`serialize_context`, ships it over the
        shard wire, and the shard re-roots here under the same
        ``trace_id``.  Head sampling is bypassed on purpose — the
        upstream already made the sampling decision; dropping the
        continuation here would orphan a sampled trace.
        """
        with self._lock:
            self._started += 1
        trace_id = str(context.get("trace_id") or "") or None
        attrs.setdefault("remote_parent", str(context.get("span_id") or ""))
        return Trace(self, name, attrs, trace_id=trace_id).root

    def _completed(self, trace: Trace) -> None:
        if self.sample == "slow" and trace.duration_ms() < self.slow_ms:
            with self._lock:
                self._discarded += 1
            return
        with self._lock:
            slot = self._next % self.capacity
            self._next += 1
            self._kept += 1
        # Slot publication outside the index claim: a single list-item
        # assignment (atomic under the GIL), so two writers touch
        # distinct slots and readers see either the old or new trace.
        self._ring[slot] = trace

    def traces(self) -> list[Trace]:
        """Kept traces, oldest first (a snapshot; the ring keeps
        rolling underneath)."""
        with self._lock:
            head = self._next
        ordered: list[Trace] = []
        for offset in range(self.capacity):
            trace = self._ring[(head + offset) % self.capacity]
            if trace is not None:
                ordered.append(trace)
        return ordered

    def find(self, trace_id: str) -> Trace | None:
        for trace in self.traces():
            if trace.trace_id == trace_id:
                return trace
        return None

    def clear_buffer(self) -> None:
        with self._lock:
            self._next = 0
        for slot in range(self.capacity):
            self._ring[slot] = None

    def stats(self) -> dict[str, int | str | float]:
        with self._lock:
            return {
                "sample": self.sample,
                "slow_ms": self.slow_ms,
                "capacity": self.capacity,
                "started": self._started,
                "kept": self._kept,
                "discarded": self._discarded,
            }


# ---------------------------------------------------------------------------
# Process-global activation (the repro.faultinject discipline)
# ---------------------------------------------------------------------------

_active: Tracer | None = None
_install_lock = threading.Lock()


def _reset_after_fork() -> None:
    """Fork hygiene for sharded serving (``repro.serve.shard``).

    A forked shard child inherits the parent's tracer (whose ring
    buffer the parent keeps mutating — traces would be split across
    two processes' buffers) and possibly a lock frozen mid-acquire.
    Start the child clean; ``shard_main`` reinstalls from the
    environment (:func:`tracer_from_env`) so shard traces land in the
    shard's own buffer and travel back over the wire by id.
    """
    global _active, _install_lock
    _install_lock = threading.Lock()
    _active = None
    _tls.__dict__.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_after_fork)


def install(tracer: Tracer) -> None:
    """Activate ``tracer`` process-wide (replaces any previous one)."""
    global _active
    with _install_lock:
        _active = tracer


def clear() -> None:
    """Deactivate tracing; instrumented sites go back to one-read no-ops."""
    global _active
    with _install_lock:
        _active = None


def active() -> Tracer | None:
    """The installed tracer (``None`` when tracing is off)."""
    return _active


def enabled() -> bool:
    return _active is not None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped activation: ``with tracing(Tracer()): ...`` (always clears)."""
    install(tracer)
    try:
        yield tracer
    finally:
        clear()


# ---------------------------------------------------------------------------
# Thread-local span stack + explicit cross-thread handoff
# ---------------------------------------------------------------------------

_tls = threading.local()


def _stack() -> list[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current() -> Span | None:
    """This thread's innermost live span (``None`` outside any trace)."""
    if _active is None:
        return None
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def current_trace_id() -> str | None:
    span = current()
    return span.trace_id if span is not None else None


def start_trace(name: str, **attrs: Any) -> Span | _NullSpan:
    """Open a new root span on the installed tracer (no-op when off).

    The root is *not* pushed on this thread's stack — the caller parks
    it on the request object and every participating thread enters it
    with :func:`attach`.  Finish it explicitly when the request
    resolves.
    """
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return tracer.start_trace(name, **attrs)


def serialize_context(
    span: Span | _NullSpan | None,
) -> dict[str, str] | None:
    """JSON-safe handoff context for ``span``, ``None`` when unsampled.

    The wire-format half of cross-process tracing: two plain strings
    (``trace_id``, ``span_id``) that ship inside a shard request frame.
    ``None`` (no tracing, or the request was not sampled) tells the
    remote side to skip tracing for this request too.
    """
    if span is None or isinstance(span, _NullSpan) or not span.trace_id:
        return None
    return {"trace_id": span.trace_id, "span_id": span.span_id}


def continue_trace(
    name: str, context: dict[str, Any] | None, **attrs: Any
) -> Span | _NullSpan:
    """Open a root span continuing a remote trace (no-op when off).

    With a context from :func:`serialize_context`, the new root adopts
    the remote ``trace_id`` (bypassing head sampling — the originator
    already sampled this request in).  Without one, this degrades to
    :func:`start_trace`, so call sites need not branch.
    """
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    if not context:
        return tracer.start_trace(name, **attrs)
    return tracer.continue_trace(name, context, **attrs)


def attach(
    span: Span | _NullSpan | None,
) -> "ContextManager[Span | _NullSpan]":
    """Adopt a handed-off span as this thread's current context.

    The explicit handoff across the serve worker pool: the submitting
    thread captures the root via :func:`start_trace`, the worker wraps
    its processing in ``with attach(request.trace): ...`` so nested
    :func:`span`/:func:`event` calls parent correctly.  ``None`` and
    :data:`NULL_SPAN` attach as no-ops.
    """
    if span is None or isinstance(span, _NullSpan) or _active is None:
        return _NULL_CONTEXT
    return _attach_live(span)


@contextmanager
def _attach_live(span: Span) -> Iterator[Span]:
    stack = _stack()
    stack.append(span)
    try:
        yield span
    finally:
        stack.pop()


def span(
    name: str, **attrs: Any
) -> "ContextManager[Span | _NullSpan]":
    """Timed child span under this thread's current context.

    One global read (and a shared no-op context) when tracing is off; a
    no-op without a parent context when the surrounding request was not
    sampled — so leaf instrumentation never creates orphan spans.
    """
    if _active is None:
        return _NULL_CONTEXT
    stack = getattr(_tls, "stack", None)
    if not stack:
        return _NULL_CONTEXT
    return _span_live(stack, name, attrs)


@contextmanager
def _span_live(
    stack: list, name: str, attrs: dict
) -> Iterator[Span | _NullSpan]:
    child = stack[-1].child(name, **attrs)
    if isinstance(child, _NullSpan):
        yield child
        return
    stack.append(child)
    try:
        yield child
    finally:
        stack.pop()
        child.finish()


def event(name: str, **attrs: Any) -> None:
    """Instant event on the current span (one global read when off)."""
    if _active is None:
        return
    stack = getattr(_tls, "stack", None)
    if stack:
        stack[-1].event(name, **attrs)


# ---------------------------------------------------------------------------
# Environment knobs (documented in docs/operations.md — rule REG-001)
# ---------------------------------------------------------------------------

_FALSEY = ("", "0", "false", "off", "no")


def tracer_from_env() -> Tracer | None:
    """Build a tracer from ``REPRO_TRACE*`` knobs, ``None`` when off.

    ``REPRO_TRACE`` selects the mode (``all``/``head``/``slow`` —
    ``slow-only``, ``1``, ``true`` and ``on`` are accepted aliases);
    ``REPRO_TRACE_HEAD_RATE``, ``REPRO_TRACE_SLOW_MS`` and
    ``REPRO_TRACE_BUFFER`` tune sampling and retention.
    """
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    if raw in _FALSEY:
        return None
    if raw in ("1", "true", "on"):
        raw = "all"
    if raw == "slow-only":
        raw = "slow"
    if raw not in SAMPLE_MODES:
        raise ValueError(
            f"REPRO_TRACE must be off or one of {SAMPLE_MODES}, got {raw!r}"
        )
    head_rate = int(os.environ.get("REPRO_TRACE_HEAD_RATE", "10") or "10")
    slow_ms = float(os.environ.get("REPRO_TRACE_SLOW_MS", "250") or "250")
    capacity = int(os.environ.get("REPRO_TRACE_BUFFER", "256") or "256")
    return Tracer(
        sample=raw, head_rate=head_rate, slow_ms=slow_ms, capacity=capacity
    )


def simplex_phases_enabled() -> bool:
    """Whether ``REPRO_TRACE_SIMPLEX_PHASES`` asks the simplex engine
    to accumulate per-phase (pricing/FTRAN/BTRAN/ratio-test) wall time
    into its session stats.  Opt-in: the timing calls sit inside the
    pivot loop, and even cheap clock reads add up there."""
    raw = os.environ.get("REPRO_TRACE_SIMPLEX_PHASES", "").strip().lower()
    return raw not in _FALSEY
