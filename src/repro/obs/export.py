"""Trace exports: Chrome trace-event JSON (Perfetto) and JSONL.

The Chrome trace-event format is the lingua franca of timeline
viewers — ``ui.perfetto.dev`` and ``chrome://tracing`` both load it
directly.  Spans become complete (``ph="X"``) events with absolute
microsecond timestamps (each trace's wall-clock anchor plus the span's
monotonic offset, so intra-trace ordering is exact even across clock
steps); span events become thread-scoped instants (``ph="i"``).  One
"process" per trace keeps concurrent requests on separate tracks, with
the worker threads that touched the request as its rows.

JSONL is the machine-readable sibling: one self-contained trace dict
per line (see :meth:`repro.obs.Trace.as_dict`), greppable and
streamable where the Chrome format wants the whole array in memory.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs import Trace

__all__ = ["chrome_trace", "render_chrome", "render_jsonl", "summarize"]


def chrome_trace(traces: Iterable[Trace]) -> dict[str, Any]:
    """The Chrome trace-event payload for ``traces`` as a dict."""
    events: list[dict[str, Any]] = []
    for pid, trace in enumerate(traces, start=1):
        root = trace.root
        # Absolute µs = wall anchor + monotonic offset from the root.
        anchor_us = trace.started_wall * 1e6

        def to_us(perf: float) -> float:
            return anchor_us + (perf - root.start) * 1e6

        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{root.name} {trace.trace_id}"},
        })
        for span in trace.snapshot_spans():
            end = span.end if span.end is not None else span.start
            events.append({
                "name": span.name,
                "cat": root.name,
                "ph": "X",
                "ts": to_us(span.start),
                "dur": max(0.0, (end - span.start) * 1e6),
                "pid": pid,
                "tid": span.thread,
                "args": {"trace_id": trace.trace_id, **span.attrs},
            })
            for at, name, attrs in span.events:
                events.append({
                    "name": name,
                    "cat": root.name,
                    "ph": "i",
                    "s": "t",
                    "ts": to_us(at),
                    "pid": pid,
                    "tid": span.thread,
                    "args": dict(attrs),
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome(traces: Iterable[Trace]) -> str:
    """Chrome trace-event JSON text (drop into ui.perfetto.dev)."""
    return json.dumps(chrome_trace(traces), default=str)


def render_jsonl(traces: Iterable[Trace]) -> str:
    """One JSON object per trace per line (trailing newline included)."""
    lines = [json.dumps(trace.as_dict(), default=str) for trace in traces]
    return "\n".join(lines) + ("\n" if lines else "")


def summarize(traces: Iterable[Trace], top: int = 10) -> list[dict[str, Any]]:
    """Top span names by total wall time across ``traces``.

    The ``repro trace`` CLI's table: where did the workload's time go,
    aggregated over every sampled request.
    """
    totals: dict[str, dict[str, float]] = {}
    for trace in traces:
        for span in trace.snapshot_spans():
            row = totals.setdefault(
                span.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            duration = span.duration_ms()
            row["count"] += 1
            row["total_ms"] += duration
            row["max_ms"] = max(row["max_ms"], duration)
    ranked = sorted(
        totals.items(), key=lambda item: item[1]["total_ms"], reverse=True
    )
    return [
        {
            "name": name,
            "count": int(row["count"]),
            "total_ms": round(row["total_ms"], 3),
            "mean_ms": round(row["total_ms"] / row["count"], 3),
            "max_ms": round(row["max_ms"], 3),
        }
        for name, row in ranked[:top]
    ]
