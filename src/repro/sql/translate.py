"""Translate parsed SQL into optimizer :class:`~repro.catalog.query.Query`
objects, deriving predicate selectivities from column statistics.

Selectivity rules (System R defaults, Selinger et al.):

* equi-join ``a.x = b.y``: ``1 / max(distinct(x), distinct(y))``;
* equality selection ``t.x = literal``: ``1 / distinct(x)``;
* inequality / range selection: 1/3;
* unknown distinct counts fall back to a tenth of the table cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.histogram import join_selectivity
from repro.catalog.predicate import Predicate
from repro.catalog.query import Query
from repro.catalog.table import Table
from repro.exceptions import QueryValidationError
from repro.sql.ast_nodes import (
    ColumnRef,
    Comparison,
    InListPredicate,
    SelectStatement,
)
from repro.sql.parser import parse_sql
from repro.sql.schema import Schema

#: System R's default selectivity for range predicates.
RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass
class Translator:
    """Stateful translation of one statement against a schema."""

    schema: Schema

    def translate(self, statement: SelectStatement, name: str = "") -> Query:
        """Build a :class:`Query` from a parsed statement.

        Statements with subqueries must first be decomposed into SPJ
        blocks (:mod:`repro.sql.unnest`); aggregates and GROUP BY do not
        constrain the join order and only contribute required columns.
        """
        if statement.is_nested:
            raise QueryValidationError(
                "statement contains subqueries; decompose it with "
                "repro.sql.unnest before optimizing"
            )
        bindings = self._resolve_tables(statement)
        predicates = []
        for index, comparison in enumerate(statement.predicates):
            predicates.append(
                self._translate_comparison(comparison, bindings, index)
            )
        for offset, in_list in enumerate(statement.in_lists):
            predicates.append(
                self._translate_in_list(
                    in_list, bindings, len(statement.predicates) + offset
                )
            )
        required = self._resolve_projection(statement, bindings)
        return Query(
            tables=tuple(bindings[b] for b in sorted(bindings)),
            predicates=tuple(predicates),
            required_columns=required,
            name=name or "sql-query",
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def _resolve_tables(self, statement) -> dict[str, Table]:
        bindings: dict[str, Table] = {}
        self._base_names: dict[str, str] = {}
        for ref in statement.tables:
            if ref.binding in bindings:
                raise QueryValidationError(
                    f"duplicate table binding {ref.binding!r}; use aliases"
                )
            self._base_names[ref.binding] = ref.name
            base = self.schema.table(ref.name)
            if ref.binding != base.name:
                # Materialize the alias as a renamed table.
                base = Table(
                    name=ref.binding,
                    cardinality=base.cardinality,
                    columns=base.columns,
                    tuple_size=base.tuple_size,
                )
            bindings[ref.binding] = base
        return bindings

    def _resolve_column(
        self, ref: ColumnRef, bindings: dict[str, Table]
    ) -> tuple[str, str]:
        if ref.table is not None:
            if ref.table not in bindings:
                raise QueryValidationError(
                    f"unknown table {ref.table!r} in column reference"
                )
            table = bindings[ref.table]
            if not table.has_column(ref.column):
                raise QueryValidationError(
                    f"table {ref.table!r} has no column {ref.column!r}"
                )
            return ref.table, ref.column
        owners = [
            binding
            for binding, table in bindings.items()
            if table.has_column(ref.column)
        ]
        if not owners:
            raise QueryValidationError(
                f"column {ref.column!r} not found in any query table"
            )
        if len(owners) > 1:
            raise QueryValidationError(
                f"column {ref.column!r} is ambiguous between "
                f"{sorted(owners)}"
            )
        return owners[0], ref.column

    def _resolve_projection(self, statement, bindings):
        if statement.is_select_star:
            return ()
        resolved: list[tuple[str, str]] = []
        for column in statement.columns:
            resolved.append(self._resolve_column(column, bindings))
        # Aggregate arguments and grouping columns must survive projection
        # for the aggregation stage that runs after the joins.
        for aggregate in statement.aggregates:
            if aggregate.argument is not None:
                resolved.append(
                    self._resolve_column(aggregate.argument, bindings)
                )
        for column in statement.group_by:
            resolved.append(self._resolve_column(column, bindings))
        for having in statement.having:
            if having.aggregate.argument is not None:
                resolved.append(
                    self._resolve_column(having.aggregate.argument, bindings)
                )
        unique: dict[tuple[str, str], None] = {}
        for item in resolved:
            unique.setdefault(item, None)
        return tuple(unique)

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------

    def _distinct(self, binding: str, column: str, bindings) -> float:
        table = bindings[binding]
        info = table.column(column)
        if info.distinct_values is not None:
            return float(info.distinct_values)
        histogram = self._histogram(binding, column)
        if histogram is not None:
            return max(1.0, histogram.distinct_values)
        return max(1.0, table.cardinality / 10.0)

    def _histogram(self, binding: str, column: str):
        """Histogram attached to the base table behind ``binding``."""
        base_names = getattr(self, "_base_names", {})
        base = base_names.get(binding, binding)
        return self.schema.histogram_for(base, column)

    def _translate_comparison(
        self, comparison: Comparison, bindings, index: int
    ) -> Predicate:
        left = self._resolve_column(comparison.left, bindings)
        name = f"sql_p{index}"
        if comparison.is_join:
            right = self._resolve_column(comparison.right, bindings)
            if left[0] == right[0]:
                raise QueryValidationError(
                    "self-join predicates within one binding are not "
                    "supported; alias the second occurrence"
                )
            if comparison.operator == "=":
                left_histogram = self._histogram(left[0], left[1])
                right_histogram = self._histogram(right[0], right[1])
                if left_histogram is not None and right_histogram is not None:
                    selectivity = join_selectivity(
                        left_histogram, right_histogram
                    )
                else:
                    selectivity = 1.0 / max(
                        self._distinct(left[0], left[1], bindings),
                        self._distinct(right[0], right[1], bindings),
                    )
            else:
                selectivity = RANGE_SELECTIVITY
            return Predicate(
                name=name,
                tables=(left[0], right[0]),
                selectivity=min(1.0, max(selectivity, 1e-12)),
                columns=(left, right),
            )
        histogram = self._histogram(left[0], left[1])
        if histogram is not None and isinstance(comparison.right, float):
            selectivity = histogram.selectivity(
                comparison.operator, comparison.right
            )
        elif comparison.operator == "=":
            selectivity = 1.0 / self._distinct(left[0], left[1], bindings)
        elif comparison.operator in ("<>", "!="):
            selectivity = 1.0 - 1.0 / self._distinct(
                left[0], left[1], bindings
            )
        else:
            selectivity = RANGE_SELECTIVITY
        return Predicate(
            name=name,
            tables=(left[0],),
            selectivity=min(1.0, max(selectivity, 1e-12)),
            columns=(left,),
        )

    def _translate_in_list(
        self, in_list: InListPredicate, bindings, index: int
    ) -> Predicate:
        """``col IN (v1, ..., vk)`` selects ``k / distinct(col)``."""
        left = self._resolve_column(in_list.column, bindings)
        distinct = self._distinct(left[0], left[1], bindings)
        selectivity = min(1.0, len(in_list.values) / distinct)
        if in_list.negated:
            selectivity = 1.0 - selectivity
        return Predicate(
            name=f"sql_p{index}",
            tables=(left[0],),
            selectivity=min(1.0, max(selectivity, 1e-12)),
            columns=(left,),
        )


def sql_to_query(text: str, schema: Schema, name: str = "") -> Query:
    """Parse and translate one SELECT statement in a single call."""
    statement = parse_sql(text)
    return Translator(schema).translate(statement, name=name)
