"""Nested-query unnesting into select-project-join blocks (paper §5.5).

The paper handles richer query languages the way Selinger [26] and the
unnesting literature [23] do: a complex statement is decomposed into simple
SPJ blocks, join ordering runs on each block separately, and blocks
communicate through materialized intermediate results.  This module
implements that decomposition for the two classic nesting shapes:

* ``col IN (SELECT ... )`` — *type-N* nesting: the (uncorrelated) subquery
  becomes its own block; its result is modeled as a derived table holding
  the distinct values of the projected column, and the membership test
  becomes an ordinary equi-join predicate in the outer block.
* ``EXISTS (SELECT ... WHERE inner.x = outer.y ...)`` — *type-J* nesting:
  correlation predicates are pulled out of the subquery; the subquery
  becomes a block projecting its correlation columns, and each correlation
  turns into an equi-join between the outer block and the derived table.
* ``col op (SELECT agg(...) ...)`` — *type-A* nesting: the scalar
  aggregate subquery becomes its own block evaluated first; the outer
  comparison against its (single-row) result is a plain selection whose
  selectivity follows the System R rules.

Each block is an ordinary :class:`~repro.catalog.query.Query`, so the MILP
optimizer (or any baseline) orders its joins; :func:`optimize_blocks` runs
the blocks bottom-up and sums their costs.

Anti-joins (``NOT IN`` / ``NOT EXISTS``) have no faithful rewrite as an
inner join and are rejected with :class:`~repro.exceptions.UnnestingError`.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from dataclasses import dataclass, field

from repro.catalog.column import Column
from repro.catalog.predicate import Predicate
from repro.catalog.query import Query
from repro.catalog.statistics import cardinality as estimate_cardinality
from repro.catalog.table import Table
from repro.exceptions import UnnestingError
from repro.sql.ast_nodes import (
    ColumnRef,
    Comparison,
    SelectStatement,
    SubqueryPredicate,
)
from repro.sql.parser import parse_sql
from repro.sql.schema import Schema
from repro.sql.translate import Translator


@dataclass
class UnnestedBlock:
    """One SPJ block of a decomposed statement.

    Attributes
    ----------
    name:
        Block identifier; the root is named after the statement, children
        append ``_sub<i>``.
    query:
        The block's join-ordering problem, including derived tables that
        stand in for its children.
    children:
        Blocks materialized before this one can run.
    derived_table:
        How this block appears in its parent (``None`` for the root).
    output_cardinality:
        Estimated number of result rows (after grouping, if any).
    """

    name: str
    query: Query
    children: list["UnnestedBlock"] = field(default_factory=list)
    derived_table: Table | None = None
    output_cardinality: float = 0.0

    @property
    def num_blocks(self) -> int:
        """Total number of blocks in this subtree."""
        return 1 + sum(child.num_blocks for child in self.children)

    def walk_bottom_up(self):
        """Yield blocks children-first (execution order)."""
        for child in self.children:
            yield from child.walk_bottom_up()
        yield self


@dataclass
class BlockPlan:
    """A block together with its optimization outcome."""

    block: UnnestedBlock
    result: "object"  # OptimizationResult; kept loose to avoid a cycle

    @property
    def cost(self) -> float:
        """True plan cost of the block (``inf`` when no plan was found)."""
        true_cost = getattr(self.result, "true_cost", None)
        return math.inf if true_cost is None else true_cost


@dataclass
class UnnestedResult:
    """Outcome of optimizing every block of a nested statement."""

    root: UnnestedBlock
    plans: list[BlockPlan]

    @property
    def total_cost(self) -> float:
        """Summed true cost over all blocks (the decomposed plan's cost)."""
        return sum(plan.cost for plan in self.plans)

    def plan_for(self, name: str) -> BlockPlan:
        """The plan of the block called ``name``."""
        for plan in self.plans:
            if plan.block.name == name:
                return plan
        raise KeyError(f"no block named {name!r}")


def unnest_sql(text: str, schema: Schema, name: str = "query") -> UnnestedBlock:
    """Parse ``text`` and decompose it into SPJ blocks."""
    return decompose(parse_sql(text), schema, name=name)


def decompose(
    statement: SelectStatement, schema: Schema, name: str = "query"
) -> UnnestedBlock:
    """Decompose ``statement`` into a tree of SPJ blocks.

    Raises
    ------
    UnnestingError
        On ``NOT IN`` / ``NOT EXISTS`` subqueries, non-equality
        correlations, or subqueries whose projection does not fit the
        nesting shape.
    """
    counter = itertools.count()
    return _decompose(statement, schema, name, counter)


def optimize_blocks(
    root: UnnestedBlock, optimizer=None
) -> UnnestedResult:
    """Optimize every block bottom-up and collect the plans.

    Parameters
    ----------
    root:
        Block tree from :func:`decompose`.
    optimizer:
        Any object with an ``optimize(query)`` method returning an object
        with a ``true_cost`` attribute; defaults to the MILP optimizer with
        the C_out objective at medium precision.
    """
    if optimizer is None:
        from repro.core.config import FormulationConfig
        from repro.core.optimizer import MILPJoinOptimizer

        max_tables = max(
            block.query.num_tables for block in root.walk_bottom_up()
        )
        optimizer = MILPJoinOptimizer(
            FormulationConfig.medium_precision(
                max(max_tables, 2), cost_model="cout"
            )
        )
    plans = [
        BlockPlan(block=block, result=optimizer.optimize(block.query))
        for block in root.walk_bottom_up()
    ]
    return UnnestedResult(root=root, plans=plans)


# ----------------------------------------------------------------------
# Decomposition internals
# ----------------------------------------------------------------------


def _decompose(
    statement: SelectStatement,
    schema: Schema,
    name: str,
    counter,
) -> UnnestedBlock:
    bindings = _resolve_bindings(statement, schema)
    children: list[UnnestedBlock] = []
    extra_tables: list[Table] = []
    extra_predicates: list[Predicate] = []

    for subquery in statement.subqueries:
        if subquery.negated:
            raise UnnestingError(
                f"block {name!r}: NOT {subquery.operator.upper()} subqueries "
                "are anti-joins and cannot be unnested into inner joins"
            )
        index = next(counter)
        child_name = f"{name}_sub{index}"
        if subquery.operator == "in":
            child, table, predicate = _unnest_in(
                subquery, schema, bindings, child_name, counter,
                len(extra_predicates),
            )
            extra_predicates.append(predicate)
            extra_tables.append(table)
        elif subquery.operator == "exists":
            child, table, predicates = _unnest_exists(
                subquery, schema, bindings, child_name, counter,
                len(extra_predicates),
            )
            extra_predicates.extend(predicates)
            extra_tables.append(table)
        elif subquery.operator in _SCALAR_OPERATORS:
            # Type-A: no derived table joins the outer block — only a
            # selection predicate comparing against the scalar value.
            child, predicate = _unnest_scalar(
                subquery, schema, bindings, child_name, counter,
                len(extra_predicates),
            )
            extra_predicates.append(predicate)
        else:  # pragma: no cover - parser restricts the operators
            raise UnnestingError(
                f"unsupported subquery operator {subquery.operator!r}"
            )
        children.append(child)

    stripped = dataclasses.replace(statement, subqueries=())
    base_query = Translator(schema).translate(stripped, name=name)
    if extra_tables or extra_predicates:
        query = Query(
            tables=base_query.tables + tuple(extra_tables),
            predicates=base_query.predicates + tuple(extra_predicates),
            required_columns=base_query.required_columns,
            name=name,
        )
    else:
        query = base_query

    output = _output_cardinality(query, statement, bindings)
    return UnnestedBlock(
        name=name,
        query=query,
        children=children,
        output_cardinality=output,
    )


def _resolve_bindings(
    statement: SelectStatement, schema: Schema
) -> dict[str, Table]:
    """FROM-clause bindings (alias -> table), mirroring the translator."""
    bindings: dict[str, Table] = {}
    for ref in statement.tables:
        base = schema.table(ref.name)
        if ref.binding != base.name:
            base = Table(
                name=ref.binding,
                cardinality=base.cardinality,
                columns=base.columns,
                tuple_size=base.tuple_size,
            )
        bindings[ref.binding] = base
    return bindings


def _distinct_of(bindings: dict[str, Table], binding: str, column: str) -> float:
    table = bindings[binding]
    info = table.column(column)
    if info.distinct_values is not None:
        return float(info.distinct_values)
    return max(1.0, table.cardinality / 10.0)


def _resolve_in(
    bindings: dict[str, Table], ref: ColumnRef, context: str
) -> tuple[str, str]:
    """Resolve ``ref`` against ``bindings`` or raise."""
    if ref.table is not None:
        if ref.table not in bindings:
            raise UnnestingError(
                f"{context}: unknown table {ref.table!r} in column reference"
            )
        if not bindings[ref.table].has_column(ref.column):
            raise UnnestingError(
                f"{context}: table {ref.table!r} has no column {ref.column!r}"
            )
        return ref.table, ref.column
    owners = [
        binding
        for binding, table in bindings.items()
        if table.has_column(ref.column)
    ]
    if len(owners) != 1:
        raise UnnestingError(
            f"{context}: column {ref.column!r} is "
            + ("ambiguous" if owners else "unknown")
        )
    return owners[0], ref.column


def _output_cardinality(
    query: Query, statement: SelectStatement, bindings: dict[str, Table]
) -> float:
    """Estimated result rows of the block, after any grouping."""
    joined = estimate_cardinality(query.tables, query.predicates)
    if statement.group_by:
        group_distinct = 1.0
        for column in statement.group_by:
            binding, col_name = _resolve_in(bindings, column, "GROUP BY")
            group_distinct *= _distinct_of(bindings, binding, col_name)
        return max(1.0, min(joined, group_distinct))
    if statement.has_aggregates:
        return 1.0  # scalar aggregate: exactly one row
    return max(1.0, joined)


def _unnest_in(
    subquery: SubqueryPredicate,
    schema: Schema,
    outer_bindings: dict[str, Table],
    child_name: str,
    counter,
    predicate_index: int,
) -> tuple[UnnestedBlock, Table, Predicate]:
    """Rewrite ``col IN (SELECT c FROM ...)`` as a join on distinct ``c``."""
    child_stmt = subquery.statement
    if len(child_stmt.columns) != 1 or child_stmt.aggregates:
        raise UnnestingError(
            f"block {child_name!r}: an IN subquery must project exactly one "
            "plain column"
        )
    child = _decompose(child_stmt, schema, child_name, counter)
    child_bindings = _resolve_bindings(child_stmt, schema)
    inner_binding, inner_column = _resolve_in(
        child_bindings, child_stmt.columns[0], f"block {child_name!r}"
    )
    inner_distinct = _distinct_of(child_bindings, inner_binding, inner_column)
    # The derived table holds the distinct projected values that survive
    # the subquery's joins and selections.
    derived_cardinality = max(
        1.0, min(child.output_cardinality, inner_distinct)
    )
    base_column = child_bindings[inner_binding].column(inner_column)
    derived = Table(
        name=child_name,
        cardinality=derived_cardinality,
        columns=(
            Column(
                inner_column,
                byte_size=base_column.byte_size,
                distinct_values=max(1, round(derived_cardinality)),
            ),
        ),
    )
    child.derived_table = derived

    outer_binding, outer_column = _resolve_in(
        outer_bindings, subquery.column, f"block {child_name!r} outer column"
    )
    outer_distinct = _distinct_of(outer_bindings, outer_binding, outer_column)
    selectivity = 1.0 / max(outer_distinct, derived_cardinality)
    predicate = Predicate(
        name=f"unnest_in_{predicate_index}_{child_name}",
        tables=(outer_binding, child_name),
        selectivity=min(1.0, max(selectivity, 1e-12)),
        columns=(
            (outer_binding, outer_column),
            (child_name, inner_column),
        ),
    )
    return child, derived, predicate


#: Comparison operators a scalar (type-A) subquery may appear under.
_SCALAR_OPERATORS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})

#: System R's default selectivity for range comparisons.
_RANGE_SELECTIVITY = 1.0 / 3.0


def _unnest_scalar(
    subquery: SubqueryPredicate,
    schema: Schema,
    outer_bindings: dict[str, Table],
    child_name: str,
    counter,
    predicate_index: int,
) -> tuple[UnnestedBlock, Predicate]:
    """Rewrite ``col op (SELECT agg(...) ...)`` as a selection (type-A).

    The subquery runs first and yields one row; comparing an outer column
    against that constant is an ordinary selection, estimated with the
    System R rules (``1/distinct`` for equality, 1/3 for ranges).
    """
    child_stmt = subquery.statement
    if (
        len(child_stmt.aggregates) != 1
        or child_stmt.columns
        or child_stmt.group_by
    ):
        raise UnnestingError(
            f"block {child_name!r}: a scalar subquery must project exactly "
            "one aggregate and carry no GROUP BY"
        )
    child = _decompose(child_stmt, schema, child_name, counter)

    outer_binding, outer_column = _resolve_in(
        outer_bindings, subquery.column, f"block {child_name!r} outer column"
    )
    if subquery.operator == "=":
        selectivity = 1.0 / _distinct_of(
            outer_bindings, outer_binding, outer_column
        )
    elif subquery.operator in ("<>", "!="):
        selectivity = 1.0 - 1.0 / _distinct_of(
            outer_bindings, outer_binding, outer_column
        )
    else:
        selectivity = _RANGE_SELECTIVITY
    predicate = Predicate(
        name=f"unnest_scalar_{predicate_index}_{child_name}",
        tables=(outer_binding,),
        selectivity=min(1.0, max(selectivity, 1e-12)),
        columns=((outer_binding, outer_column),),
    )
    return child, predicate


def _unnest_exists(
    subquery: SubqueryPredicate,
    schema: Schema,
    outer_bindings: dict[str, Table],
    child_name: str,
    counter,
    predicate_index: int,
) -> tuple[UnnestedBlock, Table, list[Predicate]]:
    """Rewrite a correlated EXISTS as joins on its correlation columns."""
    child_stmt = subquery.statement
    child_bindings = _resolve_bindings(child_stmt, schema)
    local: list[Comparison] = []
    correlations: list[tuple[tuple[str, str], tuple[str, str]]] = []
    for comparison in child_stmt.predicates:
        classified = _classify_comparison(
            comparison, child_bindings, outer_bindings, child_name
        )
        if classified is None:
            local.append(comparison)
        else:
            correlations.append(classified)
    if not correlations:
        raise UnnestingError(
            f"block {child_name!r}: EXISTS subquery has no correlation "
            "predicate; rewrite it as a constant condition instead"
        )

    stripped = dataclasses.replace(
        child_stmt, predicates=tuple(local), columns=(), aggregates=()
    )
    child = _decompose(stripped, schema, child_name, counter)

    inner_columns = [inner for inner, _ in correlations]
    distinct_product = 1.0
    for binding, column in inner_columns:
        distinct_product *= _distinct_of(child_bindings, binding, column)
    derived_cardinality = max(
        1.0, min(child.output_cardinality, distinct_product)
    )
    derived_columns = []
    seen: set[str] = set()
    for binding, column in inner_columns:
        if column in seen:
            continue
        seen.add(column)
        base_column = child_bindings[binding].column(column)
        derived_columns.append(
            Column(
                column,
                byte_size=base_column.byte_size,
                distinct_values=max(
                    1,
                    round(
                        min(
                            derived_cardinality,
                            _distinct_of(child_bindings, binding, column),
                        )
                    ),
                ),
            )
        )
    derived = Table(
        name=child_name,
        cardinality=derived_cardinality,
        columns=tuple(derived_columns),
    )
    child.derived_table = derived

    predicates = []
    for offset, ((_, inner_column), (outer_binding, outer_column)) in enumerate(
        correlations
    ):
        outer_distinct = _distinct_of(
            outer_bindings, outer_binding, outer_column
        )
        selectivity = 1.0 / max(outer_distinct, derived_cardinality)
        predicates.append(
            Predicate(
                name=f"unnest_exists_{predicate_index + offset}_{child_name}",
                tables=(outer_binding, child_name),
                selectivity=min(1.0, max(selectivity, 1e-12)),
                columns=(
                    (outer_binding, outer_column),
                    (child_name, inner_column),
                ),
            )
        )
    return child, derived, predicates


def _classify_comparison(
    comparison: Comparison,
    child_bindings: dict[str, Table],
    outer_bindings: dict[str, Table],
    child_name: str,
) -> "tuple[tuple[str, str], tuple[str, str]] | None":
    """Classify a child WHERE comparison as local or a correlation.

    Returns ``None`` for local predicates, and an
    ``((inner_binding, inner_column), (outer_binding, outer_column))`` pair
    for correlations.  Mixed cases that reference only outer tables, or
    non-equality correlations, are rejected.
    """
    if not comparison.is_join:
        side = _side_of(comparison.left, child_bindings, outer_bindings)
        if side == "inner":
            return None
        raise UnnestingError(
            f"block {child_name!r}: selection on an outer column belongs "
            "in the outer WHERE clause"
        )
    left_side = _side_of(comparison.left, child_bindings, outer_bindings)
    right_side = _side_of(comparison.right, child_bindings, outer_bindings)
    if left_side == "inner" and right_side == "inner":
        return None
    if left_side == right_side:
        raise UnnestingError(
            f"block {child_name!r}: predicate references only outer tables"
        )
    if comparison.operator != "=":
        raise UnnestingError(
            f"block {child_name!r}: only equality correlations can be "
            "unnested into joins"
        )
    if left_side == "inner":
        inner_ref, outer_ref = comparison.left, comparison.right
    else:
        inner_ref, outer_ref = comparison.right, comparison.left
    inner = _resolve_in(child_bindings, inner_ref, f"block {child_name!r}")
    outer = _resolve_in(
        outer_bindings, outer_ref, f"block {child_name!r} correlation"
    )
    return inner, outer


def _side_of(
    ref: ColumnRef,
    child_bindings: dict[str, Table],
    outer_bindings: dict[str, Table],
) -> str:
    """Whether a column reference resolves inside the subquery or outside."""
    if ref.table is not None:
        if ref.table in child_bindings:
            return "inner"
        if ref.table in outer_bindings:
            return "outer"
        raise UnnestingError(f"unknown table {ref.table!r} in subquery")
    inner_owners = [
        b for b, t in child_bindings.items() if t.has_column(ref.column)
    ]
    if inner_owners:
        return "inner"
    outer_owners = [
        b for b, t in outer_bindings.items() if t.has_column(ref.column)
    ]
    if outer_owners:
        return "outer"
    raise UnnestingError(f"unknown column {ref.column!r} in subquery")
