"""Tokenizer for the SQL subset understood by :mod:`repro.sql`.

Supported token classes: keywords (case-insensitive), identifiers,
qualified names, numeric and string literals, comparison operators,
commas, dots and parentheses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ReproError


class SqlSyntaxError(ReproError):
    """Raised on malformed SQL input, with position information."""


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    END = "end"


KEYWORDS = frozenset(
    {
        "select", "from", "where", "and", "as", "join", "on", "inner",
        "group", "by", "having", "in", "exists", "not", "distinct",
    }
)

#: Multi-character operators first so '<=' wins over '<'.
OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`SqlSyntaxError` on
    unexpected characters or unterminated strings."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == ",":
            tokens.append(Token(TokenType.COMMA, ",", index))
            index += 1
            continue
        if char == ".":
            tokens.append(Token(TokenType.DOT, ".", index))
            index += 1
            continue
        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", index))
            index += 1
            continue
        if char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", index))
            index += 1
            continue
        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", index))
            index += 1
            continue
        operator = _match_operator(text, index)
        if operator is not None:
            tokens.append(Token(TokenType.OPERATOR, operator, index))
            index += len(operator)
            continue
        if char == "'":
            end = text.find("'", index + 1)
            if end < 0:
                raise SqlSyntaxError(
                    f"unterminated string literal at position {index}"
                )
            tokens.append(
                Token(TokenType.STRING, text[index + 1:end], index)
            )
            index = end + 1
            continue
        if char.isdigit() or (
            char == "-" and index + 1 < length and text[index + 1].isdigit()
        ):
            start = index
            index += 1
            while index < length and (
                text[index].isdigit() or text[index] == "."
            ):
                index += 1
            tokens.append(Token(TokenType.NUMBER, text[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (
                text[index].isalnum() or text[index] == "_"
            ):
                index += 1
            word = text[start:index]
            if word.lower() in KEYWORDS:
                tokens.append(
                    Token(TokenType.KEYWORD, word.lower(), start)
                )
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        raise SqlSyntaxError(
            f"unexpected character {char!r} at position {index}"
        )
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _match_operator(text: str, index: int) -> str | None:
    for operator in OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None
