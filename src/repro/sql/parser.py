"""Recursive-descent parser for the SQL subset.

Grammar (conjunctive select-project-join — the query class of the paper's
Section 3 — plus the Section 5 / 5.5 extensions: projection, aggregates,
grouping and nested queries)::

    statement  := SELECT select_list FROM table_list [WHERE condition]
                  [GROUP BY column_list] [HAVING having_list] [;]
    select_list:= '*' | select_item (',' select_item)*
    select_item:= column | aggregate
    aggregate  := func '(' ['*' | [DISTINCT] column] ')'
    table_list := table_ref (',' table_ref)*
                | table_ref (JOIN table_ref ON comparison)*
    table_ref  := identifier [AS identifier | identifier]
    condition  := conjunct (AND conjunct)*
    conjunct   := comparison
                | column [NOT] IN '(' (SELECT ... | literal_list) ')'
                | [NOT] EXISTS '(' SELECT ... ')'
    having_list:= having (AND having)*
    having     := aggregate op literal
    comparison := column op (column | literal)
    column     := identifier ['.' identifier]
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    AggregateRef,
    ColumnRef,
    Comparison,
    HavingComparison,
    InListPredicate,
    SelectStatement,
    SubqueryPredicate,
    TableRef,
)
from repro.sql.tokenizer import SqlSyntaxError, Token, TokenType, tokenize


class Parser:
    """One-statement recursive-descent parser over a token stream."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._peek()
        if token.type is not token_type or (
            value is not None and token.value != value
        ):
            expected = value or token_type.value
            raise SqlSyntaxError(
                f"expected {expected!r} at position {token.position}, "
                f"found {token.value!r}"
            )
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value == word:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------

    def parse(self) -> SelectStatement:
        """Parse one SELECT statement; rejects trailing garbage."""
        statement = self._select_statement()
        if self._peek().type is not TokenType.END:
            token = self._peek()
            raise SqlSyntaxError(
                f"unexpected input {token.value!r} at position "
                f"{token.position}"
            )
        return statement

    def _select_statement(self) -> SelectStatement:
        """Parse a SELECT statement body (also used for subqueries)."""
        self._expect(TokenType.KEYWORD, "select")
        columns, aggregates = self._select_list()
        self._expect(TokenType.KEYWORD, "from")
        tables, join_predicates = self._table_list()
        predicates = list(join_predicates)
        in_lists: list[InListPredicate] = []
        subqueries: list[SubqueryPredicate] = []
        if self._accept_keyword("where"):
            self._condition(predicates, in_lists, subqueries)
        group_by: list[ColumnRef] = []
        if self._accept_keyword("group"):
            self._expect(TokenType.KEYWORD, "by")
            group_by.append(self._column())
            while self._peek().type is TokenType.COMMA:
                self._advance()
                group_by.append(self._column())
        having: list[HavingComparison] = []
        if self._accept_keyword("having"):
            having.append(self._having_comparison())
            while self._accept_keyword("and"):
                having.append(self._having_comparison())
        return SelectStatement(
            columns=tuple(columns),
            tables=tuple(tables),
            predicates=tuple(predicates),
            aggregates=tuple(aggregates),
            group_by=tuple(group_by),
            having=tuple(having),
            in_lists=tuple(in_lists),
            subqueries=tuple(subqueries),
        )

    def _select_list(self) -> tuple[list[ColumnRef], list[AggregateRef]]:
        if self._peek().type is TokenType.STAR:
            self._advance()
            return [], []
        columns: list[ColumnRef] = []
        aggregates: list[AggregateRef] = []
        self._select_item(columns, aggregates)
        while self._peek().type is TokenType.COMMA:
            self._advance()
            self._select_item(columns, aggregates)
        return columns, aggregates

    def _select_item(self, columns, aggregates) -> None:
        token = self._peek()
        is_aggregate = (
            token.type is TokenType.IDENTIFIER
            and token.value.lower() in AGGREGATE_FUNCTIONS
            and self._peek(1).type is TokenType.LPAREN
        )
        if is_aggregate:
            aggregates.append(self._aggregate())
        else:
            columns.append(self._column())

    def _aggregate(self) -> AggregateRef:
        func = self._expect(TokenType.IDENTIFIER).value.lower()
        self._expect(TokenType.LPAREN)
        if self._peek().type is TokenType.STAR:
            self._advance()
            self._expect(TokenType.RPAREN)
            if func != "count":
                raise SqlSyntaxError(f"{func}(*) is not valid SQL")
            return AggregateRef(func=func, argument=None)
        distinct = self._accept_keyword("distinct")
        argument = self._column()
        self._expect(TokenType.RPAREN)
        return AggregateRef(func=func, argument=argument, distinct=distinct)

    def _table_list(self) -> tuple[list[TableRef], list[Comparison]]:
        tables = [self._table_ref()]
        predicates: list[Comparison] = []
        while True:
            token = self._peek()
            if token.type is TokenType.COMMA:
                self._advance()
                tables.append(self._table_ref())
                continue
            if token.type is TokenType.KEYWORD and token.value in (
                "join", "inner",
            ):
                if token.value == "inner":
                    self._advance()
                    self._expect(TokenType.KEYWORD, "join")
                else:
                    self._advance()
                tables.append(self._table_ref())
                self._expect(TokenType.KEYWORD, "on")
                predicates.append(self._comparison())
                continue
            break
        return tables, predicates

    def _table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENTIFIER).value
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    # ------------------------------------------------------------------
    # WHERE clause
    # ------------------------------------------------------------------

    def _condition(self, predicates, in_lists, subqueries) -> None:
        self._conjunct(predicates, in_lists, subqueries)
        while self._accept_keyword("and"):
            self._conjunct(predicates, in_lists, subqueries)

    def _conjunct(self, predicates, in_lists, subqueries) -> None:
        if self._accept_keyword("not"):
            self._expect(TokenType.KEYWORD, "exists")
            subqueries.append(self._exists_subquery(negated=True))
            return
        if self._accept_keyword("exists"):
            subqueries.append(self._exists_subquery(negated=False))
            return
        column = self._column()
        negated = False
        if self._accept_keyword("not"):
            negated = True
            if self._peek().value != "in":
                token = self._peek()
                raise SqlSyntaxError(
                    f"expected 'in' after 'not' at position {token.position}"
                )
        if self._accept_keyword("in"):
            self._in_predicate(column, negated, in_lists, subqueries)
            return
        if negated:  # pragma: no cover - guarded above
            raise SqlSyntaxError("dangling NOT")
        operator = self._expect(TokenType.OPERATOR).value
        if (
            self._peek().type is TokenType.LPAREN
            and self._peek(1).type is TokenType.KEYWORD
            and self._peek(1).value == "select"
        ):
            # Scalar subquery: col op (SELECT agg(...) FROM ...).
            self._advance()
            statement = self._select_statement()
            self._expect(TokenType.RPAREN)
            subqueries.append(
                SubqueryPredicate(
                    operator=operator,
                    statement=statement,
                    column=column,
                    negated=False,
                )
            )
            return
        predicates.append(self._comparison_value(column, operator))

    def _exists_subquery(self, negated: bool) -> SubqueryPredicate:
        self._expect(TokenType.LPAREN)
        statement = self._select_statement()
        self._expect(TokenType.RPAREN)
        return SubqueryPredicate(
            operator="exists",
            statement=statement,
            column=None,
            negated=negated,
        )

    def _in_predicate(
        self, column: ColumnRef, negated: bool, in_lists, subqueries
    ) -> None:
        self._expect(TokenType.LPAREN)
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value == "select":
            statement = self._select_statement()
            self._expect(TokenType.RPAREN)
            subqueries.append(
                SubqueryPredicate(
                    operator="in",
                    statement=statement,
                    column=column,
                    negated=negated,
                )
            )
            return
        values = [self._literal()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            values.append(self._literal())
        self._expect(TokenType.RPAREN)
        in_lists.append(
            InListPredicate(
                column=column, values=tuple(values), negated=negated
            )
        )

    def _literal(self) -> "str | float":
        token = self._peek()
        if token.type is TokenType.NUMBER:
            return float(self._advance().value)
        if token.type is TokenType.STRING:
            return self._advance().value
        raise SqlSyntaxError(
            f"expected a literal at position {token.position}, "
            f"found {token.value!r}"
        )

    def _having_comparison(self) -> HavingComparison:
        aggregate = self._aggregate()
        operator = self._expect(TokenType.OPERATOR).value
        value = self._literal()
        return HavingComparison(
            aggregate=aggregate, operator=operator, value=value
        )

    def _comparison(self) -> Comparison:
        left = self._column()
        operator = self._expect(TokenType.OPERATOR).value
        return self._comparison_value(left, operator)

    def _comparison_value(
        self, left: ColumnRef, operator: str
    ) -> Comparison:
        token = self._peek()
        right: "ColumnRef | str | float"
        if token.type is TokenType.IDENTIFIER:
            right = self._column()
        elif token.type is TokenType.NUMBER:
            right = float(self._advance().value)
        elif token.type is TokenType.STRING:
            right = self._advance().value
        else:
            raise SqlSyntaxError(
                f"expected a column or literal at position {token.position}"
            )
        return Comparison(left=left, operator=operator, right=right)

    def _column(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._peek().type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENTIFIER).value
            return ColumnRef(table=first, column=second)
        return ColumnRef(table=None, column=first)


def parse_sql(text: str) -> SelectStatement:
    """Parse a single SELECT statement."""
    return Parser(text).parse()
