"""SQL frontend: parse a conjunctive SPJ SELECT statement into an
optimizer :class:`~repro.catalog.query.Query`.

Example
-------
>>> from repro.catalog import Column, Table
>>> from repro.sql import Schema, sql_to_query
>>> schema = Schema.from_tables([
...     Table("users", 10_000, columns=(
...         Column("id", distinct_values=10_000), Column("city"))),
...     Table("orders", 200_000, columns=(
...         Column("user_id", distinct_values=10_000), Column("total"))),
... ])
>>> query = sql_to_query(
...     "SELECT users.city FROM users, orders "
...     "WHERE users.id = orders.user_id AND orders.total > 100",
...     schema,
... )
>>> query.num_tables
2
"""

from repro.sql.ast_nodes import (
    AggregateRef,
    ColumnRef,
    Comparison,
    HavingComparison,
    InListPredicate,
    SelectStatement,
    SubqueryPredicate,
    TableRef,
)
from repro.sql.parser import Parser, parse_sql
from repro.sql.schema import Schema
from repro.sql.tokenizer import SqlSyntaxError, Token, TokenType, tokenize
from repro.sql.translate import Translator, sql_to_query
from repro.sql.unnest import (
    BlockPlan,
    UnnestedBlock,
    UnnestedResult,
    decompose,
    optimize_blocks,
    unnest_sql,
)

__all__ = [
    "AggregateRef",
    "BlockPlan",
    "ColumnRef",
    "Comparison",
    "HavingComparison",
    "InListPredicate",
    "Parser",
    "Schema",
    "SelectStatement",
    "SqlSyntaxError",
    "SubqueryPredicate",
    "TableRef",
    "Token",
    "TokenType",
    "Translator",
    "UnnestedBlock",
    "UnnestedResult",
    "decompose",
    "optimize_blocks",
    "parse_sql",
    "sql_to_query",
    "tokenize",
    "unnest_sql",
]
