"""Schema registry binding SQL table names to catalog tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.histogram import Histogram
from repro.catalog.table import Table
from repro.exceptions import CatalogError


@dataclass
class Schema:
    """A named collection of tables available to SQL queries.

    Column histograms can be attached with :meth:`add_histogram`; the SQL
    translator then derives selectivities from them instead of the
    ``1 / distinct`` System R defaults.

    Examples
    --------
    >>> from repro.catalog import Column, Table
    >>> schema = Schema()
    >>> schema.add(Table("users", 1000, columns=(Column("id"),)))
    >>> schema.table("users").cardinality
    1000
    """

    tables: dict[str, Table] = field(default_factory=dict)
    histograms: dict[tuple[str, str], Histogram] = field(default_factory=dict)

    def add(self, table: Table) -> None:
        """Register a table; names are unique."""
        if table.name in self.tables:
            raise CatalogError(f"table {table.name!r} already registered")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self.tables

    def add_histogram(
        self, table: str, column: str, histogram: Histogram
    ) -> None:
        """Attach a histogram to ``table.column`` (both must exist)."""
        owner = self.table(table)
        if not owner.has_column(column):
            raise CatalogError(
                f"table {table!r} has no column {column!r}"
            )
        self.histograms[(table, column)] = histogram

    def histogram_for(self, table: str, column: str) -> Histogram | None:
        """The histogram attached to ``table.column``, if any."""
        return self.histograms.get((table, column))

    @classmethod
    def from_tables(cls, tables) -> "Schema":
        """Build a schema from an iterable of tables."""
        schema = cls()
        for table in tables:
            schema.add(table)
        return schema
