"""AST node types produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A possibly table-qualified column reference ``t.c`` or ``c``."""

    table: str | None
    column: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True, slots=True)
class TableRef:
    """A table in the FROM clause, with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name the table is referred to by elsewhere in the query."""
        return self.alias or self.name


@dataclass(frozen=True, slots=True)
class Comparison:
    """A WHERE-clause comparison.

    ``right`` is either a :class:`ColumnRef` (join predicate) or a literal
    string/float (selection predicate).
    """

    left: ColumnRef
    operator: str
    right: "ColumnRef | str | float"

    @property
    def is_join(self) -> bool:
        """Whether both sides are column references."""
        return isinstance(self.right, ColumnRef)


#: Aggregate function names recognized by the parser.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True, slots=True)
class AggregateRef:
    """An aggregate select item such as ``COUNT(*)`` or ``SUM(t.x)``.

    ``argument`` is ``None`` only for ``COUNT(*)``.
    """

    func: str
    argument: ColumnRef | None
    distinct: bool = False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        inner = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            inner = f"distinct {inner}"
        return f"{self.func}({inner})"


@dataclass(frozen=True, slots=True)
class HavingComparison:
    """A HAVING-clause condition ``aggregate op literal``."""

    aggregate: AggregateRef
    operator: str
    value: "str | float"


@dataclass(frozen=True, slots=True)
class InListPredicate:
    """A WHERE-clause condition ``column [NOT] IN (literal, ...)``."""

    column: ColumnRef
    values: tuple["str | float", ...]
    negated: bool = False


@dataclass(frozen=True)
class SubqueryPredicate:
    """A nested-query condition in the WHERE clause.

    Three shapes are represented (the paper's Section 5.5 points at
    Selinger-style decomposition into SPJ blocks for all of them):

    * ``column [NOT] IN (SELECT ...)`` — ``column`` is set, ``operator``
      is ``"in"`` (type-N nesting);
    * ``[NOT] EXISTS (SELECT ...)`` — ``column`` is ``None``, ``operator``
      is ``"exists"``; correlation predicates live inside the subquery's
      WHERE clause and reference outer tables (type-J);
    * ``column op (SELECT agg(...) ...)`` — scalar aggregate subquery,
      ``operator`` is the comparison operator (type-A).
    """

    operator: str
    statement: "SelectStatement"
    column: ColumnRef | None = None
    negated: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT statement.

    The core is the conjunctive select-project-join block of the paper's
    Section 3; the optional fields carry the Section 5.5 query-language
    extensions (aggregates, grouping, nested queries).
    """

    columns: tuple[ColumnRef, ...]  # empty tuple + no aggregates: SELECT *
    tables: tuple[TableRef, ...]
    predicates: tuple[Comparison, ...] = field(default=())
    aggregates: tuple[AggregateRef, ...] = field(default=())
    group_by: tuple[ColumnRef, ...] = field(default=())
    having: tuple[HavingComparison, ...] = field(default=())
    in_lists: tuple[InListPredicate, ...] = field(default=())
    subqueries: tuple[SubqueryPredicate, ...] = field(default=())

    @property
    def is_select_star(self) -> bool:
        """Whether the statement projects every column."""
        return not self.columns and not self.aggregates

    @property
    def has_aggregates(self) -> bool:
        """Whether any select item or HAVING condition aggregates."""
        return bool(self.aggregates or self.having)

    @property
    def is_nested(self) -> bool:
        """Whether the WHERE clause contains subqueries."""
        return bool(self.subqueries)
