"""MILP formulation over *bushy* join trees (extension beyond the paper).

The paper's formulation (Section 4) restricts the search space to left-deep
plans: the inner operand of every join is a single table.  This module lifts
that restriction.  A bushy plan over ``n`` tables still has ``n - 1`` joins,
scheduled bottom-up as joins ``0 .. n-2``; each operand of join ``j`` is now
either a base table or the result of an *earlier* join.

Variables (all binary unless noted):

* ``btl[t,j]`` / ``btr[t,j]`` — base table ``t`` is the left/right operand
  of join ``j`` directly;
* ``rul[k,j]`` / ``rur[k,j]`` (``k < j``) — the result of join ``k`` is the
  left/right operand of join ``j``;
* ``res[t,j]`` (continuous in ``[0,1]``, integral by construction) —
  table ``t`` is contained in the result of join ``j``;
* ``w[t,k,j]`` (continuous) — McCormick linearization of the product
  ``(rul[k,j] + rur[k,j]) * res[t,k]``, i.e. "table ``t`` flows from result
  ``k`` into join ``j``";
* ``pao[p,j]``, threshold flags and approximate cardinalities reuse the
  paper's Section 4.2 machinery verbatim, applied per join *result*.

Structural constraints: every join picks exactly one left and one right
operand; every base table is consumed exactly once; every non-final result
is consumed exactly once by a later join; the final result contains all
tables.  Operand disjointness follows from the ``res`` upper bound of one.

The encoding needs O(n³) linearization variables, so it targets the small
and mid-size queries where bushy plans pay off most; the objective is the
C_out metric (the cost model under which the bushy DP baseline
:class:`~repro.dp.bushy.BushyOptimizer` is exact, which makes the two
directly comparable).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.catalog.predicate import Predicate
from repro.catalog.query import Query
from repro.dp.bushy import BushyNode
from repro.exceptions import ExtractionError, FormulationError
from repro.milp.branch_and_bound import BranchAndBoundSolver, SolverOptions
from repro.milp.expr import LinExpr, lin_sum
from repro.milp.model import Model
from repro.milp.solution import IncumbentEvent, MILPSolution, SolveStatus
from repro.milp.variables import Variable
from repro.plans.cardinality import CardinalityModel
from repro.core.config import FormulationConfig
from repro.core.linearize import big_m_for
from repro.core.thresholds import ThresholdGrid

_ROUND = 0.5


class BushyFormulation:
    """Builds the bushy-plan MILP for one query.

    Parameters
    ----------
    query:
        Query to encode; needs at least two tables.
    config:
        Formulation configuration.  Only the ``cout`` cost model is
        supported in the bushy space.
    """

    def __init__(
        self, query: Query, config: FormulationConfig | None = None
    ) -> None:
        if query.num_tables < 2:
            raise FormulationError(
                "the bushy MILP formulation needs at least two tables"
            )
        self.config = config or FormulationConfig.medium_precision(
            query.num_tables, cost_model="cout"
        )
        if self.config.cost_model != "cout":
            raise FormulationError(
                "the bushy formulation supports only the C_out cost model"
            )
        self.query = query
        self.cards = CardinalityModel(query)
        self.grid = ThresholdGrid.for_query(query, self.config)
        self.model = Model(f"{query.name or 'query'}-bushy")
        self.joins = range(query.num_joins)
        self.jmax = query.num_joins - 1

        self.multi_predicates: list[Predicate] = [
            predicate
            for predicate in query.predicates
            if predicate.arity >= 2
        ]

        # Variable registries.
        self.btl: dict[tuple[str, int], Variable] = {}
        self.btr: dict[tuple[str, int], Variable] = {}
        self.rul: dict[tuple[int, int], Variable] = {}
        self.rur: dict[tuple[int, int], Variable] = {}
        self.res: dict[tuple[str, int], Variable] = {}
        self.w: dict[tuple[str, int, int], Variable] = {}
        self.pao: dict[tuple[str, int], Variable] = {}
        self.lres: dict[int, Variable] = {}
        self.ctr: dict[tuple[int, int], Variable] = {}
        self.cr: dict[int, Variable] = {}

        self._build_structure()
        self._build_contents()
        self._build_predicates_and_cardinality()
        self._build_objective()

    # ------------------------------------------------------------------
    # Structure: operand choices
    # ------------------------------------------------------------------

    def _build_structure(self) -> None:
        model = self.model
        tables = self.query.table_names
        for j in self.joins:
            for t in tables:
                self.btl[t, j] = model.add_binary(f"btl[{t},{j}]", priority=3)
                self.btr[t, j] = model.add_binary(f"btr[{t},{j}]", priority=3)
            for k in range(j):
                self.rul[k, j] = model.add_binary(f"rul[{k},{j}]", priority=3)
                self.rur[k, j] = model.add_binary(f"rur[{k},{j}]", priority=3)

        for j in self.joins:
            model.add_eq(
                lin_sum(
                    [self.btl[t, j] for t in tables]
                    + [self.rul[k, j] for k in range(j)]
                ),
                1.0,
                f"left_one[{j}]",
            )
            model.add_eq(
                lin_sum(
                    [self.btr[t, j] for t in tables]
                    + [self.rur[k, j] for k in range(j)]
                ),
                1.0,
                f"right_one[{j}]",
            )
            # A result cannot feed both operands of the same join.
            for k in range(j):
                model.add_le(
                    self.rul[k, j] + self.rur[k, j], 1.0, f"no_self[{k},{j}]"
                )

        for t in tables:
            model.add_eq(
                lin_sum(
                    [self.btl[t, j] for j in self.joins]
                    + [self.btr[t, j] for j in self.joins]
                ),
                1.0,
                f"table_once[{t}]",
            )
        for k in self.joins:
            if k == self.jmax:
                continue  # the final result is never consumed
            model.add_eq(
                lin_sum(
                    [self.rul[k, j] for j in range(k + 1, self.jmax + 1)]
                    + [self.rur[k, j] for j in range(k + 1, self.jmax + 1)]
                ),
                1.0,
                f"result_once[{k}]",
            )

    # ------------------------------------------------------------------
    # Result contents (McCormick linearization)
    # ------------------------------------------------------------------

    def _build_contents(self) -> None:
        model = self.model
        tables = self.query.table_names
        for j in self.joins:
            for t in tables:
                self.res[t, j] = model.add_continuous(
                    f"res[{t},{j}]", 0.0, 1.0
                )
        for j in self.joins:
            for k in range(j):
                feeds = self.rul[k, j] + self.rur[k, j]
                for t in tables:
                    w = model.add_continuous(f"w[{t},{k},{j}]", 0.0, 1.0)
                    self.w[t, k, j] = w
                    model.add_le(
                        w - feeds, 0.0, f"w_feed[{t},{k},{j}]"
                    )
                    model.add_le(
                        w - self.res[t, k], 0.0, f"w_res[{t},{k},{j}]"
                    )
                    model.add_ge(
                        w - feeds - self.res[t, k],
                        -1.0,
                        f"w_and[{t},{k},{j}]",
                    )
            for t in tables:
                contributions = LinExpr.from_var(self.res[t, j])
                contributions.add_term(self.btl[t, j], -1.0)
                contributions.add_term(self.btr[t, j], -1.0)
                for k in range(j):
                    contributions.add_term(self.w[t, k, j], -1.0)
                model.add_eq(contributions, 0.0, f"res_def[{t},{j}]")
        # The final join's result contains every table.
        for t in tables:
            model.add_eq(self.res[t, self.jmax], 1.0, f"final[{t}]")

    # ------------------------------------------------------------------
    # Predicates, log-cardinality, thresholds (Section 4.2, per result)
    # ------------------------------------------------------------------

    def _build_predicates_and_cardinality(self) -> None:
        model = self.model
        tables = self.query.table_names
        log_card = {
            t: self.cards.effective_log_cardinality(t) for t in tables
        }
        lower = sum(min(0.0, value) for value in log_card.values()) + sum(
            min(0.0, p.log_selectivity) for p in self.multi_predicates
        )
        upper = sum(max(0.0, value) for value in log_card.values()) + sum(
            max(0.0, p.log_selectivity) for p in self.multi_predicates
        )

        for predicate in self.multi_predicates:
            for j in self.joins:
                variable = model.add_binary(
                    f"pao[{predicate.name},{j}]", priority=2
                )
                self.pao[predicate.name, j] = variable
                requirement = LinExpr()
                for t in predicate.tables:
                    model.add_le(
                        variable - self.res[t, j],
                        0.0,
                        f"pao_req[{predicate.name},{j},{t}]",
                    )
                    requirement.add_term(self.res[t, j], 1.0)
                # Predicates are free under C_out: force them on as soon
                # as every referenced table is in the result (keeps the
                # cardinality model exact).
                model.add_ge(
                    variable - requirement,
                    1 - predicate.arity,
                    f"pao_force[{predicate.name},{j}]",
                )

        for j in self.joins:
            lres = model.add_continuous(f"lres[{j}]", lower, upper)
            self.lres[j] = lres
            expr = LinExpr.from_var(lres)
            for t in tables:
                expr.add_term(self.res[t, j], -log_card[t])
            for predicate in self.multi_predicates:
                expr.add_term(
                    self.pao[predicate.name, j], -predicate.log_selectivity
                )
            model.add_eq(expr, 0.0, f"lres_def[{j}]")

        for j in self.joins:
            for r, log_threshold in enumerate(self.grid.log_thresholds):
                flag = model.add_binary(f"ctr[{r},{j}]", priority=1)
                self.ctr[r, j] = flag
                big_m = big_m_for(upper, log_threshold)
                model.add_le(
                    self.lres[j] - big_m * flag,
                    log_threshold,
                    f"ctr_act[{r},{j}]",
                )
            if self.config.threshold_ordering:
                for r in range(1, self.grid.num_thresholds):
                    model.add_le(
                        self.ctr[r, j] - self.ctr[r - 1, j],
                        0.0,
                        f"ctr_ord[{r},{j}]",
                    )

        base, deltas = self.grid.piecewise()
        cr_upper = self.grid.max_value * 1.001
        for j in self.joins:
            cr = model.add_continuous(f"cr[{j}]", 0.0, cr_upper)
            self.cr[j] = cr
            expr = LinExpr.from_var(cr)
            for r, delta in enumerate(deltas):
                expr.add_term(self.ctr[r, j], -delta)
            model.add_eq(expr, base, f"cr_def[{j}]")

    def _build_objective(self) -> None:
        # C_out: the final result is identical for every plan, so only
        # intermediate results are charged (matches BushyOptimizer).
        self.model.set_objective(
            lin_sum(self.cr[j] for j in self.joins if j != self.jmax)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Model-size statistics (mirrors the left-deep formulation)."""
        return self.model.stats()


# ----------------------------------------------------------------------
# Warm start
# ----------------------------------------------------------------------


def assignment_for_tree(
    formulation: BushyFormulation, tree: BushyNode
) -> dict[str, float]:
    """MILP variable assignment encoding a bushy tree (warm start).

    Internal nodes are scheduled post-order, which guarantees operands are
    produced before they are consumed.
    """
    schedule: list[BushyNode] = []

    def visit(node: BushyNode) -> None:
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        visit(node.left)
        visit(node.right)
        schedule.append(node)

    visit(tree)
    if len(schedule) != formulation.query.num_joins:
        raise ExtractionError(
            "tree join count does not match the query's join count"
        )
    index_of = {id(node): j for j, node in enumerate(schedule)}
    values: dict[str, float] = {
        variable.name: 0.0 for variable in formulation.model.variables
    }

    for j, node in enumerate(schedule):
        assert node.left is not None and node.right is not None
        for child, base_key, result_key in (
            (node.left, "btl", "rul"),
            (node.right, "btr", "rur"),
        ):
            if child.is_leaf:
                values[f"{base_key}[{child.table},{j}]"] = 1.0
            else:
                values[f"{result_key}[{index_of[id(child)]},{j}]"] = 1.0
        for t in node.tables:
            values[f"res[{t},{j}]"] = 1.0
        for child in (node.left, node.right):
            if not child.is_leaf:
                k = index_of[id(child)]
                for t in child.tables:
                    values[f"w[{t},{k},{j}]"] = 1.0
        applied_log = 0.0
        for predicate in formulation.multi_predicates:
            if all(t in node.tables for t in predicate.tables):
                values[f"pao[{predicate.name},{j}]"] = 1.0
                applied_log += predicate.log_selectivity
        lres = (
            sum(
                formulation.cards.effective_log_cardinality(t)
                for t in node.tables
            )
            + applied_log
        )
        values[f"lres[{j}]"] = lres
        flags = formulation.grid.active_flags(lres)
        for r, flag in enumerate(flags):
            values[f"ctr[{r},{j}]"] = float(flag)
        values[f"cr[{j}]"] = formulation.grid.approximate(lres)
    return values


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def extract_tree(
    formulation: BushyFormulation, solution: MILPSolution
) -> BushyNode:
    """Decode a solution into a :class:`~repro.dp.bushy.BushyNode` tree."""
    if not solution.status.has_solution:
        raise ExtractionError(
            f"solution status {solution.status.value!r} carries no plan"
        )
    tables = formulation.query.table_names
    produced: dict[int, BushyNode] = {}
    for j in formulation.joins:
        operands: list[BushyNode] = []
        for base_key, result_key in (("btl", "rul"), ("btr", "rur")):
            base_picks = [
                t for t in tables
                if solution.value(f"{base_key}[{t},{j}]") > _ROUND
            ]
            result_picks = [
                k for k in range(j)
                if solution.value(f"{result_key}[{k},{j}]") > _ROUND
            ]
            if len(base_picks) + len(result_picks) != 1:
                raise ExtractionError(
                    f"join {j}: expected one {base_key}/{result_key} "
                    f"operand, decoded {base_picks + result_picks}"
                )
            if base_picks:
                operands.append(
                    BushyNode(frozenset(base_picks), table=base_picks[0])
                )
            else:
                operands.append(produced.pop(result_picks[0]))
        left, right = operands
        if left.tables & right.tables:
            raise ExtractionError(f"join {j}: overlapping operands")
        produced[j] = BushyNode(
            left.tables | right.tables, left=left, right=right
        )
    tree = produced.pop(formulation.jmax, None)
    if tree is None or produced or tree.tables != frozenset(tables):
        raise ExtractionError("decoded tree does not cover the query")
    return tree


def tree_cout(tree: BushyNode, query: Query) -> float:
    """Exact C_out of a bushy tree (intermediate results only)."""
    model = CardinalityModel(query)
    full = frozenset(query.table_names)
    total = 0.0

    def visit(node: BushyNode) -> None:
        nonlocal total
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        visit(node.left)
        visit(node.right)
        if node.tables != full:
            total += model.cardinality(node.tables)

    visit(tree)
    return total


# ----------------------------------------------------------------------
# Optimizer facade
# ----------------------------------------------------------------------


@dataclass
class BushyOptimizationResult:
    """Outcome of one bushy MILP optimization run."""

    query: Query
    tree: BushyNode | None
    status: SolveStatus
    objective: float
    best_bound: float
    true_cost: float | None
    solve_time: float
    events: list[IncumbentEvent] = field(default_factory=list)
    formulation_stats: dict[str, int] = field(default_factory=dict)
    milp_solution: MILPSolution | None = None

    @property
    def optimality_factor(self) -> float:
        """Guaranteed ``cost / lower-bound`` factor."""
        if self.milp_solution is None:
            return 1.0 if self.status is SolveStatus.OPTIMAL else math.inf
        return self.milp_solution.optimality_factor


class BushyMILPOptimizer:
    """Join ordering over bushy trees via MILP.

    Mirrors :class:`~repro.core.optimizer.MILPJoinOptimizer` for the bushy
    plan space; the warm start comes from the bushy DP when the query is
    small enough and connected, falling back to a left-deep greedy order.
    """

    def __init__(
        self,
        config: FormulationConfig | None = None,
        solver_options: SolverOptions | None = None,
    ) -> None:
        self.config = config
        self.solver_options = solver_options or SolverOptions()

    def formulate(self, query: Query) -> BushyFormulation:
        """Build (but do not solve) the bushy MILP for ``query``."""
        config = self.config or FormulationConfig.medium_precision(
            query.num_tables, cost_model="cout"
        )
        return BushyFormulation(query, config)

    def optimize(
        self, query: Query, warm_start: "bool | BushyNode" = True
    ) -> BushyOptimizationResult:
        """Optimize ``query`` over the bushy plan space."""
        started = time.monotonic()
        formulation = self.formulate(query)
        seed = None
        if warm_start is not False and warm_start is not None:
            tree = (
                warm_start
                if isinstance(warm_start, BushyNode)
                else self._heuristic_tree(query)
            )
            if tree is not None:
                seed = assignment_for_tree(formulation, tree)
        solver = BranchAndBoundSolver(formulation.model, self.solver_options)
        solution = solver.solve(warm_start=seed)

        tree = None
        true_cost = None
        if solution.status.has_solution:
            tree = extract_tree(formulation, solution)
            true_cost = tree_cout(tree, query)
        return BushyOptimizationResult(
            query=query,
            tree=tree,
            status=solution.status,
            objective=solution.objective,
            best_bound=solution.best_bound,
            true_cost=true_cost,
            solve_time=time.monotonic() - started,
            events=solution.events,
            formulation_stats=formulation.stats(),
            milp_solution=solution,
        )

    def _heuristic_tree(self, query: Query) -> BushyNode | None:
        """A feasible tree for the warm start (DP if possible, else greedy)."""
        from repro.dp.bushy import MAX_BUSHY_TABLES, BushyOptimizer
        from repro.dp.greedy import GreedyOptimizer

        if query.num_tables <= MAX_BUSHY_TABLES and query.is_connected:
            result = BushyOptimizer(query, use_cout=True).optimize()
            if result.tree is not None:
                return result.tree
        greedy = GreedyOptimizer(query, use_cout=True).optimize()
        if greedy.plan is None:
            return None
        return _tree_from_order(greedy.plan.join_order)


def _tree_from_order(order) -> BushyNode:
    """Left-deep tree over ``order`` (fallback warm start shape)."""
    node = BushyNode(frozenset({order[0]}), table=order[0])
    for name in order[1:]:
        leaf = BushyNode(frozenset({name}), table=name)
        node = BushyNode(node.tables | {name}, left=node, right=leaf)
    return node
