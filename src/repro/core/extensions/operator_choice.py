"""In-MILP operator implementation selection (paper Sections 5.3 and 5.4).

For every join ``j`` and implementation ``i``:

* ``jos[i,j]`` — binary, implementation selected (exactly one per join);
* ``pjc[i,j]`` — continuous, *potential* cost of the join if ``i`` is used
  (bound by an equality to the implementation's linear cost expression);
* ``ajc[i,j] = jos[i,j] * pjc[i,j]`` — *actual* cost, linearized per
  Bisschop; the objective sums the actual costs.

When property specs are given (Section 5.4), ``ohp[x,j]`` binaries track
whether the outer operand of join ``j`` has property ``x``:

* applicability: ``jos[i,j] <= ohp[x,j]`` for every required property;
* production: ``ohp[x,j+1] = sum(jos[i,j] for i producing x)``;
* base tables: ``ohp[x,0] = sum(tio[t,0] for providing tables t)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import FormulationError
from repro.milp.expr import LinExpr, lin_sum
from repro.milp.variables import Variable
from repro.core import cost_encoding
from repro.core.extensions.properties import (
    ImplementationSpec,
    PropertySpec,
    default_implementations,
)
from repro.core.linearize import binary_times_continuous, expression_bounds


@dataclass
class OperatorChoiceState:
    """Variables created by the operator-selection extension."""

    implementations: list[ImplementationSpec] = field(default_factory=list)
    properties: list[PropertySpec] = field(default_factory=list)
    jos: dict[tuple[str, int], Variable] = field(default_factory=dict)
    pjc: dict[tuple[str, int], Variable] = field(default_factory=dict)
    ajc: dict[tuple[str, int], Variable] = field(default_factory=dict)
    ohp: dict[tuple[str, int], Variable] = field(default_factory=dict)


_COST_MODEL_BY_ALGORITHM = {
    "hash": "hash",
    "sort_merge": "sort_merge",
    "block_nested_loop": "bnl",
}


def add_operator_selection(
    formulation,
    implementations=None,
    properties=(),
) -> None:
    """Let the MILP pick one implementation per join; sets the objective."""
    if formulation.config.cost_model == "cout":
        raise FormulationError(
            "operator selection needs operator cost formulas; "
            "the C_out metric is operator-agnostic"
        )
    model = formulation.model
    state = OperatorChoiceState(
        implementations=list(implementations or default_implementations()),
        properties=list(properties),
    )
    formulation.extensions["operator_choice"] = state

    names = [spec.name for spec in state.implementations]
    if len(names) != len(set(names)):
        raise FormulationError("duplicate implementation names")
    known_properties = {spec.name for spec in state.properties}
    for spec in state.implementations:
        for prop in spec.requires + spec.produces:
            if prop not in known_properties:
                raise FormulationError(
                    f"implementation {spec.name!r} references unknown "
                    f"property {prop!r}"
                )

    _add_property_variables(formulation, state)

    for j in formulation.joins:
        model.add_eq(
            lin_sum(_jos(formulation, state, spec, j) for spec in state.implementations),
            1.0,
            f"jos_one[{j}]",
        )
        for spec in state.implementations:
            jos = state.jos[spec.name, j]
            cost_expr = cost_encoding.join_cost_expression(
                formulation,
                j,
                _COST_MODEL_BY_ALGORITHM[spec.algorithm.value],
                presorted_outer=spec.presorted_outer,
            )
            low, high = expression_bounds(model, cost_expr)
            pjc = model.add_continuous(
                f"pjc[{spec.name},{j}]", min(0.0, low), high
            )
            state.pjc[spec.name, j] = pjc
            model.add_eq(
                LinExpr.from_var(pjc) - cost_expr,
                0.0,
                f"pjc_def[{spec.name},{j}]",
            )
            ajc = binary_times_continuous(
                model, jos, pjc, name=f"ajc[{spec.name},{j}]",
                upper_bound=high,
            )
            state.ajc[spec.name, j] = ajc
            formulation.objective_terms.append(LinExpr.from_var(ajc))
            # Applicability: required properties gate the implementation.
            for prop in spec.requires:
                model.add_le(
                    jos - state.ohp[prop, j],
                    0.0,
                    f"jos_req[{spec.name},{j},{prop}]",
                )

    _add_property_propagation(formulation, state)


def _jos(formulation, state, spec, j) -> Variable:
    key = (spec.name, j)
    if key not in state.jos:
        state.jos[key] = formulation.model.add_binary(
            f"jos[{spec.name},{j}]"
        )
    return state.jos[key]


def _add_property_variables(formulation, state) -> None:
    model = formulation.model
    for spec in state.properties:
        for j in formulation.joins:
            state.ohp[spec.name, j] = model.add_binary(
                f"ohp[{spec.name},{j}]"
            )
        # The first outer operand is a base table: it has the property iff
        # the selected table provides it natively.
        providers = LinExpr()
        for t in spec.provided_by_tables:
            providers.add_term(formulation.tio[t, 0], 1.0)
        model.add_eq(
            LinExpr.from_var(state.ohp[spec.name, 0]) - providers,
            0.0,
            f"ohp_base[{spec.name}]",
        )


def _add_property_propagation(formulation, state) -> None:
    """Production rule: the next outer operand has property x iff the join
    was realized by an implementation producing x."""
    model = formulation.model
    for spec in state.properties:
        producers = [
            impl for impl in state.implementations
            if spec.name in impl.produces
        ]
        for j in formulation.joins:
            if j + 1 > formulation.jmax:
                continue
            produced = lin_sum(
                state.jos[impl.name, j] for impl in producers
            )
            model.add_eq(
                LinExpr.from_var(state.ohp[spec.name, j + 1]) - produced,
                0.0,
                f"ohp_prop[{spec.name},{j + 1}]",
            )
