"""Intermediate result property specifications (paper Section 5.4).

Properties model physical traits of intermediate results — interesting
orders, residing in memory, being materialized — that gate which operator
implementations apply to the next join and are themselves produced by
operator implementations (or provided natively by base tables).

This module defines the declarative specs; the constraints live in
:mod:`repro.core.extensions.operator_choice`, because properties only make
sense when the MILP selects operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FormulationError
from repro.plans.operators import JoinAlgorithm


@dataclass(frozen=True)
class PropertySpec:
    """One intermediate-result property.

    Attributes
    ----------
    name:
        Property identifier (e.g. ``"sorted"``).
    provided_by_tables:
        Base tables whose on-disk representation already has the property
        (relevant for the first join's outer operand).
    """

    name: str
    provided_by_tables: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise FormulationError("property name must be non-empty")


@dataclass(frozen=True)
class ImplementationSpec:
    """One operator implementation the MILP can select for a join.

    Attributes
    ----------
    name:
        Unique implementation identifier.
    algorithm:
        The logical join algorithm it realizes (used for plan extraction
        and for pricing).
    requires:
        Properties the *outer operand* must have for this implementation
        to be applicable (``jos <= ohp`` constraints).
    produces:
        Properties the implementation's output has.
    presorted_outer:
        Sort-merge variant pricing: skip the outer sort stage (the
        decomposition the paper sketches for sort-merge sub-operators).
    """

    name: str
    algorithm: JoinAlgorithm
    requires: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()
    presorted_outer: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise FormulationError("implementation name must be non-empty")


def default_implementations() -> list[ImplementationSpec]:
    """The three standard operators with no property interactions."""
    return [
        ImplementationSpec("hash", JoinAlgorithm.HASH),
        ImplementationSpec("sort_merge", JoinAlgorithm.SORT_MERGE),
        ImplementationSpec(
            "block_nested_loop", JoinAlgorithm.BLOCK_NESTED_LOOP
        ),
    ]


def sorted_order_implementations() -> tuple[
    list[ImplementationSpec], list[PropertySpec]
]:
    """A ready-made Section 5.4 scenario: interesting orders.

    Sort-merge joins produce sorted output; a cheaper "presorted" merge
    variant skips the outer sort but requires sorted input.
    """
    implementations = [
        ImplementationSpec("hash", JoinAlgorithm.HASH),
        ImplementationSpec(
            "sort_merge",
            JoinAlgorithm.SORT_MERGE,
            produces=("sorted",),
        ),
        ImplementationSpec(
            "merge_presorted",
            JoinAlgorithm.SORT_MERGE,
            requires=("sorted",),
            produces=("sorted",),
            presorted_outer=True,
        ),
        ImplementationSpec(
            "block_nested_loop", JoinAlgorithm.BLOCK_NESTED_LOOP
        ),
    ]
    return implementations, [PropertySpec("sorted")]
