"""Expensive predicate placement (paper Section 5.1).

When predicate evaluation carries a per-tuple cost, evaluating early is no
longer automatically beneficial.  Following the paper:

* ``pao[p,j]`` stays only upper-bounded (the solver may postpone
  evaluation) but becomes monotone: an evaluated predicate remains
  evaluated;
* ``pco[p,j] = pao[p,j+1] - pao[p,j]`` flags the join *during* which ``p``
  is evaluated, with ``pao[p,jmax+1] := 1`` so every predicate is evaluated
  by the end;
* the evaluation charge is ``cost_per_tuple * pco[p,j] * co[j]``, a
  binary-times-continuous product linearized per Bisschop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.milp.expr import LinExpr
from repro.milp.variables import Variable
from repro.core.linearize import binary_times_continuous


@dataclass
class ExpensivePredicateState:
    """Variables created by the expensive-predicate extension."""

    pco: dict[tuple[str, int], Variable] = field(default_factory=dict)
    products: dict[tuple[str, int], Variable] = field(default_factory=dict)
    predicates: list[str] = field(default_factory=list)


def add_expensive_predicates(formulation) -> None:
    """Charge evaluation cost for every expensive multi-table predicate."""
    model = formulation.model
    state = ExpensivePredicateState()
    formulation.extensions["expensive_predicates"] = state

    expensive = [
        predicate
        for predicate in formulation.multi_predicates
        if predicate.is_expensive
    ]
    jmax = formulation.jmax
    for predicate in expensive:
        name = predicate.name
        state.predicates.append(name)
        # Once evaluated, a predicate stays evaluated.
        for j in range(jmax):
            model.add_le(
                formulation.pao[name, j] - formulation.pao[name, j + 1],
                0.0,
                f"pao_mono[{name},{j}]",
            )
        for j in formulation.joins:
            pco = model.add_binary(f"pco[{name},{j}]")
            state.pco[name, j] = pco
            if j < jmax:
                # pco = pao[j+1] - pao[j]
                model.add_eq(
                    LinExpr.from_var(pco)
                    - formulation.pao[name, j + 1]
                    + formulation.pao[name, j],
                    0.0,
                    f"pco_def[{name},{j}]",
                )
            else:
                # pao[p, jmax+1] := 1 by convention: whatever was not
                # evaluated earlier is evaluated during the last join.
                model.add_eq(
                    LinExpr.from_var(pco) + formulation.pao[name, j],
                    1.0,
                    f"pco_def[{name},{j}]",
                )
            product = binary_times_continuous(
                model,
                pco,
                formulation.co[j],
                name=f"pcw[{name},{j}]",
            )
            state.products[name, j] = product
            formulation.objective_terms.append(
                LinExpr.from_var(product, predicate.cost_per_tuple)
            )
