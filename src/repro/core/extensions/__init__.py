"""Formulation extensions (paper Section 5).

* :mod:`correlated` — correlated predicate groups (5.1).
* :mod:`expensive_predicates` — predicate evaluation cost placement (5.1).
* :mod:`projection` — column tracking and byte-size refinement (5.2).
* :mod:`operator_choice` — in-MILP operator selection (5.3).
* :mod:`properties` — intermediate-result properties / interesting orders
  specs (5.4).

N-ary predicates (5.1) need no extension module: the base formulation adds
one applicability row per referenced table, which covers any arity, and
unary predicates are pushed down into effective table cardinalities.
"""

from repro.core.extensions.properties import (
    ImplementationSpec,
    PropertySpec,
    default_implementations,
    sorted_order_implementations,
)

__all__ = [
    "ImplementationSpec",
    "PropertySpec",
    "default_implementations",
    "sorted_order_implementations",
]
