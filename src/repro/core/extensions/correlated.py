"""Correlated predicate groups (paper Section 5.1).

Each correlated group behaves like a virtual predicate ``g`` whose
selectivity corrects the independence assumption.  Its applicability
variable ``pao[g,j]`` is forced to the logical AND of the member
predicates' applicability:

* ``pao[g,j] >= 1 - |G| + sum(member indicators)`` — forced to one when
  every member applies;
* ``pao[g,j] <= indicator`` for each member — forced to zero otherwise.

A multi-table member's indicator is its own ``pao`` variable.  A *unary*
member is pushed down to the scan (its selectivity lives in the effective
table cardinality), so its indicator is simply ``tio[t,j]`` — the
predicate is applied exactly when its table is present.
"""

from __future__ import annotations

from repro.core.linearize import conjunction


def add_correlated_groups(formulation) -> None:
    """Register pao variables and constraints for every correlated group."""
    query = formulation.query
    model = formulation.model
    multi_names = {p.name for p in formulation.multi_predicates}
    for group in query.correlated_groups:
        tables: set[str] = set()
        for name in group.predicate_names:
            tables.update(query.predicate(name).tables)
        formulation.pao_requirements[group.name] = frozenset(tables)
        formulation.pao_log_terms[group.name] = group.log_correction
        for j in formulation.joins:
            variable = model.add_binary(f"pao[{group.name},{j}]")
            formulation.pao[group.name, j] = variable
            indicators = []
            for name in group.predicate_names:
                if name in multi_names:
                    indicators.append(formulation.pao[name, j])
                else:
                    table = query.predicate(name).tables[0]
                    indicators.append(formulation.tio[table, j])
            conjunction(
                model, variable, indicators, name=f"grp[{group.name},{j}]"
            )
            formulation.add_lco_term(j, variable, group.log_correction)
