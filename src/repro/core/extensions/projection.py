"""Projection tracking and byte-size refinement (paper Section 5.2).

Column presence in outer operands is tracked with binaries ``clo[t.c,j]``:

* a column can only be present when its table is: ``clo <= tio``;
* columns needed in the final result must survive: ``clo[l, final] = 1``;
* columns a predicate reads must be present at the join where the
  predicate is first evaluated;
* a projected-out column cannot reappear.  The paper states this as
  ``clo[l,j] >= clo[l,j+1]``, which would wrongly forbid columns of
  late-arriving tables; we use the corrected form
  ``clo[l,j+1] <= clo[l,j] + tii[t(l),j]`` — a column is present after
  join ``j`` only if it was present before or its table just arrived.

The refined outer byte size ``sum(Byte(l) * clo[l,j] * co[j])`` is a sum of
binary-times-continuous products, linearized per Bisschop; the hash-join
cost encoding picks it up automatically through
:func:`repro.core.cost_encoding.outer_pages_expression`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import FormulationError
from repro.milp.expr import LinExpr
from repro.milp.variables import Variable
from repro.core.linearize import binary_times_continuous

#: Extra join index representing the final result's column set.
FINAL = "final"


@dataclass
class ProjectionState:
    """Variables created by the projection extension."""

    columns: list[tuple[str, str]] = field(default_factory=list)
    clo: dict[tuple[str, str, object], Variable] = field(default_factory=dict)
    products: dict[tuple[str, str, int], Variable] = field(default_factory=dict)
    outer_bytes: dict[int, Variable] = field(default_factory=dict)


def add_projection(formulation) -> None:
    """Track output columns and refine outer-operand byte sizes."""
    if formulation.config.cost_model not in ("hash", "sort_merge", "bnl"):
        raise FormulationError(
            "projection refines byte-based costs; use an operator cost model"
        )
    query = formulation.query
    model = formulation.model
    state = ProjectionState()
    formulation.extensions["projection"] = state

    for table in query.tables:
        for column in table.columns:
            state.columns.append((table.name, column.name))
    if not state.columns:
        raise FormulationError(
            "projection extension requires tables with declared columns"
        )
    required = set(query.required_columns)

    table_of = {
        (t, c): t for (t, c) in state.columns
    }
    join_indices = list(formulation.joins) + [FINAL]

    for t, c in state.columns:
        for j in join_indices:
            state.clo[t, c, j] = model.add_binary(f"clo[{t}.{c},{j}]")
        for j in formulation.joins:
            # Column presence requires table presence.
            model.add_le(
                state.clo[t, c, j] - formulation.tio[t, j],
                0.0,
                f"clo_tbl[{t}.{c},{j}]",
            )
            # No reappearing after projection (corrected arrival-aware form).
            successor = j + 1 if j < formulation.jmax else FINAL
            model.add_le(
                state.clo[t, c, successor]
                - state.clo[t, c, j]
                - formulation.tii[t, j],
                0.0,
                f"clo_keep[{t}.{c},{j}]",
            )
        if (t, c) in required:
            model.add_eq(
                LinExpr.from_var(state.clo[t, c, FINAL]),
                1.0,
                f"clo_final[{t}.{c}]",
            )

    _add_predicate_column_constraints(formulation, state, table_of)
    _add_byte_sizes(formulation, state)


def _add_predicate_column_constraints(formulation, state, table_of) -> None:
    """Columns a predicate reads must be alive when it is evaluated.

    Predicate applicability is made monotone so "the join where the
    predicate is first evaluated" is well defined; the column must be
    present in the operand right after that join.
    """
    model = formulation.model
    jmax = formulation.jmax
    for predicate in formulation.multi_predicates:
        name = predicate.name
        for j in range(jmax):
            constraint_name = f"pao_mono_proj[{name},{j}]"
            if constraint_name not in model._constraint_names:
                model.add_le(
                    formulation.pao[name, j] - formulation.pao[name, j + 1],
                    0.0,
                    constraint_name,
                )
        for t, c in predicate.columns:
            if (t, c) not in table_of:
                raise FormulationError(
                    f"predicate {name!r} reads unknown column {t}.{c}"
                )
            for j in formulation.joins:
                previous = (
                    formulation.pao[name, j - 1] if j > 0 else None
                )
                newly_evaluated = LinExpr.from_var(formulation.pao[name, j])
                if previous is not None:
                    newly_evaluated = newly_evaluated - previous
                # clo >= pao[j] - pao[j-1]: alive at first evaluation.
                model.add_ge(
                    state.clo[t, c, j] - newly_evaluated,
                    0.0,
                    f"clo_pred[{name},{t}.{c},{j}]",
                )


def _add_byte_sizes(formulation, state) -> None:
    """Outer byte size: sum of per-column byte widths times cardinality."""
    model = formulation.model
    query = formulation.query
    cap = formulation.grid.max_value
    for j in formulation.joins:
        total = LinExpr()
        upper = 0.0
        for t, c in state.columns:
            byte_size = query.table(t).column(c).byte_size
            product = binary_times_continuous(
                model,
                state.clo[t, c, j],
                formulation.co[j],
                name=f"clw[{t}.{c},{j}]",
                upper_bound=cap,
            )
            state.products[t, c, j] = product
            total.add_term(product, float(byte_size))
            upper += byte_size * cap
        bytes_var = model.add_continuous(f"bytes_o[{j}]", 0.0, upper)
        state.outer_bytes[j] = bytes_var
        model.add_eq(
            LinExpr.from_var(bytes_var) - total, 0.0, f"bytes_def[{j}]"
        )
