"""Standard MILP linearization tricks (Bisschop, "Integer Linear
Programming Tricks").

The paper repeatedly relies on one device: the product of a binary variable
``b`` and a bounded non-negative continuous quantity ``x`` can be replaced
by an auxiliary variable ``w`` with four linear constraints::

    w <= U * b          (w vanishes when b = 0)
    w <= x              (w never exceeds x)
    w >= x - U * (1 - b)  (w equals x when b = 1)
    w >= 0

where ``U`` is an upper bound on ``x``.  Used by the block nested-loop cost
(Section 4.3), expensive predicates (5.1), projection byte sizes (5.2) and
operator selection (5.3).
"""

from __future__ import annotations

import math

from repro.exceptions import FormulationError
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.variables import Variable, VarType


def expression_bounds(model: Model, expr: LinExpr) -> tuple[float, float]:
    """Interval bounds of a linear expression from its variables' bounds."""
    low = expr.constant
    high = expr.constant
    for index, coefficient in expr.coefficients.items():
        variable = model.variables[index]
        if coefficient >= 0:
            low += coefficient * variable.lb
            high += coefficient * variable.ub
        else:
            low += coefficient * variable.ub
            high += coefficient * variable.lb
    return low, high


def binary_times_continuous(
    model: Model,
    binary: Variable,
    continuous: "Variable | LinExpr",
    name: str,
    upper_bound: float | None = None,
) -> Variable:
    """Create ``w = binary * continuous`` via the four-constraint trick.

    ``continuous`` must be provably within ``[0, upper_bound]``; the bound
    is derived from variable bounds when not given.  Returns the product
    variable ``w``.
    """
    if binary.vtype is not VarType.BINARY:
        raise FormulationError(
            f"{binary.name!r} must be binary for product linearization"
        )
    expr = LinExpr.coerce(continuous)
    low, high = expression_bounds(model, expr)
    if low < -1e-9:
        raise FormulationError(
            f"product linearization for {name!r} requires a non-negative "
            f"continuous factor (lower bound {low})"
        )
    bound = upper_bound if upper_bound is not None else high
    if not math.isfinite(bound):
        raise FormulationError(
            f"product linearization for {name!r} requires a finite upper "
            "bound on the continuous factor"
        )
    product = model.add_continuous(name, 0.0, bound)
    model.add_le(product - bound * binary, 0.0, f"{name}[cap]")
    model.add_le(product - expr, 0.0, f"{name}[le_x]")
    model.add_ge(
        product - expr - bound * binary, -bound, f"{name}[ge_x]"
    )
    return product


def implication(
    model: Model,
    antecedent: Variable,
    consequent: Variable,
    name: str,
) -> None:
    """Add ``antecedent = 1  =>  consequent = 1`` for binary variables."""
    model.add_le(antecedent - consequent, 0.0, name)


def conjunction(
    model: Model,
    result: Variable,
    members: list[Variable],
    name: str,
) -> None:
    """Force binary ``result`` to equal the AND of binary ``members``.

    Mirrors the correlated-group constraints of Section 5.1:
    ``result >= 1 - |members| + sum(members)`` and ``result <= member``
    for every member.
    """
    if not members:
        raise FormulationError("conjunction needs at least one member")
    total = LinExpr()
    for index, member in enumerate(members):
        model.add_le(result - member, 0.0, f"{name}[le{index}]")
        total.add_term(member, 1.0)
    # result >= 1 - |members| + sum  <=>  result - sum >= 1 - |members|
    model.add_ge(result - total, 1 - len(members), f"{name}[ge]")


def big_m_for(log_upper: float, log_threshold: float) -> float:
    """Big-M constant for a threshold activation row.

    The row ``lco - M * cto <= log(theta)`` must be satisfiable with
    ``cto = 1`` for every reachable ``lco``, so ``M`` only needs to cover
    ``log_upper - log_threshold`` (plus slack for numeric safety).
    """
    return max(1.0, log_upper - log_threshold + 1.0)
