"""The join-ordering MILP formulation (paper Section 4, Tables 1 and 2).

Variables (names follow the paper):

* ``tio[t,j]`` / ``tii[t,j]`` — binary; table ``t`` is in the outer/inner
  operand of the ``j``-th join.
* ``pao[p,j]`` — binary; predicate ``p`` is applicable on (i.e. has been
  evaluated in) the outer operand of join ``j``.  N-ary predicates are
  handled natively by adding one requirement row per referenced table
  (Section 5.1); unary predicates are pushed down into effective table
  cardinalities, mirroring :class:`~repro.plans.cardinality.CardinalityModel`.
* ``lco[j]`` — continuous; natural log of the outer operand's cardinality.
* ``cto[r,j]`` — binary; the outer operand's cardinality reaches the
  ``r``-th threshold.
* ``co[j]`` / ``ci[j]`` — continuous; approximated raw cardinality of the
  outer/inner operand.

Constraints are exactly the paper's Table 2 (with the threshold big-M
computed from per-query log-cardinality bounds instead of a literal
"infinity"), plus optional valid threshold-ordering rows.
"""

from __future__ import annotations

import math

from repro.catalog.predicate import Predicate
from repro.catalog.query import Query
from repro.exceptions import FormulationError
from repro.milp.expr import LinExpr, lin_sum
from repro.milp.model import Model
from repro.milp.variables import Variable
from repro.plans.cardinality import CardinalityModel
from repro.core.config import FormulationConfig
from repro.core.linearize import big_m_for
from repro.core.thresholds import ThresholdGrid


class JoinOrderFormulation:
    """Builds the MILP for one query under one configuration.

    Parameters
    ----------
    query:
        Query to encode; must join at least two tables.
    config:
        Formulation configuration (precision, cost model, extensions).
    implementations:
        Optional operator implementation specs for the Section 5.3
        extension; defaults to hash/sort-merge/BNL when
        ``config.select_operators`` is on.
    properties:
        Optional intermediate-result property specs (Section 5.4); requires
        operator selection.
    """

    def __init__(
        self,
        query: Query,
        config: FormulationConfig | None = None,
        implementations=None,
        properties=(),
    ) -> None:
        if query.num_tables < 2:
            raise FormulationError(
                "the MILP formulation needs at least two tables"
            )
        self.query = query
        self.config = config or FormulationConfig()
        self.context = self.config.cost_context()
        self.cards = CardinalityModel(query)
        self.grid = ThresholdGrid.for_query(query, self.config)
        self.model = Model(query.name or "join-ordering")
        self.joins = range(query.num_joins)
        self.jmax = query.num_joins - 1

        #: Multi-table predicates: the ones whose applicability is modeled.
        self.multi_predicates: list[Predicate] = [
            predicate
            for predicate in query.predicates
            if predicate.arity >= 2
        ]

        # Variable registries, keyed as in the paper.
        self.tio: dict[tuple[str, int], Variable] = {}
        self.tii: dict[tuple[str, int], Variable] = {}
        self.pao: dict[tuple[str, int], Variable] = {}
        self.lco: dict[int, Variable] = {}
        self.cto: dict[tuple[int, int], Variable] = {}
        self.co: dict[int, Variable] = {}
        self.ci: dict[int, Variable] = {}

        #: Applicability requirements per pao item (tables that must be in
        #: the operand) and the item's contribution to log-cardinality.
        self.pao_requirements: dict[str, frozenset[str]] = {}
        self.pao_log_terms: dict[str, float] = {}

        #: Per-join log-cardinality expression, extended by the correlated
        #: groups extension before the lco equalities are emitted.
        self._lco_terms: dict[int, LinExpr] = {}

        #: Objective terms accumulated by the cost encoding and extensions.
        self.objective_terms: list[LinExpr] = []

        #: Extension state objects, keyed by extension name.
        self.extensions: dict[str, object] = {}

        self._build_join_order()
        self._build_predicates()
        if query.correlated_groups:
            from repro.core.extensions.correlated import add_correlated_groups

            add_correlated_groups(self)
        self._build_log_cardinality()
        self._build_thresholds()
        self._build_cardinalities()
        self._build_objective(implementations, properties)
        self.model.set_objective(lin_sum(self.objective_terms))

    # ------------------------------------------------------------------
    # Statistics helpers shared with extensions
    # ------------------------------------------------------------------

    def effective_log_card(self, table: str) -> float:
        """Log cardinality of a table with unary predicates pushed down."""
        return self.cards.effective_log_cardinality(table)

    def effective_card(self, table: str) -> float:
        """Cardinality of a table with unary predicates pushed down."""
        return self.cards.effective_cardinality(table)

    def table_pages(self, table: str) -> float:
        """Disk pages of a base table under the formulation's context."""
        return self.context.pages(self.effective_card(table))

    @property
    def lco_bounds(self) -> tuple[float, float]:
        """Reachable range of any ``lco`` variable."""
        lower = sum(
            min(0.0, self.effective_log_card(t))
            for t in self.query.table_names
        )
        lower += sum(
            min(0.0, term) for term in self.pao_log_terms.values()
        )
        upper = sum(
            max(0.0, self.effective_log_card(t))
            for t in self.query.table_names
        )
        upper += sum(
            max(0.0, term) for term in self.pao_log_terms.values()
        )
        return lower, upper

    # ------------------------------------------------------------------
    # Section 4.1 — join order
    # ------------------------------------------------------------------

    def _build_join_order(self) -> None:
        model = self.model
        tables = self.query.table_names
        for j in self.joins:
            for t in tables:
                # Join-order binaries get top branching priority: once they
                # are integral, predicate and threshold flags follow almost
                # directly from the LP.
                self.tio[t, j] = model.add_binary(f"tio[{t},{j}]", priority=3)
                self.tii[t, j] = model.add_binary(f"tii[{t},{j}]", priority=3)
        # One table forms the outer operand of the first join.
        model.add_eq(
            lin_sum(self.tio[t, 0] for t in tables), 1.0, "tio_first"
        )
        for j in self.joins:
            # Inner operands are single tables (left-deep shape).
            model.add_eq(
                lin_sum(self.tii[t, j] for t in tables),
                1.0,
                f"tii_single[{j}]",
            )
            # Operands of one join never overlap.
            for t in tables:
                model.add_le(
                    self.tio[t, j] + self.tii[t, j],
                    1.0,
                    f"no_overlap[{t},{j}]",
                )
        # The result of join j-1 is the outer operand of join j.
        for j in self.joins:
            if j == 0:
                continue
            for t in tables:
                model.add_eq(
                    self.tio[t, j] - self.tii[t, j - 1] - self.tio[t, j - 1],
                    0.0,
                    f"chain[{t},{j}]",
                )

    # ------------------------------------------------------------------
    # Section 4.2 — predicate applicability
    # ------------------------------------------------------------------

    def _build_predicates(self) -> None:
        model = self.model
        for predicate in self.multi_predicates:
            self.pao_requirements[predicate.name] = frozenset(predicate.tables)
            self.pao_log_terms[predicate.name] = predicate.log_selectivity
            for j in self.joins:
                variable = model.add_binary(
                    f"pao[{predicate.name},{j}]", priority=2
                )
                self.pao[predicate.name, j] = variable
                for t in predicate.tables:
                    model.add_le(
                        variable - self.tio[t, j],
                        0.0,
                        f"pao_req[{predicate.name},{j},{t}]",
                    )
                treated_as_expensive = (
                    predicate.is_expensive
                    and self.config.enable_expensive_predicates
                )
                if not treated_as_expensive:
                    # Force free predicates to be applied as soon as every
                    # referenced table is present.  The paper relies on the
                    # solver doing this voluntarily (applying a predicate
                    # only reduces cost); making it explicit keeps the
                    # cardinality model exact even when correlated-group
                    # corrections with factor > 1 would otherwise reward
                    # skipping a member predicate.
                    requirement = lin_sum(
                        self.tio[t, j] for t in predicate.tables
                    )
                    model.add_ge(
                        variable - requirement,
                        1 - predicate.arity,
                        f"pao_force[{predicate.name},{j}]",
                    )
        # Seed the per-join log-cardinality expressions.
        for j in self.joins:
            expr = LinExpr()
            for t in self.query.table_names:
                expr.add_term(self.tio[t, j], self.effective_log_card(t))
            for predicate in self.multi_predicates:
                expr.add_term(
                    self.pao[predicate.name, j], predicate.log_selectivity
                )
            self._lco_terms[j] = expr

    def add_lco_term(self, j: int, variable: Variable, coefficient: float) -> None:
        """Extension hook: add a weighted variable to join ``j``'s
        log-cardinality (used by correlated groups)."""
        if j in self.lco:
            raise FormulationError(
                "log-cardinality terms must be added before lco is built"
            )
        self._lco_terms[j].add_term(variable, coefficient)

    # ------------------------------------------------------------------
    # Section 4.2 — log-cardinality, thresholds, raw cardinalities
    # ------------------------------------------------------------------

    def _build_log_cardinality(self) -> None:
        model = self.model
        lower, upper = self.lco_bounds
        for j in self.joins:
            variable = model.add_continuous(f"lco[{j}]", lower, upper)
            self.lco[j] = variable
            model.add_eq(
                variable - self._lco_terms[j], 0.0, f"lco_def[{j}]"
            )

    def _build_thresholds(self) -> None:
        model = self.model
        _, lco_upper = self.lco_bounds
        for j in self.joins:
            for r, log_threshold in enumerate(self.grid.log_thresholds):
                variable = model.add_binary(f"cto[{r},{j}]", priority=1)
                self.cto[r, j] = variable
                big_m = big_m_for(lco_upper, log_threshold)
                # lco[j] - M * cto[r,j] <= log(theta_r): reaching the
                # threshold forces the flag to one.
                model.add_le(
                    self.lco[j] - big_m * variable,
                    log_threshold,
                    f"cto_act[{r},{j}]",
                )
            if self.config.threshold_ordering:
                for r in range(1, self.grid.num_thresholds):
                    model.add_le(
                        self.cto[r, j] - self.cto[r - 1, j],
                        0.0,
                        f"cto_ord[{r},{j}]",
                    )

    def _build_cardinalities(self) -> None:
        model = self.model
        base, deltas = self.grid.piecewise()
        # Headroom above the saturation value: at fully saturated joins the
        # equality pins co to its maximum, and a bound set to the exact
        # float sum is hit from above by reordered summation inside the LP
        # solver, producing false infeasibilities.
        co_upper = self.grid.max_value * 1.001
        for j in self.joins:
            co = model.add_continuous(f"co[{j}]", 0.0, co_upper)
            self.co[j] = co
            expr = LinExpr.from_var(co)
            for r, delta in enumerate(deltas):
                expr.add_term(self.cto[r, j], -delta)
            model.add_eq(expr, base, f"co_def[{j}]")

            max_inner = max(
                self.effective_card(t) for t in self.query.table_names
            )
            ci = model.add_continuous(f"ci[{j}]", 0.0, max_inner)
            self.ci[j] = ci
            inner = LinExpr.from_var(ci)
            for t in self.query.table_names:
                inner.add_term(self.tii[t, j], -self.effective_card(t))
            model.add_eq(inner, 0.0, f"ci_def[{j}]")
        if self.config.rounding == "upper" and self.config.tangent_cuts:
            self._add_tangent_cuts()

    def _add_tangent_cuts(self) -> None:
        """Valid cuts tightening the threshold big-M relaxation.

        In upper-rounding mode every integral solution satisfies
        ``co[j] >= exp(lco[j])`` (the bracket's upper end dominates the true
        cardinality).  ``exp`` is convex, so each tangent at an anchor
        ``x0`` gives the valid linear cut ``co >= e^x0 * (lco - x0 + 1)``.
        Anchors whose cut would exceed the saturated ``co`` upper bound at
        ``lco``'s maximum are skipped: above the saturation cap ``co`` is
        deliberately clamped, and such a cut would cut off feasible
        (if terrible) plans.
        """
        model = self.model
        grid = self.grid
        _, lco_upper = self.lco_bounds
        co_upper = grid.max_value
        anchors: list[float] = []
        span = grid.log_top - grid.log_anchor
        count = self.config.tangent_cuts
        for k in range(count):
            x0 = grid.log_anchor + (k + 0.5) * span / count
            # Safety: at the largest reachable lco, the cut's rhs must stay
            # within co's bounds, otherwise the cut is not globally valid.
            if math.exp(x0) * (lco_upper - x0 + 1.0) <= co_upper:
                anchors.append(x0)
        for j in self.joins:
            for k, x0 in enumerate(anchors):
                slope = math.exp(x0)
                model.add_ge(
                    LinExpr.from_var(self.co[j])
                    - LinExpr.from_var(self.lco[j], slope),
                    slope * (1.0 - x0),
                    f"tangent[{k},{j}]",
                )

    # ------------------------------------------------------------------
    # Section 4.3 / Section 5 — objective and extensions
    # ------------------------------------------------------------------

    def _build_objective(self, implementations, properties) -> None:
        from repro.core import cost_encoding
        from repro.core.extensions import (
            expensive_predicates,
            operator_choice,
            projection,
        )

        wants_projection = (
            self.config.enable_projection and self.query.required_columns
        )
        if wants_projection:
            projection.add_projection(self)

        if self.config.select_operators:
            operator_choice.add_operator_selection(
                self, implementations, properties
            )
        else:
            if properties:
                raise FormulationError(
                    "result properties require operator selection"
                )
            cost_encoding.add_cost_objective(self)

        wants_expensive = (
            self.config.enable_expensive_predicates
            and any(p.is_expensive for p in self.multi_predicates)
        )
        if wants_expensive:
            expensive_predicates.add_expensive_predicates(self)

    # ------------------------------------------------------------------
    # Exact log-cardinality of a concrete operand (warm starts, tests)
    # ------------------------------------------------------------------

    def operand_log_cardinality(self, tables: frozenset[str]) -> float:
        """Log cardinality the MILP assigns to an operand containing
        ``tables`` with every applicable pao item active."""
        value = sum(self.effective_log_card(t) for t in tables)
        for name, required in self.pao_requirements.items():
            if required <= tables:
                value += self.pao_log_terms[name]
        return value

    def stats(self) -> dict[str, int]:
        """Model-size statistics (Figure 1 / Section 6)."""
        stats = self.model.stats()
        stats["thresholds_per_result"] = self.grid.num_thresholds
        return stats


def operand_prefixes(order: list[str]) -> list[frozenset[str]]:
    """Outer-operand table sets per join for a join order (helper)."""
    prefixes: list[frozenset[str]] = []
    current: frozenset[str] = frozenset()
    for index in range(len(order) - 1):
        current = current | {order[index]}
        prefixes.append(current)
    return prefixes


def fits_in_double(value: float) -> bool:
    """Whether a coefficient is numerically safe for the LP solver."""
    return math.isfinite(value) and abs(value) < 1e30
