"""Warm-start assignments: encode a concrete plan as MILP variable values.

Commercial solvers seed branch-and-bound with construction heuristics; our
substrate accepts an explicit warm start instead.  This module computes a
*consistent integral assignment* for a given left-deep plan — join-order
binaries, predicate applicability, threshold flags and extension binaries.
Continuous auxiliaries (``lco``, ``co``, products, ...) are intentionally
left out: the solver's fix-and-solve repair derives them by solving one LP
with the integral variables fixed, which is both simpler and immune to
rounding drift.
"""

from __future__ import annotations

from repro.exceptions import FormulationError
from repro.plans.plan import LeftDeepPlan


def assignment_for_plan(formulation, plan: LeftDeepPlan) -> dict[str, float]:
    """Integral variable values encoding ``plan`` in ``formulation``.

    The assignment applies every predicate as early as possible (also the
    expensive ones — a feasible, if not necessarily optimal, placement).
    """
    if set(plan.query.table_names) != set(formulation.query.table_names):
        raise FormulationError("plan and formulation query mismatch")
    values: dict[str, float] = {}
    order = plan.join_order
    tables = formulation.query.table_names

    # --- join order binaries -----------------------------------------
    outer: set[str] = {order[0]}
    outer_sets: list[frozenset[str]] = []
    for j in formulation.joins:
        outer_sets.append(frozenset(outer))
        inner = order[j + 1]
        for t in tables:
            values[f"tio[{t},{j}]"] = 1.0 if t in outer else 0.0
            values[f"tii[{t},{j}]"] = 1.0 if t == inner else 0.0
        outer.add(inner)
    result_sets = [outer_set | {order[j + 1]}
                   for j, outer_set in enumerate(outer_sets)]

    # --- predicate applicability (as early as possible) ---------------
    applicable: dict[str, list[bool]] = {}
    for name, required in formulation.pao_requirements.items():
        flags = [required <= outer_set for outer_set in outer_sets]
        applicable[name] = flags
        for j in formulation.joins:
            values[f"pao[{name},{j}]"] = 1.0 if flags[j] else 0.0

    # --- threshold flags ----------------------------------------------
    for j in formulation.joins:
        log_card = formulation.operand_log_cardinality(outer_sets[j])
        for r, flag in enumerate(formulation.grid.active_flags(log_card)):
            values[f"cto[{r},{j}]"] = float(flag)

    _fill_expensive(formulation, values, applicable)
    _fill_operator_choice(formulation, values, plan, order)
    _fill_projection(formulation, values, outer_sets, result_sets)
    return values


def _fill_expensive(formulation, values, applicable) -> None:
    state = formulation.extensions.get("expensive_predicates")
    if state is None:
        return
    jmax = formulation.jmax
    for name in state.predicates:
        flags = applicable[name]
        for j in formulation.joins:
            nxt = flags[j + 1] if j < jmax else True
            values[f"pco[{name},{j}]"] = 1.0 if (nxt and not flags[j]) else 0.0


def _fill_operator_choice(formulation, values, plan, order) -> None:
    state = formulation.extensions.get("operator_choice")
    if state is None:
        return
    # Map each step's algorithm onto the first requirement-free
    # implementation realizing it.
    produced_before: set[str] = set()
    for j, step in enumerate(plan.steps):
        chosen = None
        for spec in state.implementations:
            if spec.algorithm is not step.algorithm:
                continue
            if all(prop in produced_before for prop in spec.requires):
                chosen = spec
                break
        if chosen is None:
            raise FormulationError(
                f"no applicable implementation for {step.algorithm} "
                f"at join {j}"
            )
        for spec in state.implementations:
            values[f"jos[{spec.name},{j}]"] = (
                1.0 if spec is chosen else 0.0
            )
        # Property bookkeeping for the *next* join's outer operand.
        next_properties = set(chosen.produces)
        if j == 0:
            for prop_spec in state.properties:
                provided = order[0] in prop_spec.provided_by_tables
                values[f"ohp[{prop_spec.name},0]"] = 1.0 if provided else 0.0
        if j + 1 <= formulation.jmax:
            for prop_spec in state.properties:
                values[f"ohp[{prop_spec.name},{j + 1}]"] = (
                    1.0 if prop_spec.name in next_properties else 0.0
                )
        produced_before = next_properties


def _fill_projection(formulation, values, outer_sets, result_sets) -> None:
    state = formulation.extensions.get("projection")
    if state is None:
        return
    # Keep every column of every present table: always feasible, and the
    # LP repair prices it; the solver improves on it during search.
    from repro.core.extensions.projection import FINAL

    for t, c in state.columns:
        for j in formulation.joins:
            present = t in outer_sets[j]
            values[f"clo[{t}.{c},{j}]"] = 1.0 if present else 0.0
        values[f"clo[{t}.{c},{FINAL}]"] = 1.0
