"""Configuration of the join-ordering MILP formulation.

The paper evaluates three configurations differing in cardinality
approximation precision (Section 7.1): tolerance factor 3 ("high"), 10
("medium") and 100 ("low"), with per-query-size caps on the number of
threshold variables per intermediate result.  :class:`FormulationConfig`
captures those knobs plus the cost model and extension switches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.catalog.table import DEFAULT_PAGE_SIZE, DEFAULT_TUPLE_SIZE
from repro.exceptions import FormulationError
from repro.plans.operators import CostContext

#: Cost models the formulation can encode as its objective.
COST_MODELS = ("cout", "hash", "sort_merge", "bnl")

#: Cardinality rounding modes for the threshold approximation.
ROUNDING_MODES = ("upper", "lower")


@dataclass(frozen=True)
class FormulationConfig:
    """Knobs of the join-ordering MILP formulation.

    Attributes
    ----------
    tolerance:
        Geometric spacing factor of the cardinality threshold grid; the
        approximated cardinality is within this factor of the truth while
        the value falls inside the grid's range.  Paper values: 3 (high
        precision), 10 (medium), 100 (low).
    max_thresholds:
        Optional cap on threshold variables per intermediate result
        (the paper caps at 60/100 for high precision and 15/25 for low).
        ``None`` sizes the grid to cover the full cardinality range.
    cardinality_cap:
        Saturation point for represented cardinalities.  Intermediate
        results larger than the cap all price identically, which keeps MILP
        coefficients within the LP solver's legal range (HiGHS rejects
        matrix values above ~1e15).  ``None`` disables — only safe with
        small queries.
    rounding:
        ``"upper"`` (default, conservative over-estimate; the paper's
        Example 2 second variant) or ``"lower"``.
    cost_model:
        Objective: ``"cout"``, ``"hash"``, ``"sort_merge"`` or ``"bnl"``.
    threshold_ordering:
        Add ``cto[r+1] <= cto[r]`` ordering constraints (valid strengthening;
        an ablation toggle).
    tangent_cuts:
        Number of tangent cuts ``co >= e^x0 * (lco - x0 + 1)`` per join.
        In upper-rounding mode every integral solution satisfies
        ``co >= exp(lco)``, and since ``exp`` is convex its tangents are
        valid linear cuts that dramatically tighten the big-M relaxation.
        0 disables (ablation toggle); ignored in lower-rounding mode.
    select_operators:
        Let the MILP choose per-join operator implementations (Section 5.3).
    enable_projection:
        Track column sets and byte sizes (Section 5.2); activates only when
        the query declares ``required_columns``.
    enable_expensive_predicates:
        Charge predicate evaluation cost (Section 5.1); activates only when
        the query has predicates with ``cost_per_tuple > 0``.
    tuple_size, page_size, buffer_pages:
        Physical cost parameters shared with the exact evaluator.
    label:
        Display name used by the experiment harness.
    """

    tolerance: float = 3.0
    max_thresholds: int | None = None
    cardinality_cap: float | None = 1e12
    rounding: str = "upper"
    cost_model: str = "hash"
    threshold_ordering: bool = True
    tangent_cuts: int = 8
    select_operators: bool = False
    enable_projection: bool = False
    enable_expensive_predicates: bool = True
    tuple_size: int = DEFAULT_TUPLE_SIZE
    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pages: int = 64
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.tolerance <= 1.0:
            raise FormulationError(
                f"tolerance must exceed 1, got {self.tolerance}"
            )
        if self.max_thresholds is not None and self.max_thresholds < 1:
            raise FormulationError("max_thresholds must be >= 1")
        if self.cardinality_cap is not None and self.cardinality_cap <= 1:
            raise FormulationError("cardinality_cap must exceed 1")
        if self.rounding not in ROUNDING_MODES:
            raise FormulationError(
                f"rounding must be one of {ROUNDING_MODES}, "
                f"got {self.rounding!r}"
            )
        if self.cost_model not in COST_MODELS:
            raise FormulationError(
                f"cost_model must be one of {COST_MODELS}, "
                f"got {self.cost_model!r}"
            )

    # ------------------------------------------------------------------
    # Paper presets
    # ------------------------------------------------------------------

    @classmethod
    def high_precision(
        cls, num_tables: int | None = None, **overrides
    ) -> "FormulationConfig":
        """Paper's high-precision configuration: tolerance factor 3.

        Uses up to 60 threshold variables per intermediate result for up to
        40 tables, 100 beyond (Section 7.1).
        """
        cap = None
        if num_tables is not None:
            cap = 60 if num_tables <= 40 else 100
        return cls(
            tolerance=3.0, max_thresholds=cap, label="high", **overrides
        )

    @classmethod
    def medium_precision(
        cls, num_tables: int | None = None, **overrides
    ) -> "FormulationConfig":
        """Paper's medium-precision configuration: tolerance factor 10."""
        cap = None
        if num_tables is not None:
            cap = 30 if num_tables <= 40 else 50
        return cls(
            tolerance=10.0, max_thresholds=cap, label="medium", **overrides
        )

    @classmethod
    def low_precision(
        cls, num_tables: int | None = None, **overrides
    ) -> "FormulationConfig":
        """Paper's low-precision configuration: tolerance factor 100.

        Uses up to 15 threshold variables per result for up to 40 tables,
        25 beyond (Section 7.1).
        """
        cap = None
        if num_tables is not None:
            cap = 15 if num_tables <= 40 else 25
        return cls(
            tolerance=100.0, max_thresholds=cap, label="low", **overrides
        )

    @classmethod
    def presets(cls, num_tables: int | None = None) -> "list[FormulationConfig]":
        """The three paper configurations, high to low precision."""
        return [
            cls.high_precision(num_tables),
            cls.medium_precision(num_tables),
            cls.low_precision(num_tables),
        ]

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------

    def cost_context(self) -> CostContext:
        """Physical cost parameters as a :class:`CostContext`."""
        return CostContext(
            tuple_size=self.tuple_size,
            page_size=self.page_size,
            buffer_pages=self.buffer_pages,
        )

    def with_cost_model(self, cost_model: str) -> "FormulationConfig":
        """Copy with a different cost model (ablation helper)."""
        return replace(self, cost_model=cost_model)
