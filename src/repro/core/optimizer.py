"""The MILP-based join order optimizer (public facade).

Ties the pieces together exactly as the paper's prototype does: transform
the query into a MILP (:class:`~repro.core.formulation.JoinOrderFormulation`),
solve it with the generic MILP solver
(:class:`~repro.milp.branch_and_bound.BranchAndBoundSolver`), read the
solution out into a query plan (:mod:`repro.core.extraction`) — with the
solver's anytime event stream exposed for the Figure 2 experiments.

The default solver options use ``backend="auto"``: node LP relaxations of
small formulations run on the warm-start capable revised simplex (each
branch-and-bound node re-optimizes from its parent's basis with a few
dual-simplex pivots), larger ones on scipy/HiGHS.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.catalog.query import Query
from repro.dp.greedy import GreedyOptimizer
from repro.milp.branch_and_bound import (
    AnytimeCallback,
    BranchAndBoundSolver,
    SolverOptions,
)
from repro.milp.solution import IncumbentEvent, MILPSolution, SolveStatus
from repro.plans.cost import PlanCostEvaluator
from repro.plans.operators import JoinAlgorithm
from repro.plans.plan import LeftDeepPlan
from repro.core.config import FormulationConfig
from repro.core.extraction import _default_algorithm, extract_plan
from repro.core.formulation import JoinOrderFormulation
from repro.core.warmstart import assignment_for_plan


@dataclass
class OptimizationResult:
    """Everything one MILP optimization run produced.

    Attributes
    ----------
    query:
        The optimized query.
    plan:
        The extracted plan (``None`` when the solver found no incumbent).
    status:
        Final solver status.
    objective:
        MILP objective of the incumbent (approximated cost).
    best_bound:
        Proven lower bound on the optimal MILP objective.
    true_cost:
        Exact cost of ``plan`` under the configured cost model.
    solve_time:
        Wall-clock seconds spent in the solver.
    events:
        The solver's anytime event stream (Figure 2's raw data).
    formulation_stats:
        Model-size statistics (Figure 1's raw data).
    milp_solution:
        The underlying solver result, for diagnostics.
    """

    query: Query
    plan: LeftDeepPlan | None
    status: SolveStatus
    objective: float
    best_bound: float
    true_cost: float | None
    solve_time: float
    events: list[IncumbentEvent] = field(default_factory=list)
    formulation_stats: dict[str, int] = field(default_factory=dict)
    milp_solution: MILPSolution | None = None

    @property
    def optimality_factor(self) -> float:
        """Guaranteed ``cost / lower-bound`` factor (Figure 2's metric)."""
        if self.milp_solution is None:
            # Trivial single-table plans carry no solver run but are
            # optimal by construction.
            return 1.0 if self.status is SolveStatus.OPTIMAL else math.inf
        return self.milp_solution.optimality_factor

    @property
    def gap(self) -> float:
        """Final relative MILP gap."""
        if self.milp_solution is None:
            return math.inf
        return self.milp_solution.gap


class MILPJoinOptimizer:
    """Join order optimization via mixed integer linear programming.

    .. deprecated::
        New code should go through :mod:`repro.api` — either
        ``create_optimizer("milp")`` or :class:`repro.api.OptimizerService`
        — which return the unified :class:`~repro.api.PlanResult` and give
        access to every other algorithm behind the same surface.  This
        class remains the MILP *engine* those adapters wrap and keeps
        working; only its role as a public entry point is deprecated.

    Parameters
    ----------
    config:
        Formulation configuration; defaults to high precision with the
        hash-join cost model (the paper's experimental setting).
    solver_options:
        Branch-and-bound tuning; defaults to the paper's 60-second budget.

    Examples
    --------
    >>> from repro.workloads import QueryGenerator
    >>> query = QueryGenerator(seed=1).generate("star", 6)
    >>> optimizer = MILPJoinOptimizer()
    >>> result = optimizer.optimize(query)
    >>> result.plan is not None
    True
    """

    def __init__(
        self,
        config: FormulationConfig | None = None,
        solver_options: SolverOptions | None = None,
    ) -> None:
        self.config = config or FormulationConfig.high_precision()
        self.solver_options = solver_options or SolverOptions()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def formulate(
        self, query: Query, implementations=None, properties=()
    ) -> JoinOrderFormulation:
        """Build (but do not solve) the MILP for ``query``."""
        return JoinOrderFormulation(
            query, self.config, implementations, properties
        )

    def optimize(
        self,
        query: Query,
        warm_start: "bool | LeftDeepPlan" = True,
        callback: AnytimeCallback | None = None,
        implementations=None,
        properties=(),
    ) -> OptimizationResult:
        """Optimize ``query`` and return the extracted plan plus diagnostics.

        ``warm_start=True`` seeds the solver with the greedy heuristic's
        plan; pass a :class:`LeftDeepPlan` to seed a specific plan, or
        ``False`` for a cold start (ablation A2).
        """
        if query.num_tables == 1:
            return self._trivial_result(query)
        started = time.monotonic()
        formulation = self.formulate(query, implementations, properties)
        seed_values = self._warm_start_values(formulation, query, warm_start)
        solver = BranchAndBoundSolver(formulation.model, self.solver_options)
        solution = solver.solve(warm_start=seed_values, callback=callback)
        return self._build_result(query, formulation, solution, started)

    def optimize_with_portfolio(
        self,
        query: Query,
        warm_start: "bool | LeftDeepPlan" = True,
        members=None,
        parallel: bool = True,
        implementations=None,
        properties=(),
    ) -> OptimizationResult:
        """Optimize ``query`` with a concurrent solver portfolio.

        Mirrors :meth:`optimize` but replaces the single branch-and-bound
        search with :class:`~repro.milp.portfolio.PortfolioSolver` — the
        parallel-optimization feature the paper's Section 1 highlights.
        """
        from repro.milp.portfolio import PortfolioSolver, default_portfolio

        if query.num_tables == 1:
            return self._trivial_result(query)
        started = time.monotonic()
        formulation = self.formulate(query, implementations, properties)
        seed_values = self._warm_start_values(formulation, query, warm_start)
        if members is None:
            members = default_portfolio(
                self.solver_options.time_limit,
                self.solver_options.gap_tolerance,
            )
        portfolio = PortfolioSolver(
            formulation.model, members, parallel=parallel
        )
        outcome = portfolio.solve(warm_start=seed_values)
        solution = outcome.to_milp_solution(formulation.model)
        return self._build_result(query, formulation, solution, started)

    def _build_result(
        self, query, formulation, solution: MILPSolution, started: float
    ) -> OptimizationResult:
        plan = None
        true_cost = None
        if solution.status.has_solution:
            plan = extract_plan(formulation, solution)
            evaluator = PlanCostEvaluator(
                query,
                formulation.context,
                use_cout=self.config.cost_model == "cout",
            )
            true_cost = evaluator.cost(plan)
        return OptimizationResult(
            query=query,
            plan=plan,
            status=solution.status,
            objective=solution.objective,
            best_bound=solution.best_bound,
            true_cost=true_cost,
            solve_time=time.monotonic() - started,
            events=solution.events,
            formulation_stats=formulation.stats(),
            milp_solution=solution,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _warm_start_values(
        self, formulation, query, warm_start
    ) -> dict[str, float] | None:
        if warm_start is False or warm_start is None:
            return None
        if isinstance(warm_start, LeftDeepPlan):
            plan = warm_start
        else:
            algorithm = _default_algorithm(self.config.cost_model)
            greedy = GreedyOptimizer(
                query,
                formulation.context,
                use_cout=self.config.cost_model == "cout",
                algorithm=algorithm,
            )
            plan = greedy.optimize().plan
        return assignment_for_plan(formulation, plan)

    def _trivial_result(self, query: Query) -> OptimizationResult:
        plan = LeftDeepPlan.from_order(
            query,
            [query.table_names[0]],
            _default_algorithm(self.config.cost_model),
        )
        return OptimizationResult(
            query=query,
            plan=plan,
            status=SolveStatus.OPTIMAL,
            objective=0.0,
            best_bound=0.0,
            true_cost=0.0,
            solve_time=0.0,
        )


def optimize_query(
    query: Query,
    config: FormulationConfig | None = None,
    time_limit: float = 60.0,
) -> OptimizationResult:
    """One-call convenience mirroring the paper's end-to-end pipeline."""
    options = SolverOptions(time_limit=time_limit)
    return MILPJoinOptimizer(config, options).optimize(query)
