"""Cardinality threshold grids (paper Section 4.2).

The MILP works with the *logarithm* of intermediate-result cardinalities
(``lco`` variables) because the log of the usual product estimate is
linear.  Costs, however, need raw cardinalities.  The paper bridges the gap
with threshold variables: binary ``cto[r]`` flags that activate when the
log-cardinality exceeds ``log(theta_r)``, from which a piecewise-constant
approximation of the raw cardinality (and of any monotone function of it)
is assembled.

A :class:`ThresholdGrid` holds the geometric threshold ladder for one query
and produces the delta coefficients for arbitrary monotone functions.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.catalog.query import Query
from repro.exceptions import FormulationError


@dataclass(frozen=True)
class ThresholdGrid:
    """A geometric ladder of cardinality thresholds.

    The grid covers log-cardinalities in ``[log_anchor, log_top]`` with
    spacing ``log(tolerance)``; ``log_thresholds[r] = log_anchor +
    (r+1) * log(tolerance)`` and the last threshold equals ``log_top``.
    Values above ``log_top`` saturate into one final bracket ending at
    ``tolerance * exp(log_top)``.

    Attributes
    ----------
    log_thresholds:
        Ascending natural-log thresholds (``ln theta_r``).
    tolerance:
        Geometric spacing factor (the approximation tolerance within range).
    log_anchor:
        Bottom of the covered range.
    log_top:
        Top of the covered range (last threshold).
    mode:
        ``"upper"`` or ``"lower"`` bracket rounding.
    """

    log_thresholds: tuple[float, ...]
    tolerance: float
    log_anchor: float
    log_top: float
    mode: str = "upper"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        log_lower: float,
        log_upper: float,
        tolerance: float,
        max_thresholds: int | None = None,
        cardinality_cap: float | None = None,
        mode: str = "upper",
    ) -> "ThresholdGrid":
        """Build a grid covering log-cardinalities in ``[log_lower, log_upper]``.

        When a threshold budget (``max_thresholds``) or a saturation cap
        (``cardinality_cap``) limits coverage, the grid keeps the *top* of
        the range: costs are dominated by large intermediate results, so
        precision is spent where cost differences are decided.
        """
        if tolerance <= 1.0:
            raise FormulationError("tolerance must exceed 1")
        if mode not in ("upper", "lower"):
            raise FormulationError(f"unknown rounding mode {mode!r}")
        log_rho = math.log(tolerance)
        top = log_upper
        if cardinality_cap is not None:
            top = min(top, math.log(cardinality_cap))
        # Anchor at cardinality one.  Extending the ladder below one would
        # guarantee the tolerance for sub-tuple intermediate results too,
        # but the resulting 1e-11-scale deltas sit in the same rows as
        # 1e+12-scale ones and push the LP solver into false
        # infeasibilities; rounding tiny results up to theta_0 instead
        # costs at most an absolute error of `tolerance` tuples.
        anchor = 0.0
        if top <= anchor:
            top = anchor + log_rho  # degenerate range: one bracket
        needed = max(1, math.ceil((top - anchor) / log_rho - 1e-12))
        count = needed if max_thresholds is None else min(needed, max_thresholds)
        anchor_used = top - count * log_rho
        log_thresholds = tuple(
            anchor_used + (r + 1) * log_rho for r in range(count)
        )
        return cls(
            log_thresholds=log_thresholds,
            tolerance=tolerance,
            log_anchor=anchor_used,
            log_top=top,
            mode=mode,
        )

    @classmethod
    def for_query(
        cls, query: Query, config
    ) -> "ThresholdGrid":
        """Grid sized to one query under a
        :class:`~repro.core.config.FormulationConfig`."""
        # Positive correlated-group corrections can push log-cardinality
        # above the plain cross-product bound.
        positive_corrections = sum(
            max(0.0, group.log_correction)
            for group in query.correlated_groups
        )
        return cls.build(
            log_lower=query.min_log_selectivity,
            log_upper=query.max_log_cardinality + positive_corrections,
            tolerance=config.tolerance,
            max_thresholds=config.max_thresholds,
            cardinality_cap=config.cardinality_cap,
            mode=config.rounding,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_thresholds(self) -> int:
        """Number of threshold variables required per intermediate result."""
        return len(self.log_thresholds)

    @property
    def log_saturation(self) -> float:
        """Log of the top of the final (saturation) bracket."""
        return self.log_top + math.log(self.tolerance)

    @property
    def max_value(self) -> float:
        """Largest representable approximate cardinality."""
        return math.exp(self.log_saturation)

    def thresholds(self) -> list[float]:
        """Raw-domain threshold values ``theta_r``."""
        return [math.exp(value) for value in self.log_thresholds]

    def covers(self, log_value: float) -> bool:
        """Whether ``log_value`` falls inside the tolerance-guaranteed range."""
        return self.log_anchor <= log_value <= self.log_top

    # ------------------------------------------------------------------
    # Piecewise coefficients
    # ------------------------------------------------------------------

    def piecewise(
        self, function: Callable[[float], float] | None = None
    ) -> tuple[float, list[float]]:
        """Delta coefficients approximating ``function(cardinality)``.

        Returns ``(base, deltas)`` such that, with the first ``m + 1``
        threshold flags active, ``base + sum(deltas[:m + 1])`` approximates
        ``function(exp(lco))``:

        * upper mode: equals ``function`` at the bracket's upper end, so it
          over-estimates by at most the grid tolerance within range;
        * lower mode: equals ``function`` at the bracket's lower end
          (zero below the first threshold), matching the paper's Example 2
          first variant.

        ``function`` defaults to the identity (raw cardinality).  It must
        be non-decreasing; deltas are asserted non-negative so activating
        extra thresholds can only increase cost.
        """
        f = function if function is not None else (lambda value: value)
        values = [f(math.exp(v)) for v in self.log_thresholds]
        top_value = f(self.max_value)
        if self.mode == "upper":
            base = values[0]
            deltas = [
                values[r + 1] - values[r]
                for r in range(self.num_thresholds - 1)
            ]
            deltas.append(top_value - values[-1])
        else:
            base = 0.0
            deltas = [values[0]]
            deltas.extend(
                values[r] - values[r - 1]
                for r in range(1, self.num_thresholds)
            )
        for delta in deltas:
            if delta < -1e-9:
                raise FormulationError(
                    "piecewise function must be non-decreasing in cardinality"
                )
        return base, [max(0.0, delta) for delta in deltas]

    # ------------------------------------------------------------------
    # Exact evaluation (used by warm starts and tests)
    # ------------------------------------------------------------------

    def active_flags(self, log_value: float) -> list[int]:
        """The 0/1 threshold flags a consistent solution sets for
        ``log_value`` (flag r active iff ``log_value > log(theta_r)``)."""
        return [
            1 if log_value > threshold + 1e-12 else 0
            for threshold in self.log_thresholds
        ]

    def approximate(
        self,
        log_value: float,
        function: Callable[[float], float] | None = None,
    ) -> float:
        """The approximation the MILP would produce for ``log_value``."""
        base, deltas = self.piecewise(function)
        flags = self.active_flags(log_value)
        return base + sum(
            delta for delta, flag in zip(deltas, flags) if flag
        )
