"""Cost encodings for the MILP objective (paper Section 4.3).

Each standard operator's cost formula is expressed linearly in the
formulation's variables:

* **C_out** — the sum of intermediate result cardinalities is simply
  ``sum(co[j] for j >= 1)``.
* **hash join** — ``3 * (pgo + pgi)``; outer pages scale linearly with
  ``co[j]``, inner pages are a weighted sum over ``tii``.
* **sort-merge join** — the log-linear ``2*pg*ceil(log2 pg)`` sort terms are
  *another piecewise function of the same threshold variables*, so no new
  variables are needed for the outer operand; inner terms sum over tables.
* **block nested-loop join** — ``ceil(pgo/buffer) * pgi`` becomes a sum of
  binary-times-continuous products ``tii[t,j] * blocks[j]`` linearized per
  Bisschop (the paper's preferred second variant, linear in the number of
  tables rather than thresholds).
"""

from __future__ import annotations

from repro.exceptions import FormulationError
from repro.milp.expr import LinExpr, lin_sum
from repro.plans.operators import sort_cost
from repro.core.linearize import binary_times_continuous


def add_cost_objective(formulation) -> None:
    """Append the configured cost model's objective terms."""
    cost_model = formulation.config.cost_model
    if cost_model == "cout":
        formulation.objective_terms.append(cout_objective(formulation))
        return
    for j in formulation.joins:
        formulation.objective_terms.append(
            join_cost_expression(formulation, j, cost_model)
        )


def cout_objective(formulation) -> LinExpr:
    """C_out: sum of intermediate result cardinalities.

    ``co[j]`` for ``j >= 1`` is the result of join ``j - 1``; the final
    join's output is identical for every plan and therefore excluded
    (matching :class:`~repro.plans.cost.PlanCostEvaluator`).
    """
    return lin_sum(formulation.co[j] for j in formulation.joins if j >= 1)


def join_cost_expression(
    formulation, j: int, cost_model: str, presorted_outer: bool = False
) -> LinExpr:
    """Linear cost expression for join ``j`` under one operator's formula.

    ``presorted_outer`` drops the outer sort stage of the sort-merge
    operator (used by the Section 5.4 interesting-orders extension).
    """
    if cost_model == "hash":
        return _hash_cost(formulation, j)
    if cost_model == "sort_merge":
        return _sort_merge_cost(formulation, j, presorted_outer)
    if cost_model == "bnl":
        return _bnl_cost(formulation, j)
    raise FormulationError(
        f"cost model {cost_model!r} has no per-join expression"
    )


# ----------------------------------------------------------------------
# Operand page helpers
# ----------------------------------------------------------------------

def outer_pages_expression(formulation, j: int) -> LinExpr:
    """Outer operand pages ``pgo[j] ~= co[j] * tupSize / pageSize``.

    When the projection extension is active, the refined byte-size variable
    replaces the fixed-tuple-size estimate.
    """
    projection_state = formulation.extensions.get("projection")
    if projection_state is not None:
        byte_variable = projection_state.outer_bytes[j]
        return LinExpr.from_var(
            byte_variable, 1.0 / formulation.context.page_size
        )
    factor = (
        formulation.context.tuple_size / formulation.context.page_size
    )
    return LinExpr.from_var(formulation.co[j], factor)


def inner_pages_expression(formulation, j: int) -> LinExpr:
    """Inner operand pages: weighted sum over table-selection variables."""
    expr = LinExpr()
    for t in formulation.query.table_names:
        expr.add_term(formulation.tii[t, j], formulation.table_pages(t))
    return expr


def outer_pages_upper_bound(formulation) -> float:
    """Upper bound on the outer page count (for product linearization)."""
    return (
        formulation.grid.max_value
        * formulation.context.tuple_size
        / formulation.context.page_size
    )


# ----------------------------------------------------------------------
# Operator formulas
# ----------------------------------------------------------------------

def _hash_cost(formulation, j: int) -> LinExpr:
    return (
        outer_pages_expression(formulation, j)
        + inner_pages_expression(formulation, j)
    ) * 3.0


def _sort_merge_cost(
    formulation, j: int, presorted_outer: bool
) -> LinExpr:
    context = formulation.context
    expr = LinExpr()
    if not presorted_outer:
        # Outer sort: a piecewise function of cardinality assembled from
        # the existing threshold variables.
        base, deltas = formulation.grid.piecewise(
            lambda cardinality: sort_cost(context.pages(cardinality))
        )
        expr.add_constant(base)
        for r, delta in enumerate(deltas):
            expr.add_term(formulation.cto[r, j], delta)
    # Inner sort: exact per-table constants.
    for t in formulation.query.table_names:
        expr.add_term(
            formulation.tii[t, j],
            sort_cost(formulation.table_pages(t)),
        )
    # Merge pass over both inputs.
    expr = (
        expr
        + outer_pages_expression(formulation, j)
        + inner_pages_expression(formulation, j)
    )
    return expr


def _bnl_cost(formulation, j: int) -> LinExpr:
    """Block nested-loop cost via per-table products (paper's 2nd variant)."""
    state = formulation.extensions.setdefault("bnl", _BnlState())
    blocks = state.blocks.get(j)
    if blocks is None:
        blocks = _make_blocks_variable(formulation, j)
        state.blocks[j] = blocks
    expr = LinExpr()
    for t in formulation.query.table_names:
        key = (t, j)
        product = state.products.get(key)
        if product is None:
            product = binary_times_continuous(
                formulation.model,
                formulation.tii[t, j],
                blocks,
                name=f"bnlw[{t},{j}]",
            )
            state.products[key] = product
        expr.add_term(product, formulation.table_pages(t))
    return expr


class _BnlState:
    """Caches BNL auxiliary variables so operator selection can reuse them."""

    def __init__(self) -> None:
        self.blocks: dict[int, object] = {}
        self.products: dict[tuple[str, int], object] = {}


def _make_blocks_variable(formulation, j: int):
    """Continuous ``blocks[j] = pgo[j] / buffer`` (ceiling omitted, as the
    paper suggests for the linear approximation)."""
    context = formulation.context
    upper = outer_pages_upper_bound(formulation) / context.buffer_pages
    blocks = formulation.model.add_continuous(f"blocks[{j}]", 0.0, upper)
    pgo = outer_pages_expression(formulation, j)
    formulation.model.add_eq(
        LinExpr.from_var(blocks) - pgo * (1.0 / context.buffer_pages),
        0.0,
        f"blocks_def[{j}]",
    )
    return blocks
