"""Decode MILP solutions into query plans (paper Section 7.1).

"The MILP solution is read out and used to construct a corresponding query
plan": the ``tio``/``tii`` binaries determine the join order and, when the
operator-selection extension is active, the ``jos`` binaries determine the
per-join implementation.
"""

from __future__ import annotations

from repro.exceptions import ExtractionError
from repro.milp.solution import MILPSolution
from repro.plans.operators import JoinAlgorithm
from repro.plans.plan import JoinStep, LeftDeepPlan
from repro.plans.validation import validate_plan

#: Threshold above which a relaxed binary counts as "one".
_ROUND = 0.5


def extract_plan(formulation, solution: MILPSolution) -> LeftDeepPlan:
    """Build the left-deep plan encoded by ``solution``.

    Raises
    ------
    ExtractionError
        When the solution has no assignment or the assignment does not
        decode into a structurally valid plan (which would indicate a
        formulation or solver bug — the constraints of Section 4.1 make
        invalid assignments infeasible).
    """
    if not solution.status.has_solution or solution.x is None:
        raise ExtractionError(
            f"solution status {solution.status.value!r} carries no plan"
        )
    tables = formulation.query.table_names

    first_candidates = [
        t for t in tables if solution.value(f"tio[{t},0]") > _ROUND
    ]
    if len(first_candidates) != 1:
        raise ExtractionError(
            f"expected one first table, decoded {first_candidates}"
        )
    order = [first_candidates[0]]
    for j in formulation.joins:
        inner = [
            t for t in tables if solution.value(f"tii[{t},{j}]") > _ROUND
        ]
        if len(inner) != 1:
            raise ExtractionError(
                f"expected one inner table for join {j}, decoded {inner}"
            )
        order.append(inner[0])

    algorithms = _extract_algorithms(formulation, solution)
    steps = tuple(
        JoinStep(table, algorithm)
        for table, algorithm in zip(order[1:], algorithms)
    )
    try:
        plan = LeftDeepPlan(formulation.query, order[0], steps)
        validate_plan(plan)
    except Exception as error:
        raise ExtractionError(f"decoded assignment is invalid: {error}") from error
    return plan


def _extract_algorithms(
    formulation, solution: MILPSolution
) -> list[JoinAlgorithm]:
    """Per-join algorithms: from ``jos`` when present, else the cost model."""
    state = formulation.extensions.get("operator_choice")
    if state is None:
        default = _default_algorithm(formulation.config.cost_model)
        return [default] * formulation.query.num_joins
    algorithms: list[JoinAlgorithm] = []
    for j in formulation.joins:
        selected = [
            spec
            for spec in state.implementations
            if solution.value(f"jos[{spec.name},{j}]") > _ROUND
        ]
        if len(selected) != 1:
            raise ExtractionError(
                f"expected one implementation for join {j}, decoded "
                f"{[spec.name for spec in selected]}"
            )
        algorithms.append(selected[0].algorithm)
    return algorithms


def _default_algorithm(cost_model: str) -> JoinAlgorithm:
    if cost_model == "sort_merge":
        return JoinAlgorithm.SORT_MERGE
    if cost_model == "bnl":
        return JoinAlgorithm.BLOCK_NESTED_LOOP
    # Both "hash" and the operator-agnostic "cout" default to hash joins,
    # matching the paper's experimental setting.
    return JoinAlgorithm.HASH
