"""Model-size analysis (paper Section 6, Theorems 1 and 2).

The paper proves the MILP has ``O(n * (n + m + l))`` variables and
constraints for ``n`` tables, ``m`` predicates and ``l`` thresholds.  This
module measures actual counts (Figure 1's data) and provides the
closed-form bound for the scaling tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.query import Query
from repro.core.config import FormulationConfig
from repro.core.formulation import JoinOrderFormulation


@dataclass(frozen=True)
class ModelSize:
    """Measured and predicted size of one query's MILP."""

    num_tables: int
    num_predicates: int
    num_thresholds: int
    variables: int
    binary_variables: int
    constraints: int

    @property
    def size_driver(self) -> int:
        """The Theorem 1/2 driver ``n * (n + m + l)``."""
        return self.num_tables * (
            self.num_tables + self.num_predicates + self.num_thresholds
        )


def measure_model_size(
    query: Query, config: FormulationConfig | None = None
) -> ModelSize:
    """Build the MILP for ``query`` and count variables/constraints."""
    formulation = JoinOrderFormulation(query, config)
    stats = formulation.stats()
    return ModelSize(
        num_tables=query.num_tables,
        num_predicates=query.num_predicates,
        num_thresholds=formulation.grid.num_thresholds,
        variables=stats["variables"],
        binary_variables=stats["binary_variables"],
        constraints=stats["constraints"],
    )


def theoretical_variable_bound(
    num_tables: int, num_predicates: int, num_thresholds: int
) -> int:
    """Upper bound on variable count implied by Theorem 1.

    Per join (``n - 1`` of them): ``2n`` operand binaries, ``m`` predicate
    binaries, ``l`` threshold binaries and 3 continuous cardinality
    variables (``lco``, ``co``, ``ci``).
    """
    per_join = (
        2 * num_tables + num_predicates + num_thresholds + 3
    )
    return (num_tables - 1) * per_join


def theoretical_constraint_bound(
    num_tables: int, num_predicates: int, num_thresholds: int
) -> int:
    """Upper bound on constraint count implied by Theorem 2.

    Per join: ``n`` overlap rows + ``n`` chain rows, up to ``n``
    requirement rows per predicate (n-ary worst case) plus the forcing
    row, ``2l`` threshold rows (activation + ordering) and 4 structural
    equalities.
    """
    per_join = (
        2 * num_tables
        + num_predicates * (num_tables + 1)
        + 2 * num_thresholds
        + 4
    )
    return (num_tables - 1) * per_join
